//! Quality control (paper §III-D).
//!
//! Four mechanisms, applied server-side to uploaded sessions:
//!
//! 1. **Hard rules** — every integrated page visited, every question
//!    answered (the extension enforces this client-side; the server
//!    re-checks because clients cannot be trusted).
//! 2. **Engagement** — "a short time indicates an unengaged worker; a long
//!    time might indicate that the worker is distracted."
//! 3. **Control questions** — pages with known answers: two copies of the
//!    same version (must answer "Same") and a pair with one deliberately
//!    ruined version (must prefer the intact side).
//! 4. **Crowd wisdom** — "the majority vote of all responses presents the
//!    pseudo-ground truth. Participants whose responses deviate from it
//!    significantly can be dropped."

use crate::aggregator::{ControlKind, PreparedTest};
use kscope_browser::SessionRecord;
use std::collections::HashMap;
use std::fmt;

/// Why a session was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropReason {
    /// Pages or answers missing.
    HardRuleViolation(String),
    /// Median comparison time under the floor — an unengaged click-through.
    TooFast,
    /// A comparison exceeded the ceiling — a distracted worker.
    TooSlow,
    /// Too many control questions answered wrongly.
    FailedControl,
    /// Agreement with the crowd's majority vote below the threshold.
    CrowdDeviation,
}

impl DropReason {
    /// Stable label for the `core.qc_rejects_total{reason=...}` metric.
    /// Unlike [`DropReason`]'s `Display`, this never embeds free-form
    /// detail, so label cardinality stays bounded.
    pub fn metric_label(&self) -> &'static str {
        match self {
            DropReason::HardRuleViolation(_) => "hard_rule",
            DropReason::TooFast => "too_fast",
            DropReason::TooSlow => "too_slow",
            DropReason::FailedControl => "failed_control",
            DropReason::CrowdDeviation => "crowd_deviation",
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropReason::HardRuleViolation(what) => write!(f, "hard rule violated: {what}"),
            DropReason::TooFast => write!(f, "too fast (unengaged)"),
            DropReason::TooSlow => write!(f, "too slow (distracted)"),
            DropReason::FailedControl => write!(f, "failed control questions"),
            DropReason::CrowdDeviation => write!(f, "deviates from the crowd majority"),
        }
    }
}

/// Thresholds of the quality pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityConfig {
    /// Floor on the *median* per-comparison time (minutes).
    pub min_comparison_minutes: f64,
    /// Ceiling on any single comparison (minutes). The paper's filtered
    /// data tops out at 2.5 minutes.
    pub max_comparison_minutes: f64,
    /// Minimum fraction of control answers that must be correct.
    pub min_control_accuracy: f64,
    /// Minimum agreement with the majority vote on real pages.
    pub min_crowd_agreement: f64,
}

impl Default for QualityConfig {
    fn default() -> Self {
        Self {
            min_comparison_minutes: 0.10,
            max_comparison_minutes: 2.5,
            min_control_accuracy: 0.75,
            min_crowd_agreement: 0.45,
        }
    }
}

/// Outcome of the pipeline over a batch of sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityReport {
    /// Indices (into the input slice) of sessions that passed.
    pub kept: Vec<usize>,
    /// Dropped sessions with the first reason that fired.
    pub dropped: Vec<(usize, DropReason)>,
}

impl QualityReport {
    /// Fraction of sessions kept.
    pub fn keep_rate(&self) -> f64 {
        let total = self.kept.len() + self.dropped.len();
        if total == 0 {
            0.0
        } else {
            self.kept.len() as f64 / total as f64
        }
    }

    /// Selects the kept records out of the original slice.
    pub fn kept_records<'a>(&self, records: &'a [SessionRecord]) -> Vec<&'a SessionRecord> {
        self.kept.iter().map(|&i| &records[i]).collect()
    }
}

/// Applies the full §III-D pipeline to a batch of uploaded sessions.
///
/// The order matters and matches the paper's narrative: hard rules, then
/// engagement, then control questions, then crowd wisdom (computed over the
/// sessions that survived the first three stages, so spam does not poison
/// the pseudo-ground truth).
pub fn apply_quality_control(
    records: &[SessionRecord],
    prepared: &PreparedTest,
    config: &QualityConfig,
) -> QualityReport {
    let mut dropped: Vec<(usize, DropReason)> = Vec::new();
    let mut survivors: Vec<usize> = Vec::new();

    for (idx, rec) in records.iter().enumerate() {
        if let Some(reason) = check_hard_rules(rec, prepared)
            .or_else(|| check_engagement(rec, config))
            .or_else(|| check_controls(rec, prepared, config))
        {
            dropped.push((idx, reason));
        } else {
            survivors.push(idx);
        }
    }

    // Crowd wisdom over the survivors.
    let majority = majority_votes(records, &survivors, prepared);
    let mut kept = Vec::new();
    for idx in survivors {
        let agreement = agreement_rate(&records[idx], &majority);
        if agreement < config.min_crowd_agreement {
            dropped.push((idx, DropReason::CrowdDeviation));
        } else {
            kept.push(idx);
        }
    }
    QualityReport { kept, dropped }
}

fn check_hard_rules(rec: &SessionRecord, prepared: &PreparedTest) -> Option<DropReason> {
    for meta in &prepared.pages {
        let page = match rec.pages.iter().find(|p| p.page_name == meta.name) {
            Some(p) => p,
            None => {
                return Some(DropReason::HardRuleViolation(format!(
                    "page {} not tested",
                    meta.name
                )))
            }
        };
        if page.answers.is_empty() {
            return Some(DropReason::HardRuleViolation(format!(
                "page {} has no answers",
                meta.name
            )));
        }
        if page.visits == 0 {
            return Some(DropReason::HardRuleViolation(format!(
                "page {} never visited",
                meta.name
            )));
        }
    }
    None
}

fn check_engagement(rec: &SessionRecord, config: &QualityConfig) -> Option<DropReason> {
    let mut minutes: Vec<f64> = rec.pages.iter().map(|p| p.duration_ms as f64 / 60_000.0).collect();
    if minutes.is_empty() {
        return Some(DropReason::HardRuleViolation("empty session".to_string()));
    }
    minutes.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
    let median = minutes[minutes.len() / 2];
    if median < config.min_comparison_minutes {
        return Some(DropReason::TooFast);
    }
    if *minutes.last().expect("non-empty") > config.max_comparison_minutes {
        return Some(DropReason::TooSlow);
    }
    None
}

fn check_controls(
    rec: &SessionRecord,
    prepared: &PreparedTest,
    config: &QualityConfig,
) -> Option<DropReason> {
    let mut total = 0u32;
    let mut correct = 0u32;
    for meta in &prepared.pages {
        let expected = match meta.control {
            Some(ControlKind::IdenticalPair) => "Same",
            Some(ControlKind::ExtremePair) => "Right",
            None => continue,
        };
        if let Some(page) = rec.pages.iter().find(|p| p.page_name == meta.name) {
            for answer in page.answers.values() {
                total += 1;
                if answer == expected {
                    correct += 1;
                }
            }
        }
    }
    if total == 0 {
        return None; // no control pages in this test
    }
    if f64::from(correct) / f64::from(total) < config.min_control_accuracy {
        Some(DropReason::FailedControl)
    } else {
        None
    }
}

/// Majority answer per (real page, question) over the given sessions.
fn majority_votes(
    records: &[SessionRecord],
    indices: &[usize],
    prepared: &PreparedTest,
) -> HashMap<(String, String), String> {
    let mut tallies: HashMap<(String, String), HashMap<String, usize>> = HashMap::new();
    for &idx in indices {
        for page in &records[idx].pages {
            let meta = match prepared.page(&page.page_name) {
                Some(m) if m.is_real() => m,
                _ => continue,
            };
            for (question, answer) in &page.answers {
                *tallies
                    .entry((meta.name.clone(), question.clone()))
                    .or_default()
                    .entry(answer.clone())
                    .or_insert(0) += 1;
            }
        }
    }
    tallies
        .into_iter()
        .filter_map(|(key, votes)| {
            votes
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .map(|(answer, _)| (key, answer))
        })
        .collect()
}

/// Agreement with the majority, with partial credit: matching the majority
/// scores 1, a "Same" vote against a decided majority (or any vote against
/// a "Same" majority) scores 0.5 — hedging is not deviance — and voting for
/// the *opposite* side scores 0. Workers with fewer than three scoreable
/// answers are exempt (a single-pair test would otherwise make agreement
/// all-or-nothing).
fn agreement_rate(rec: &SessionRecord, majority: &HashMap<(String, String), String>) -> f64 {
    let mut total = 0u32;
    let mut credit = 0.0f64;
    for page in &rec.pages {
        for (question, answer) in &page.answers {
            if let Some(maj) = majority.get(&(page.page_name.clone(), question.clone())) {
                total += 1;
                credit += if answer == maj {
                    1.0
                } else if answer == "Same" || maj == "Same" {
                    0.5
                } else {
                    0.0
                };
            }
        }
    }
    if total < 3 {
        1.0 // too little signal to judge deviation
    } else {
        credit / f64::from(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::IntegratedPageMeta;
    use kscope_browser::PageResult;
    use std::collections::BTreeMap;

    fn prepared() -> PreparedTest {
        PreparedTest {
            test_id: "t".into(),
            pages: vec![
                IntegratedPageMeta {
                    name: "integrated-000.html".into(),
                    left: Some(0),
                    right: 1,
                    control: None,
                },
                IntegratedPageMeta {
                    name: "control-identical.html".into(),
                    left: Some(0),
                    right: 0,
                    control: Some(ControlKind::IdenticalPair),
                },
                IntegratedPageMeta {
                    name: "control-extreme.html".into(),
                    left: None,
                    right: 0,
                    control: Some(ControlKind::ExtremePair),
                },
            ],
        }
    }

    /// A session answering `real` on the real page, with given control
    /// answers and per-page minutes.
    fn session(real: &str, identical: &str, extreme: &str, minutes: f64) -> SessionRecord {
        let page = |name: &str, answer: &str| PageResult {
            page_name: name.to_string(),
            answers: {
                let mut m = BTreeMap::new();
                m.insert("q".to_string(), answer.to_string());
                m
            },
            duration_ms: (minutes * 60_000.0) as u64,
            visits: 1,
        };
        SessionRecord {
            test_id: "t".into(),
            contributor_id: "w".into(),
            submission_id: "sub-w".into(),
            demographics: serde_json::json!({}),
            pages: vec![
                page("integrated-000.html", real),
                page("control-identical.html", identical),
                page("control-extreme.html", extreme),
            ],
            created_tabs: 3,
            active_tab_switches: 3,
        }
    }

    fn good() -> SessionRecord {
        session("Left", "Same", "Right", 0.5)
    }

    #[test]
    fn clean_batch_all_kept() {
        let records = vec![good(), good(), good()];
        let report = apply_quality_control(&records, &prepared(), &QualityConfig::default());
        assert_eq!(report.kept.len(), 3);
        assert!(report.dropped.is_empty());
        assert_eq!(report.keep_rate(), 1.0);
        assert_eq!(report.kept_records(&records).len(), 3);
    }

    #[test]
    fn hard_rule_missing_page() {
        let mut bad = good();
        bad.pages.remove(0);
        let records = vec![good(), bad];
        let report = apply_quality_control(&records, &prepared(), &QualityConfig::default());
        assert_eq!(report.kept, vec![0]);
        assert!(matches!(report.dropped[0].1, DropReason::HardRuleViolation(_)));
    }

    #[test]
    fn hard_rule_missing_answers() {
        let mut bad = good();
        bad.pages[0].answers.clear();
        let report = apply_quality_control(&[bad], &prepared(), &QualityConfig::default());
        assert!(matches!(report.dropped[0].1, DropReason::HardRuleViolation(_)));
    }

    #[test]
    fn engagement_too_fast_and_too_slow() {
        let fast = session("Left", "Same", "Right", 0.03);
        let slow = session("Left", "Same", "Right", 3.2);
        let report =
            apply_quality_control(&[good(), fast, slow], &prepared(), &QualityConfig::default());
        assert_eq!(report.kept, vec![0]);
        let reasons: Vec<&DropReason> = report.dropped.iter().map(|(_, r)| r).collect();
        assert!(reasons.contains(&&DropReason::TooFast));
        assert!(reasons.contains(&&DropReason::TooSlow));
    }

    #[test]
    fn control_failures_dropped() {
        // AlwaysLeft spammer: answers Left everywhere, including both
        // controls — exactly the pattern the controls are built to catch.
        let spammer = session("Left", "Left", "Left", 0.5);
        let report =
            apply_quality_control(&[good(), spammer], &prepared(), &QualityConfig::default());
        assert_eq!(report.kept, vec![0]);
        assert_eq!(report.dropped[0].1, DropReason::FailedControl);
    }

    #[test]
    fn always_same_spammer_caught_by_extreme_control() {
        let spammer = session("Same", "Same", "Same", 0.5);
        // Only half the control answers are right (identical yes, extreme
        // no) — below the 0.75 default.
        let report =
            apply_quality_control(&[good(), spammer], &prepared(), &QualityConfig::default());
        assert_eq!(report.dropped[0].1, DropReason::FailedControl);
    }

    /// A variant of [`prepared`] with three real pages, so the crowd-wisdom
    /// filter has enough answers to act on.
    fn prepared_wide() -> PreparedTest {
        let mut p = prepared();
        for k in 1..3 {
            p.pages.push(IntegratedPageMeta {
                name: format!("integrated-00{k}.html"),
                left: Some(0),
                right: 1,
                control: None,
            });
        }
        p
    }

    fn wide_session(real: &str, minutes: f64) -> SessionRecord {
        let mut s = session(real, "Same", "Right", minutes);
        for k in 1..3 {
            let mut extra = s.pages[0].clone();
            extra.page_name = format!("integrated-00{k}.html");
            s.pages.push(extra);
        }
        s
    }

    #[test]
    fn crowd_deviation_dropped() {
        // Four agree on Left across three pages; one contrarian says Right
        // everywhere (passes controls).
        let records = vec![
            wide_session("Left", 0.5),
            wide_session("Left", 0.5),
            wide_session("Left", 0.5),
            wide_session("Left", 0.5),
            wide_session("Right", 0.5),
        ];
        let report = apply_quality_control(&records, &prepared_wide(), &QualityConfig::default());
        assert_eq!(report.kept.len(), 4);
        assert_eq!(report.dropped[0].1, DropReason::CrowdDeviation);
    }

    #[test]
    fn hedging_is_not_deviation() {
        // A worker answering "Same" against a decided majority gets partial
        // credit and survives.
        let records = vec![
            wide_session("Left", 0.5),
            wide_session("Left", 0.5),
            wide_session("Left", 0.5),
            wide_session("Same", 0.5),
        ];
        let report = apply_quality_control(&records, &prepared_wide(), &QualityConfig::default());
        assert_eq!(report.kept.len(), 4);
    }

    #[test]
    fn single_answer_workers_exempt_from_crowd_filter() {
        // Only one real page: agreement is all-or-nothing, so the filter
        // must not fire.
        let records = vec![good(), good(), good(), session("Right", "Same", "Right", 0.5)];
        let report = apply_quality_control(&records, &prepared(), &QualityConfig::default());
        assert_eq!(report.kept.len(), 4);
    }

    #[test]
    fn crowd_wisdom_excludes_already_dropped_sessions() {
        // Three spammers voting Right would flip the majority if they were
        // counted — but they fail controls first, so the honest pair
        // survives.
        let spam = || session("Right", "Left", "Left", 0.5);
        let records = vec![good(), good(), spam(), spam(), spam()];
        let report = apply_quality_control(&records, &prepared(), &QualityConfig::default());
        assert_eq!(report.kept, vec![0, 1]);
    }

    #[test]
    fn empty_batch() {
        let report = apply_quality_control(&[], &prepared(), &QualityConfig::default());
        assert!(report.kept.is_empty());
        assert!(report.dropped.is_empty());
        assert_eq!(report.keep_rate(), 0.0);
    }

    #[test]
    fn drop_reasons_display() {
        for r in [
            DropReason::HardRuleViolation("x".into()),
            DropReason::TooFast,
            DropReason::TooSlow,
            DropReason::FailedControl,
            DropReason::CrowdDeviation,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
