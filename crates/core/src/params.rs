//! The Table-I test parameters.
//!
//! "We adopt JavaScript Object Notation (JSON) format to store test
//! parameters since it is easy for humans to read and write, meanwhile easy
//! for machines to parse and generate." The field names below follow
//! Table I exactly (`test_id`, `webpage_num`, `test_description`,
//! `participant_num`, `question`, `webpages`, and per-webpage `web_path`,
//! `web_page_load`, `web_main_file`, `web_description`).

use kscope_pageload::LoadSpec;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt;

/// One comparison question asked after each integrated webpage. The
/// response must be one of "Left", "Right", "Same" (§III-B).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Question(pub String);

impl Question {
    /// The question text.
    pub fn text(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-webpage parameters (the `webpages` array of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebpageSpec {
    /// "The relative folder path of a test webpage".
    pub web_path: String,
    /// "The page load simulating value": an integer or a locator map; see
    /// [`LoadSpec`]. Stored as raw JSON to match the paper's format.
    pub web_page_load: Value,
    /// "The initial html file name of a test webpage".
    pub web_main_file: String,
    /// "The description of a test webpage".
    #[serde(default)]
    pub web_description: String,
}

impl WebpageSpec {
    /// Creates a spec with a uniform page-load window.
    pub fn new(web_path: &str, main_file: &str, page_load_ms: u64) -> Self {
        Self {
            web_path: web_path.to_string(),
            web_page_load: Value::from(page_load_ms),
            web_main_file: main_file.to_string(),
            web_description: String::new(),
        }
    }

    /// Sets the description (builder style).
    pub fn with_description(mut self, description: &str) -> Self {
        self.web_description = description.to_string();
        self
    }

    /// Sets a detailed per-selector page-load schedule (builder style).
    pub fn with_page_load(mut self, spec: &LoadSpec) -> Self {
        self.web_page_load = spec.to_json();
        self
    }

    /// The parsed page-load spec.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`kscope_pageload::SpecError`] for malformed
    /// values.
    pub fn load_spec(&self) -> Result<LoadSpec, kscope_pageload::SpecError> {
        LoadSpec::from_json(&self.web_page_load)
    }

    /// Path of the main file inside the resource store.
    pub fn main_file_path(&self) -> String {
        format!("{}/{}", self.web_path.trim_end_matches('/'), self.web_main_file)
    }
}

/// The full test parameters (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestParams {
    /// "The test identification".
    pub test_id: String,
    /// "The number of test webpages".
    pub webpage_num: usize,
    /// "The description of a test".
    #[serde(default)]
    pub test_description: String,
    /// "The number of participants involved in the test".
    pub participant_num: usize,
    /// "The asked questions during the test".
    pub question: Vec<Question>,
    /// "The basic information of all test webpages".
    pub webpages: Vec<WebpageSpec>,
}

impl TestParams {
    /// Creates parameters, deriving `webpage_num` from the list.
    pub fn new(
        test_id: &str,
        participant_num: usize,
        questions: Vec<&str>,
        webpages: Vec<WebpageSpec>,
    ) -> Self {
        Self {
            test_id: test_id.to_string(),
            webpage_num: webpages.len(),
            test_description: String::new(),
            participant_num,
            question: questions.into_iter().map(|q| Question(q.to_string())).collect(),
            webpages,
        }
    }

    /// Parses parameters from their JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateParamsError`] for malformed JSON or inconsistent
    /// parameters.
    pub fn from_json(json: &str) -> Result<Self, ValidateParamsError> {
        let params: TestParams = serde_json::from_str(json)
            .map_err(|e| ValidateParamsError::new(format!("malformed JSON: {e}")))?;
        params.validate()?;
        Ok(params)
    }

    /// Serializes to the JSON parameter file.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("TestParams always serializes")
    }

    /// Number of integrated webpages a full pairwise test produces:
    /// `C(N, 2)` (§III-B).
    pub fn integrated_page_count(&self) -> usize {
        let n = self.webpages.len();
        n * (n - 1) / 2
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateParamsError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), ValidateParamsError> {
        if self.test_id.trim().is_empty() {
            return Err(ValidateParamsError::new("test_id must not be empty"));
        }
        if self.webpages.len() < 2 {
            return Err(ValidateParamsError::new("a comparison test needs at least two webpages"));
        }
        if self.webpage_num != self.webpages.len() {
            return Err(ValidateParamsError::new(format!(
                "webpage_num is {} but {} webpages are listed",
                self.webpage_num,
                self.webpages.len()
            )));
        }
        if self.participant_num == 0 {
            return Err(ValidateParamsError::new("participant_num must be positive"));
        }
        if self.question.is_empty() {
            return Err(ValidateParamsError::new("at least one question is required"));
        }
        for (i, page) in self.webpages.iter().enumerate() {
            if page.web_path.trim().is_empty() || page.web_main_file.trim().is_empty() {
                return Err(ValidateParamsError::new(format!(
                    "webpage {i} is missing web_path or web_main_file"
                )));
            }
            page.load_spec().map_err(|e| ValidateParamsError::new(format!("webpage {i}: {e}")))?;
        }
        Ok(())
    }
}

/// Error describing invalid test parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateParamsError {
    message: String,
}

impl ValidateParamsError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for ValidateParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid test parameters: {}", self.message)
    }
}

impl std::error::Error for ValidateParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TestParams {
        TestParams::new(
            "font-study-1",
            100,
            vec!["Which webpage's font size is more suitable (easier) for reading?"],
            vec![
                WebpageSpec::new("pages/font-10", "index.html", 3000)
                    .with_description("10pt main text"),
                WebpageSpec::new("pages/font-12", "index.html", 3000),
                WebpageSpec::new("pages/font-14", "index.html", 3000),
            ],
        )
    }

    #[test]
    fn json_roundtrip_matches_table_one() {
        let p = sample();
        let json = p.to_json();
        // Table I field names appear verbatim.
        for field in [
            "test_id",
            "webpage_num",
            "participant_num",
            "question",
            "webpages",
            "web_path",
            "web_page_load",
            "web_main_file",
        ] {
            assert!(json.contains(field), "missing field {field} in\n{json}");
        }
        let back = TestParams::from_json(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn integrated_count_is_n_choose_2() {
        assert_eq!(sample().integrated_page_count(), 3);
        let mut five = sample();
        five.webpages.push(WebpageSpec::new("pages/font-18", "index.html", 3000));
        five.webpages.push(WebpageSpec::new("pages/font-22", "index.html", 3000));
        five.webpage_num = 5;
        assert_eq!(five.integrated_page_count(), 10);
    }

    #[test]
    fn detailed_page_load_accepted() {
        let spec =
            LoadSpec::from_json(&serde_json::json!({"#main": 1000, "#content p": 1500})).unwrap();
        let page = WebpageSpec::new("p", "index.html", 0).with_page_load(&spec);
        assert_eq!(page.load_spec().unwrap(), spec);
        let mut params = sample();
        params.webpages[0] = page;
        params.validate().unwrap();
    }

    #[test]
    fn main_file_path_joins() {
        let w = WebpageSpec::new("pages/font-10/", "index.html", 0);
        assert_eq!(w.main_file_path(), "pages/font-10/index.html");
    }

    #[test]
    fn validation_failures() {
        let mut p = sample();
        p.test_id = " ".into();
        assert!(p.validate().is_err());

        let mut p = sample();
        p.webpage_num = 7;
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("webpage_num"));

        let mut p = sample();
        p.webpages.truncate(1);
        p.webpage_num = 1;
        assert!(p.validate().is_err());

        let mut p = sample();
        p.participant_num = 0;
        assert!(p.validate().is_err());

        let mut p = sample();
        p.question.clear();
        assert!(p.validate().is_err());

        let mut p = sample();
        p.webpages[1].web_page_load = serde_json::json!("soon");
        assert!(p.validate().is_err());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(TestParams::from_json("{not json").is_err());
        assert!(TestParams::from_json("{}").is_err());
    }

    #[test]
    fn question_display() {
        let q = Question("Which is better?".into());
        assert_eq!(q.to_string(), "Which is better?");
        assert_eq!(q.text(), "Which is better?");
    }
}
