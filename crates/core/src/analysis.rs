//! Result analysis: vote aggregation, rankings, behaviour distributions,
//! and significance.

use crate::aggregator::PreparedTest;
use kscope_browser::SessionRecord;
use kscope_stats::rank::{
    borda_ranking, borda_ranking_resolved, ranking_to_positions, PairwiseMatrix, Preference,
};
use kscope_stats::tests::{two_proportion_z_test, Tail, TestResult};
use kscope_stats::Ecdf;

/// Canonical answer labels.
pub const LEFT: &str = "Left";
/// Canonical answer labels.
pub const RIGHT: &str = "Right";
/// Canonical answer labels.
pub const SAME: &str = "Same";

/// Converts a [`Preference`] to its wire label.
pub fn preference_label(p: Preference) -> &'static str {
    match p {
        Preference::Left => LEFT,
        Preference::Right => RIGHT,
        Preference::Same => SAME,
    }
}

/// Parses a wire label back to a [`Preference`].
pub fn parse_preference(s: &str) -> Option<Preference> {
    match s {
        LEFT => Some(Preference::Left),
        RIGHT => Some(Preference::Right),
        SAME => Some(Preference::Same),
        _ => None,
    }
}

/// Vote tallies for one question on one pair (or over a whole two-version
/// test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoteCounts {
    /// Votes for the left / "A" version.
    pub left: u64,
    /// Votes for the right / "B" version.
    pub right: u64,
    /// "Same" votes.
    pub same: u64,
}

impl VoteCounts {
    /// Total votes.
    pub fn total(&self) -> u64 {
        self.left + self.right + self.same
    }

    /// Percentages `(left, same, right)` in the order Fig. 8 plots.
    ///
    /// # Panics
    ///
    /// Panics when there are no votes.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        assert!(t > 0, "no votes recorded");
        (
            100.0 * self.left as f64 / t as f64,
            100.0 * self.same as f64 / t as f64,
            100.0 * self.right as f64 / t as f64,
        )
    }

    /// The VWO-style one-tailed significance that the right/"B" version is
    /// preferred over the left/"A" version: a two-proportion test of
    /// `left/total` vs `right/total` (the paper's question-C analysis,
    /// which yielded p = 6.8e-8 on a 14-vs-46 split of 100).
    pub fn significance(&self) -> TestResult {
        let n = self.total();
        two_proportion_z_test(self.left, n, self.right, n, Tail::OneSidedGreater)
    }
}

/// Analysis of a single question across the kept sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionAnalysis {
    /// The question text.
    pub question: String,
    /// Per-pair tallies `((left_version, right_version), votes)` for real
    /// pages, in presentation order.
    pub pair_votes: Vec<((usize, usize), VoteCounts)>,
    /// The pairwise win matrix over versions.
    pub matrix: PairwiseMatrix,
}

impl QuestionAnalysis {
    /// Aggregates one question over the kept records.
    ///
    /// # Panics
    ///
    /// Panics if the test has fewer than two versions.
    pub fn aggregate(
        records: &[&SessionRecord],
        prepared: &PreparedTest,
        question: &str,
        n_versions: usize,
    ) -> Self {
        let mut matrix = PairwiseMatrix::new(n_versions);
        let mut pair_votes: Vec<((usize, usize), VoteCounts)> = prepared
            .real_pairs()
            .iter()
            .map(|m| ((m.left_index(), m.right), VoteCounts::default()))
            .collect();
        for rec in records {
            for page in &rec.pages {
                let meta = match prepared.page(&page.page_name) {
                    Some(m) if m.is_real() => m,
                    _ => continue,
                };
                let answer = match page.answers.get(question).and_then(|a| parse_preference(a)) {
                    Some(p) => p,
                    None => continue,
                };
                matrix.record(meta.left_index(), meta.right, answer);
                if let Some((_, votes)) = pair_votes
                    .iter_mut()
                    .find(|((l, r), _)| *l == meta.left_index() && *r == meta.right)
                {
                    match answer {
                        Preference::Left => votes.left += 1,
                        Preference::Right => votes.right += 1,
                        Preference::Same => votes.same += 1,
                    }
                }
            }
        }
        Self { question: question.to_string(), pair_votes, matrix }
    }

    /// Overall best-first ranking by Borda score.
    pub fn ranking(&self) -> Vec<usize> {
        borda_ranking(&self.matrix)
    }

    /// Fleiss' kappa over the real pairs: chance-corrected inter-rater
    /// agreement on the Left/Right/Same votes (each pair is a "subject",
    /// each participant a "rater"). `None` when the pairs were rated by
    /// different numbers of participants (kappa requires a balanced
    /// design) or when there are no votes.
    pub fn agreement_kappa(&self) -> Option<f64> {
        let counts: Vec<Vec<u64>> =
            self.pair_votes.iter().map(|(_, v)| vec![v.left, v.same, v.right]).collect();
        if counts.is_empty() {
            return None;
        }
        let n: u64 = counts[0].iter().sum();
        if n < 2 || counts.iter().any(|row| row.iter().sum::<u64>() != n) {
            return None;
        }
        Some(kscope_stats::fleiss_kappa(&counts))
    }

    /// For a two-version test, the A-vs-B tallies (there is exactly one
    /// real pair).
    pub fn two_version_votes(&self) -> Option<VoteCounts> {
        if self.pair_votes.len() == 1 {
            Some(self.pair_votes[0].1)
        } else {
            None
        }
    }
}

/// The Fig. 4 data: for each version, how often each rank (A = best … E =
/// worst) was assigned by individual participants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankDistribution {
    /// `counts[version][rank]` = number of participants assigning that rank.
    pub counts: Vec<Vec<u64>>,
}

impl RankDistribution {
    /// Computes per-participant rankings (each participant's own pairwise
    /// answers → Borda ranking) and tallies rank positions per version.
    ///
    /// # Panics
    ///
    /// Panics if `n_versions < 2`.
    pub fn from_records(
        records: &[&SessionRecord],
        prepared: &PreparedTest,
        question: &str,
        n_versions: usize,
    ) -> Self {
        let mut counts = vec![vec![0u64; n_versions]; n_versions];
        for rec in records {
            let mut matrix = PairwiseMatrix::new(n_versions);
            let mut any = false;
            for page in &rec.pages {
                let meta = match prepared.page(&page.page_name) {
                    Some(m) if m.is_real() => m,
                    _ => continue,
                };
                if let Some(p) = page.answers.get(question).and_then(|a| parse_preference(a)) {
                    matrix.record(meta.left_index(), meta.right, p);
                    any = true;
                }
            }
            if !any {
                continue;
            }
            let ranking = borda_ranking_resolved(&matrix);
            for (version, rank) in ranking_to_positions(&ranking).into_iter().enumerate() {
                counts[version][rank] += 1;
            }
        }
        Self { counts }
    }

    /// Percentage of participants assigning `rank` to `version`.
    pub fn percentage(&self, version: usize, rank: usize) -> f64 {
        let total: u64 = self.counts[version].iter().sum();
        if total == 0 {
            0.0
        } else {
            100.0 * self.counts[version][rank] as f64 / total as f64
        }
    }

    /// The version most often ranked at `rank` (ties → lower index).
    pub fn modal_version_at_rank(&self, rank: usize) -> usize {
        (0..self.counts.len())
            .max_by(|&a, &b| self.counts[a][rank].cmp(&self.counts[b][rank]).then(b.cmp(&a)))
            .expect("at least one version")
    }

    /// Versions ordered by how often they won rank "A" (best), descending.
    pub fn order_by_top_votes(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.counts.len()).collect();
        order.sort_by(|&a, &b| self.counts[b][0].cmp(&self.counts[a][0]).then(a.cmp(&b)));
        order
    }
}

/// Vote tallies for one question broken down by a demographic facet —
/// the per-segment view an experimenter uses once the overall verdict is
/// in ("does the redesign win with older readers too?").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemographicBreakdown {
    /// `(facet value, tallies)` sorted by facet value.
    pub segments: Vec<(String, VoteCounts)>,
}

impl DemographicBreakdown {
    /// Splits a two-version test's votes by a demographic field of the
    /// uploaded records (`"age"`, `"country"`, `"gender"`, or
    /// `"tech_ability"`). Records without the field land in `"unknown"`.
    pub fn split(
        records: &[&SessionRecord],
        prepared: &PreparedTest,
        question: &str,
        facet: &str,
    ) -> Self {
        let mut map: std::collections::BTreeMap<String, VoteCounts> =
            std::collections::BTreeMap::new();
        for rec in records {
            let value = rec
                .demographics
                .get(facet)
                .map(|v| match v {
                    serde_json::Value::String(s) => s.clone(),
                    other => other.to_string(),
                })
                .unwrap_or_else(|| "unknown".to_string());
            let votes = map.entry(value).or_default();
            for page in &rec.pages {
                let is_real = prepared.page(&page.page_name).map(|m| m.is_real()).unwrap_or(false);
                if !is_real {
                    continue;
                }
                match page.answers.get(question).and_then(|a| parse_preference(a)) {
                    Some(Preference::Left) => votes.left += 1,
                    Some(Preference::Right) => votes.right += 1,
                    Some(Preference::Same) => votes.same += 1,
                    None => {}
                }
            }
        }
        Self { segments: map.into_iter().collect() }
    }

    /// The segment with the most votes.
    pub fn largest_segment(&self) -> Option<&(String, VoteCounts)> {
        self.segments.iter().max_by_key(|(_, v)| v.total())
    }
}

/// Behaviour observables pulled out of session records — the Fig. 5 CDFs.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorSamples {
    /// Per-comparison durations, minutes.
    pub comparison_minutes: Vec<f64>,
    /// Total time per overall task, minutes.
    pub task_minutes: Vec<f64>,
    /// Tabs created per session.
    pub created_tabs: Vec<f64>,
    /// Active-tab switches per session.
    pub active_tabs: Vec<f64>,
}

impl BehaviorSamples {
    /// Extracts behaviour samples from records.
    pub fn from_records(records: &[&SessionRecord]) -> Self {
        let mut comparison_minutes = Vec::new();
        let mut task_minutes = Vec::new();
        let mut created_tabs = Vec::new();
        let mut active_tabs = Vec::new();
        for rec in records {
            for page in &rec.pages {
                comparison_minutes.push(page.duration_ms as f64 / 60_000.0);
            }
            task_minutes.push(rec.total_duration_ms() as f64 / 60_000.0);
            created_tabs.push(f64::from(rec.created_tabs));
            active_tabs.push(f64::from(rec.active_tab_switches));
        }
        Self { comparison_minutes, task_minutes, created_tabs, active_tabs }
    }

    /// ECDF of per-comparison durations.
    ///
    /// # Panics
    ///
    /// Panics if no records were supplied.
    pub fn comparison_ecdf(&self) -> Ecdf {
        Ecdf::new(self.comparison_minutes.clone())
    }

    /// ECDF of time per overall task (Fig. 5c).
    ///
    /// # Panics
    ///
    /// Panics if no records were supplied.
    pub fn task_ecdf(&self) -> Ecdf {
        Ecdf::new(self.task_minutes.clone())
    }

    /// ECDF of created tabs (Fig. 5b).
    ///
    /// # Panics
    ///
    /// Panics if no records were supplied.
    pub fn created_tabs_ecdf(&self) -> Ecdf {
        Ecdf::new(self.created_tabs.clone())
    }

    /// ECDF of active-tab switches (Fig. 5a).
    ///
    /// # Panics
    ///
    /// Panics if no records were supplied.
    pub fn active_tabs_ecdf(&self) -> Ecdf {
        Ecdf::new(self.active_tabs.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::{ControlKind, IntegratedPageMeta};
    use kscope_browser::PageResult;
    use std::collections::BTreeMap;

    fn prepared3() -> PreparedTest {
        // Three versions -> 3 real pairs + identical control.
        let pair = |k: usize, l: usize, r: usize| IntegratedPageMeta {
            name: format!("integrated-{k:03}.html"),
            left: Some(l),
            right: r,
            control: None,
        };
        PreparedTest {
            test_id: "t".into(),
            pages: vec![
                pair(0, 0, 1),
                pair(1, 0, 2),
                pair(2, 1, 2),
                IntegratedPageMeta {
                    name: "control-identical.html".into(),
                    left: Some(0),
                    right: 0,
                    control: Some(ControlKind::IdenticalPair),
                },
            ],
        }
    }

    /// A record answering the three real pairs with the given labels.
    fn record(answers: [&str; 3]) -> SessionRecord {
        let page = |name: String, answer: &str| PageResult {
            page_name: name,
            answers: {
                let mut m = BTreeMap::new();
                m.insert("q".to_string(), answer.to_string());
                m
            },
            duration_ms: 30_000,
            visits: 1,
        };
        SessionRecord {
            test_id: "t".into(),
            contributor_id: "w".into(),
            submission_id: "sub-w".into(),
            demographics: serde_json::json!({}),
            pages: vec![
                page("integrated-000.html".into(), answers[0]),
                page("integrated-001.html".into(), answers[1]),
                page("integrated-002.html".into(), answers[2]),
                page("control-identical.html".into(), "Same"),
            ],
            created_tabs: 4,
            active_tab_switches: 6,
        }
    }

    #[test]
    fn label_roundtrip() {
        for p in [Preference::Left, Preference::Right, Preference::Same] {
            assert_eq!(parse_preference(preference_label(p)), Some(p));
        }
        assert_eq!(parse_preference("Both"), None);
    }

    #[test]
    fn aggregate_counts_real_pages_only() {
        // Version 1 beats 0 and 2; version 0 beats 2.
        let r1 = record(["Right", "Left", "Left"]);
        let r2 = record(["Right", "Left", "Left"]);
        let r3 = record(["Same", "Left", "Left"]);
        let records: Vec<&SessionRecord> = vec![&r1, &r2, &r3];
        let qa = QuestionAnalysis::aggregate(&records, &prepared3(), "q", 3);
        assert_eq!(qa.pair_votes[0].1, VoteCounts { left: 0, right: 2, same: 1 });
        assert_eq!(qa.pair_votes[1].1, VoteCounts { left: 3, right: 0, same: 0 });
        // Control page answers never enter the matrix.
        assert_eq!(qa.matrix.total(0, 1), 3);
        assert_eq!(qa.ranking(), vec![1, 0, 2]);
    }

    #[test]
    fn agreement_kappa_computed_when_balanced() {
        // Unanimous votes on every pair -> perfect agreement.
        let r1 = record(["Right", "Left", "Left"]);
        let r2 = record(["Right", "Left", "Left"]);
        let records: Vec<&SessionRecord> = vec![&r1, &r2];
        let qa = QuestionAnalysis::aggregate(&records, &prepared3(), "q", 3);
        let k = qa.agreement_kappa().unwrap();
        assert!((k - 1.0).abs() < 1e-9, "k = {k}");
        // A single rater: kappa undefined.
        let solo: Vec<&SessionRecord> = vec![&r1];
        let qa = QuestionAnalysis::aggregate(&solo, &prepared3(), "q", 3);
        assert!(qa.agreement_kappa().is_none());
    }

    #[test]
    fn two_version_votes_only_for_pairs() {
        let r = record(["Left", "Left", "Left"]);
        let records = vec![&r];
        let qa = QuestionAnalysis::aggregate(&records, &prepared3(), "q", 3);
        assert!(qa.two_version_votes().is_none());
    }

    #[test]
    fn vote_percentages_and_significance() {
        let v = VoteCounts { left: 14, right: 46, same: 40 };
        let (l, s, r) = v.percentages();
        assert_eq!((l, s, r), (14.0, 40.0, 46.0));
        // The paper's question C: decisively significant.
        let t = v.significance();
        assert!(t.p_value < 1e-5, "p = {}", t.p_value);
        // A balanced outcome is not significant.
        let flat = VoteCounts { left: 30, right: 32, same: 38 };
        assert!(!flat.significance().significant_at(0.05));
    }

    #[test]
    fn rank_distribution_counts_each_participant_once() {
        // Both participants rank 1 > 0 > 2.
        let r1 = record(["Right", "Left", "Left"]);
        let r2 = record(["Right", "Left", "Left"]);
        let records: Vec<&SessionRecord> = vec![&r1, &r2];
        let d = RankDistribution::from_records(&records, &prepared3(), "q", 3);
        assert_eq!(d.counts[1][0], 2); // version 1 ranked best twice
        assert_eq!(d.counts[0][1], 2);
        assert_eq!(d.counts[2][2], 2);
        assert_eq!(d.percentage(1, 0), 100.0);
        assert_eq!(d.modal_version_at_rank(0), 1);
        assert_eq!(d.order_by_top_votes()[0], 1);
    }

    #[test]
    fn rank_distribution_skips_nonparticipants() {
        let r1 = record(["Right", "Left", "Left"]);
        let mut r2 = record(["Right", "Left", "Left"]);
        for p in &mut r2.pages {
            p.answers.clear();
        }
        let records: Vec<&SessionRecord> = vec![&r1, &r2];
        let d = RankDistribution::from_records(&records, &prepared3(), "q", 3);
        let total: u64 = d.counts[0].iter().sum();
        assert_eq!(total, 1, "only the answering participant counts");
    }

    #[test]
    fn demographic_breakdown_splits_and_totals() {
        let mut r1 = record(["Right", "Left", "Left"]);
        r1.demographics = serde_json::json!({"age": "Under25"});
        let mut r2 = record(["Left", "Left", "Left"]);
        r2.demographics = serde_json::json!({"age": "Age50Plus"});
        let mut r3 = record(["Right", "Right", "Right"]);
        r3.demographics = serde_json::json!({"age": "Under25"});
        let records: Vec<&SessionRecord> = vec![&r1, &r2, &r3];
        let b = DemographicBreakdown::split(&records, &prepared3(), "q", "age");
        assert_eq!(b.segments.len(), 2);
        let under = &b.segments.iter().find(|(k, _)| k == "Under25").unwrap().1;
        // r1: R,L,L  r3: R,R,R -> left 2, right 4 over the 3 real pages each.
        assert_eq!(under.total(), 6);
        assert_eq!(under.right, 4);
        let senior = &b.segments.iter().find(|(k, _)| k == "Age50Plus").unwrap().1;
        assert_eq!(senior.total(), 3);
        assert_eq!(b.largest_segment().unwrap().0, "Under25");
    }

    #[test]
    fn demographic_breakdown_unknown_bucket() {
        let r = record(["Left", "Left", "Left"]);
        let records: Vec<&SessionRecord> = vec![&r];
        let b = DemographicBreakdown::split(&records, &prepared3(), "q", "nonexistent");
        assert_eq!(b.segments.len(), 1);
        assert_eq!(b.segments[0].0, "unknown");
    }

    #[test]
    fn behavior_samples_extracted() {
        let r1 = record(["Left", "Left", "Left"]);
        let r2 = record(["Right", "Right", "Right"]);
        let records: Vec<&SessionRecord> = vec![&r1, &r2];
        let b = BehaviorSamples::from_records(&records);
        assert_eq!(b.comparison_minutes.len(), 8); // 4 pages x 2 records
        assert_eq!(b.task_minutes.len(), 2);
        assert!((b.task_minutes[0] - 2.0).abs() < 1e-9); // 4 x 30s
        assert_eq!(b.created_tabs, vec![4.0, 4.0]);
        let e = b.active_tabs_ecdf();
        assert_eq!(e.eval(6.0), 1.0);
    }
}
