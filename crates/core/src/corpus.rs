//! Synthetic test webpages.
//!
//! The paper's experiments run on two real pages we cannot redistribute:
//! the Wikipedia "rock hyrax" article (text-heavy, used for the font-size
//! study and the uPLT case study) and the authors' research-group landing
//! page (nine expandable sections with an "Expand" button, used for the
//! A/B comparison). This module generates structurally equivalent pages:
//! same content classes (navigation bar vs main text vs infobox), same
//! variant axes (main-text font size; Expand-button size/icon/position).

use crate::params::{TestParams, WebpageSpec};
use kscope_html::Document;
use kscope_pageload::{LoadSpec, SelectorTiming};
use kscope_singlefile::ResourceStore;

/// CSS selector addressing the article's main text, used by the font-size
/// variants and by the browser's stimulus extraction.
pub const MAIN_TEXT_SELECTOR: &str = "#mw-content-text";

/// Paragraphs of the encyclopedia-style article (our own text; the paper
/// used the Wikipedia "rock hyrax" page because "it relates to a topic of
/// general interest, neither technical nor purely academic").
const ARTICLE_PARAGRAPHS: [&str; 5] = [
    "The rock hyrax is a medium-sized terrestrial mammal found across \
     sub-Saharan Africa and the Middle East. Despite its rodent-like \
     appearance, its closest living relatives are elephants and manatees, \
     a kinship revealed by details of its feet, teeth, and skull.",
    "Rock hyraxes live in colonies of up to eighty animals among boulder \
     fields and rocky outcrops, where crevices offer shelter from eagles \
     and leopards. A dominant male watches for predators from a high perch \
     and warns the colony with a sharp bark.",
    "The species is a generalist herbivore. Feeding bouts are short and \
     intense: a colony fans out over the grass, eats for twenty minutes \
     while sentries watch, and retreats to the rocks to digest in the sun. \
     Their stomachs host complex microbial communities that ferment coarse \
     vegetation.",
    "Hyraxes regulate body temperature behaviourally, basking in the \
     morning and huddling in groups at night. Their feet have rubbery pads \
     kept moist by glandular secretions, which act like suction cups on \
     steep rock faces.",
    "Vocal communication is elaborate; males sing long structured songs \
     whose syntax varies regionally, and playback studies show colonies \
     respond differently to neighbouring dialects. The fossil record of \
     the group stretches back more than thirty million years.",
];

/// Navigation links of the article's chrome.
const NAV_LINKS: [&str; 6] =
    ["Main page", "Contents", "Current events", "Random article", "About", "Donate"];

/// Writes the encyclopedia article into `store` under `folder/`, with the
/// main text at `font_pt` points. Produces `index.html`, `style.css`, and
/// two image resources — a realistic multi-file saved page for the
/// single-file compressor to fold.
pub fn write_wikipedia_article(store: &mut ResourceStore, folder: &str, font_pt: f64) {
    let folder = folder.trim_end_matches('/');
    let nav_items: String =
        NAV_LINKS.iter().map(|l| format!("<li><a href=\"#\">{l}</a></li>")).collect();
    let paragraphs: String = ARTICLE_PARAGRAPHS.iter().map(|p| format!("<p>{p}</p>")).collect();
    let html = format!(
        r#"<!DOCTYPE html><html><head>
<title>Rock hyrax - The Free Encyclopedia</title>
<link rel="stylesheet" href="style.css">
</head><body>
<nav id="mw-navigation" class="navbar"><ul>{nav_items}</ul></nav>
<div id="content" class="page-body">
  <h1>Rock hyrax</h1>
  <div class="infobox" id="infobox">
    <img src="img/hyrax.jpg" width="220" height="160">
    <table><tr><td>Kingdom</td><td>Animalia</td></tr>
    <tr><td>Order</td><td>Hyracoidea</td></tr></table>
  </div>
  <div id="mw-content-text" style="font-size: {font_pt}pt">
    {paragraphs}
  </div>
</div>
<footer id="footer"><p>Content available under a free license.</p></footer>
</body></html>"#
    );
    store.insert(&format!("{folder}/index.html"), "text/html", html.into_bytes());
    store.insert(
        &format!("{folder}/style.css"),
        "text/css",
        b".navbar { background: #f6f6f6 } .infobox { float: right; width: 240px }\n\
          .page-body { max-width: 960px; margin: 0 auto }"
            .to_vec(),
    );
    // Tiny placeholder JPEG/PNG payloads (content is irrelevant; size is
    // what the inliner and storage paths exercise).
    store.insert(&format!("{folder}/img/hyrax.jpg"), "image/jpeg", vec![0xff, 0xd8, 0xff, 0xe0]);
    store.insert(&format!("{folder}/img/map.png"), "image/png", vec![0x89, 0x50, 0x4e, 0x47]);
}

/// Builds the five font-size versions of the paper's first experiment
/// (10/12/14/18/22 pt) and the matching [`TestParams`].
///
/// Every version shares the same 3-second uniform page-load setting, "as
/// the original page load time when accessing the original page from our
/// premises".
pub fn font_size_study(participants: usize) -> (ResourceStore, TestParams) {
    let sizes = [10.0, 12.0, 14.0, 18.0, 22.0];
    let mut store = ResourceStore::new();
    let mut webpages = Vec::new();
    for pt in sizes {
        let folder = format!("pages/font-{pt:.0}");
        write_wikipedia_article(&mut store, &folder, pt);
        webpages.push(
            WebpageSpec::new(&folder, "index.html", 3000)
                .with_description(&format!("{pt:.0}pt main text")),
        );
    }
    let params = TestParams::new(
        "font-size-study",
        participants,
        vec!["Which webpage's font size is more suitable (easier) for reading?"],
        webpages,
    );
    (store, params)
}

/// The font sizes of [`font_size_study`], in version order.
pub const FONT_STUDY_SIZES: [f64; 5] = [10.0, 12.0, 14.0, 18.0, 22.0];

/// The uPLT case study of §IV-C: two visually identical article versions
/// whose parts load in opposite order. Version A shows the navigation bar
/// at 2 s and the main text at 4 s; version B reverses them. Both complete
/// at 4 s, so their above-the-fold time is identical.
pub fn uplt_case_study(participants: usize) -> (ResourceStore, TestParams) {
    let mut store = ResourceStore::new();
    write_wikipedia_article(&mut store, "pages/uplt-a", 12.0);
    write_wikipedia_article(&mut store, "pages/uplt-b", 12.0);
    let schedule = |nav_ms: u64, text_ms: u64| {
        LoadSpec::PerSelector(vec![
            SelectorTiming { selector: "#mw-navigation".into(), at_ms: nav_ms },
            SelectorTiming { selector: "#content".into(), at_ms: text_ms },
            SelectorTiming { selector: "#footer".into(), at_ms: text_ms },
        ])
    };
    let webpages = vec![
        WebpageSpec::new("pages/uplt-a", "index.html", 0)
            .with_page_load(&schedule(2000, 4000))
            .with_description("navigation first (2s), main text last (4s)"),
        WebpageSpec::new("pages/uplt-b", "index.html", 0)
            .with_page_load(&schedule(4000, 2000))
            .with_description("main text first (2s), navigation last (4s)"),
    ];
    let params = TestParams::new(
        "uplt-case-study",
        participants,
        vec!["Which version of the webpage seems ready to use first?"],
        webpages,
    );
    (store, params)
}

/// Which version of the research-group page to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupPageVersion {
    /// The original: a small, plain "Expand" button at the right end of
    /// each section header.
    Original,
    /// The §IV-B redesign: button text 1.5× larger, enriched with a
    /// captivating symbol, positioned closer to the main text.
    Variant,
}

/// Section titles of the group landing page ("our official group webpage
/// includes 9 sections").
const GROUP_SECTIONS: [&str; 9] = [
    "About",
    "News",
    "People",
    "Selected Publications",
    "Selected Talks",
    "Projects",
    "Teaching",
    "Press",
    "Contact",
];

/// Writes one version of the research-group page into `store` under
/// `folder/`.
pub fn write_group_page(store: &mut ResourceStore, folder: &str, version: GroupPageVersion) {
    let folder = folder.trim_end_matches('/');
    let (btn_style, icon, near) = match version {
        GroupPageVersion::Original => ("font-size: 12pt", "", false),
        GroupPageVersion::Variant => ("font-size: 18pt", "<span class=\"icon\">▾</span> ", true),
    };
    let sections: String = GROUP_SECTIONS
        .iter()
        .enumerate()
        .map(|(i, title)| {
            let button = format!(
                "<button class=\"expand-btn\" style=\"{btn_style}\" \
                 data-near-text=\"{near}\" data-toggles=\"#collapsed-{i}\">\
                 {icon}Expand</button>"
            );
            let (before, after) =
                if near { (String::new(), button.clone()) } else { (button, String::new()) };
            format!(
                "<section id=\"sec-{i}\"><h2>{title} {before}</h2>\
                 <p>Summary of the {title} section with enough words to \
                 occupy a couple of lines on the landing page layout.</p>{after}\
                 <div class=\"collapsed\" id=\"collapsed-{i}\" style=\"display:none\">\
                 Hidden details of {title} shown after expanding.</div></section>"
            )
        })
        .collect();
    let html = format!(
        r#"<!DOCTYPE html><html><head>
<title>Networks Research Group</title><link rel="stylesheet" href="group.css">
</head><body>
<header id="masthead"><h1>Networks Research Group</h1></header>
<div id="content" class="sections">{sections}</div>
<footer><p>Department of Computer Science</p></footer>
</body></html>"#
    );
    store.insert(&format!("{folder}/index.html"), "text/html", html.into_bytes());
    store.insert(
        &format!("{folder}/group.css"),
        "text/css",
        b"section { border-bottom: 1px solid #ddd } .expand-btn { float: right }".to_vec(),
    );
}

/// Builds the A/B pair of the §IV-B experiment and the three questions of
/// Fig. 8, with the paper's 3-second page-load setting.
pub fn expand_button_study(participants: usize) -> (ResourceStore, TestParams) {
    let mut store = ResourceStore::new();
    write_group_page(&mut store, "pages/group-a", GroupPageVersion::Original);
    write_group_page(&mut store, "pages/group-b", GroupPageVersion::Variant);
    let params = TestParams::new(
        "expand-button-study",
        participants,
        vec![
            "Which webpage is graphically more appealing?",
            "Which version of the 'Expand' button looks better?",
            "Which version of the 'Expand' button is more visible?",
        ],
        vec![
            WebpageSpec::new("pages/group-a", "index.html", 3000)
                .with_description("original Expand button"),
            WebpageSpec::new("pages/group-b", "index.html", 3000)
                .with_description("larger Expand button with symbol, near text"),
        ],
    );
    (store, params)
}

/// Section bodies of the news page.
const NEWS_PARAGRAPHS: [&str; 4] = [
    "City council approves the riverfront redevelopment plan after a \
     six-hour session, clearing the way for construction to begin in the \
     spring.",
    "The plan sets aside a third of the corridor for public parkland and \
     requires ground-floor retail along the new promenade.",
    "Opponents argued the projected traffic studies understated peak \
     volumes; the council attached a monitoring clause that re-opens the \
     permit if thresholds are exceeded.",
    "Funding combines municipal bonds with a state infrastructure grant \
     awarded earlier this year.",
];

/// Writes a news-article page into `store` under `folder/`, optionally
/// interleaved with ad blocks — the abstract's "with vs without ads"
/// example. Ads are `<div class="ad">` blocks a real ad slot would occupy.
pub fn write_news_page(store: &mut ResourceStore, folder: &str, with_ads: bool) {
    let folder = folder.trim_end_matches('/');
    let ad = |i: usize| {
        format!(
            "<div class=\"ad\" id=\"ad-{i}\"><p>SPONSORED: Limited-time offer on \
             products you did not ask about. Click now.</p></div>"
        )
    };
    let mut body = String::new();
    for (i, p) in NEWS_PARAGRAPHS.iter().enumerate() {
        body.push_str(&format!("<p>{p}</p>"));
        if with_ads && i < 3 {
            body.push_str(&ad(i));
        }
    }
    if with_ads {
        body.push_str(&ad(3));
    }
    let html = format!(
        r##"<!DOCTYPE html><html><head>
<title>Riverfront plan approved - The Daily Ledger</title>
<link rel="stylesheet" href="news.css">
</head><body>
<nav id="site-nav"><a href="#">Home</a> <a href="#">Local</a> <a href="#">Business</a></nav>
<div id="content" class="article" style="font-size: 12pt">
  <h1>Riverfront plan approved</h1>
  {body}
</div>
<footer><p>The Daily Ledger</p></footer>
</body></html>"##
    );
    store.insert(&format!("{folder}/index.html"), "text/html", html.into_bytes());
    store.insert(
        &format!("{folder}/news.css"),
        "text/css",
        b".ad { border: 1px solid #f90; background: #ffe }".to_vec(),
    );
}

/// Builds the "with vs without ads" A/B pair from the abstract.
pub fn ads_study(participants: usize) -> (ResourceStore, TestParams) {
    let mut store = ResourceStore::new();
    write_news_page(&mut store, "pages/with-ads", true);
    write_news_page(&mut store, "pages/ad-free", false);
    let params = TestParams::new(
        "ads-study",
        participants,
        vec!["Which webpage is more pleasant to read?"],
        vec![
            WebpageSpec::new("pages/with-ads", "index.html", 3000)
                .with_description("article with four ad blocks"),
            WebpageSpec::new("pages/ad-free", "index.html", 3000)
                .with_description("ad-free article"),
        ],
    );
    (store, params)
}

/// Ad-load stimulus of a page version: how many ad blocks it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdMetrics {
    /// Number of `.ad` blocks.
    pub ad_count: usize,
}

impl AdMetrics {
    /// Counts the ad blocks in a page's DOM.
    pub fn extract(doc: &Document) -> Self {
        let sel: kscope_html::Selector = ".ad".parse().expect("valid selector");
        Self { ad_count: doc.select(&sel).len() }
    }

    /// Latent reading-pleasantness utility: each ad costs attention, and
    /// readers who came for the text (high `text_focus`) mind more. Ad
    /// load saturates — the fifth banner hurts less than the first.
    pub fn reading_utility(&self, text_focus: f64) -> f64 {
        -(self.ad_count.min(6) as f64) * 0.35 * (0.4 + text_focus)
    }
}

/// Style attributes of a version's Expand button, extracted from its DOM —
/// the stimulus the perception models judge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpandButtonMetrics {
    /// Button font size in points.
    pub font_pt: f64,
    /// Whether the button carries the symbol.
    pub has_icon: bool,
    /// Whether the button sits next to the main text.
    pub near_text: bool,
}

impl ExpandButtonMetrics {
    /// Reads the metrics from a page's DOM; `None` when the page has no
    /// Expand button.
    pub fn extract(doc: &Document) -> Option<Self> {
        let sel: kscope_html::Selector = ".expand-btn".parse().expect("valid selector");
        let btn = doc.select_first(&sel)?;
        let font_pt = doc
            .style_property(btn, "font-size")
            .and_then(|v| v.trim_end_matches("pt").trim().parse().ok())
            .unwrap_or(12.0);
        let has_icon = {
            let icon_sel: kscope_html::Selector =
                ".expand-btn .icon".parse().expect("valid selector");
            doc.select_first(&icon_sel).is_some()
        };
        let near_text = doc.attr(btn, "data-near-text") == Some("true");
        Some(Self { font_pt, has_icon, near_text })
    }

    /// A crushing penalty for unreadably small text (the ruined control
    /// version sets every font to 4 pt): whatever the question, a genuine
    /// tester prefers the legible side.
    fn legibility_penalty(&self) -> f64 {
        if self.font_pt < 8.0 {
            -3.0
        } else {
            0.0
        }
    }

    /// Latent utility for "is more visible": dominated by size, helped by
    /// the icon and placement. Calibrated so the paper's variant beats the
    /// original decisively (Fig. 8, question C: 46 B / 14 A / 40 Same).
    pub fn visibility_utility(&self) -> f64 {
        1.3 * (self.font_pt / 12.0 - 1.0).clamp(-1.0, 1.0)
            + 0.04 * f64::from(self.has_icon)
            + 0.01 * f64::from(self.near_text)
            + self.legibility_penalty()
    }

    /// Latent utility for "looks better": weaker and more subjective, so
    /// "Same" narrowly edges the variant (Fig. 8, question B: 45 % Same vs
    /// 42 % B).
    pub fn style_utility(&self) -> f64 {
        0.8 * (self.font_pt / 12.0 - 1.0).clamp(-1.0, 1.0)
            + 0.04 * f64::from(self.has_icon)
            + 0.01 * f64::from(self.near_text)
            + self.legibility_penalty()
    }

    /// Latent utility for whole-page appeal: "the very small variation
    /// introduced does not alter the overall look and feel of the page"
    /// (Fig. 8, question A: 50 % Same), so the difference is tiny.
    pub fn appeal_utility(&self) -> f64 {
        0.25 * (self.font_pt / 12.0 - 1.0).clamp(-1.0, 1.0) + self.legibility_penalty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_html::parse_document;
    use kscope_singlefile::Inliner;

    #[test]
    fn article_is_multi_file_and_inlines() {
        let mut store = ResourceStore::new();
        write_wikipedia_article(&mut store, "w", 12.0);
        assert!(store.contains("w/index.html"));
        assert!(store.contains("w/style.css"));
        assert!(store.contains("w/img/hyrax.jpg"));
        let out = Inliner::new(&store).inline("w/index.html").unwrap();
        assert!(out.report.missing.is_empty(), "missing: {:?}", out.report.missing);
        assert!(out.report.inlined >= 2);
        assert!(out.html.contains("Rock hyrax"));
    }

    #[test]
    fn article_font_size_is_parameterized() {
        let mut store = ResourceStore::new();
        write_wikipedia_article(&mut store, "w", 18.0);
        let doc = parse_document(&store.get_text("w/index.html").unwrap());
        let sel: kscope_html::Selector = MAIN_TEXT_SELECTOR.parse().unwrap();
        let node = doc.select_first(&sel).unwrap();
        assert_eq!(doc.style_property(node, "font-size").as_deref(), Some("18pt"));
    }

    #[test]
    fn font_study_has_five_versions() {
        let (store, params) = font_size_study(100);
        assert_eq!(params.webpages.len(), 5);
        assert_eq!(params.integrated_page_count(), 10);
        params.validate().unwrap();
        for w in &params.webpages {
            assert!(store.contains(&w.main_file_path()), "missing {}", w.main_file_path());
        }
    }

    #[test]
    fn uplt_versions_have_opposite_schedules() {
        let (_, params) = uplt_case_study(100);
        params.validate().unwrap();
        let a = params.webpages[0].load_spec().unwrap();
        let b = params.webpages[1].load_spec().unwrap();
        let time_of = |spec: &LoadSpec, sel: &str| match spec {
            LoadSpec::PerSelector(ts) => {
                ts.iter().find(|t| t.selector == sel).map(|t| t.at_ms).unwrap()
            }
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(time_of(&a, "#mw-navigation"), 2000);
        assert_eq!(time_of(&a, "#content"), 4000);
        assert_eq!(time_of(&b, "#mw-navigation"), 4000);
        assert_eq!(time_of(&b, "#content"), 2000);
        // Both complete at the same time (same ATF, as the paper stresses).
        assert_eq!(a.duration_ms(), b.duration_ms());
    }

    #[test]
    fn group_page_versions_differ_as_described() {
        let mut store = ResourceStore::new();
        write_group_page(&mut store, "a", GroupPageVersion::Original);
        write_group_page(&mut store, "b", GroupPageVersion::Variant);
        let doc_a = parse_document(&store.get_text("a/index.html").unwrap());
        let doc_b = parse_document(&store.get_text("b/index.html").unwrap());
        let ma = ExpandButtonMetrics::extract(&doc_a).unwrap();
        let mb = ExpandButtonMetrics::extract(&doc_b).unwrap();
        // 1) text 1.5x larger, 2) enriched with a symbol, 3) closer to text.
        assert!((mb.font_pt / ma.font_pt - 1.5).abs() < 1e-9);
        assert!(!ma.has_icon && mb.has_icon);
        assert!(!ma.near_text && mb.near_text);
        // Nine sections each.
        let sel: kscope_html::Selector = "section".parse().unwrap();
        assert_eq!(doc_a.select(&sel).len(), 9);
        assert_eq!(doc_b.select(&sel).len(), 9);
    }

    #[test]
    fn group_page_expand_buttons_are_interactive() {
        // The §IV-B mechanic end-to-end: clicking an Expand button in the
        // virtual browser reveals its section's collapsed details.
        let mut store = ResourceStore::new();
        write_group_page(&mut store, "g", GroupPageVersion::Variant);
        let single = Inliner::new(&store).inline("g/index.html").unwrap();
        let mut page = kscope_browser::LoadedPage::from_html(&single.html);
        let area_before = page.layout().total_area();
        let btn: kscope_html::Selector = "#sec-0 .expand-btn".parse().unwrap();
        assert!(page.click(&btn), "button must be wired via data-toggles");
        let revealed = page.document().get_element_by_id("collapsed-0").unwrap();
        assert_eq!(page.document().style_property(revealed, "display").as_deref(), Some("block"));
        // Revealing content grows the painted page.
        assert!(page.layout().total_area() >= area_before);
    }

    #[test]
    fn button_utilities_ordered() {
        let a = ExpandButtonMetrics { font_pt: 12.0, has_icon: false, near_text: false };
        let b = ExpandButtonMetrics { font_pt: 18.0, has_icon: true, near_text: true };
        assert!(b.visibility_utility() > b.style_utility());
        assert!(b.style_utility() > b.appeal_utility());
        assert!(a.visibility_utility().abs() < 1e-9);
        // Visibility gap large, appeal gap tiny — the Fig. 8 gradient.
        assert!(b.visibility_utility() - a.visibility_utility() > 0.6);
        assert!(b.appeal_utility() - a.appeal_utility() < 0.3);
        // The ruined control version loses on every axis.
        let ruined = ExpandButtonMetrics { font_pt: 4.0, has_icon: false, near_text: false };
        assert!(ruined.appeal_utility() < -2.0);
        assert!(ruined.visibility_utility() < -2.0);
    }

    #[test]
    fn news_page_ads_toggle() {
        let mut store = ResourceStore::new();
        write_news_page(&mut store, "a", true);
        write_news_page(&mut store, "b", false);
        let with_ads = parse_document(&store.get_text("a/index.html").unwrap());
        let ad_free = parse_document(&store.get_text("b/index.html").unwrap());
        assert_eq!(AdMetrics::extract(&with_ads).ad_count, 4);
        assert_eq!(AdMetrics::extract(&ad_free).ad_count, 0);
        // Same article text either way.
        let text = |d: &kscope_html::Document| {
            let sel: kscope_html::Selector = "#content > p".parse().unwrap();
            d.select(&sel).len()
        };
        assert_eq!(text(&with_ads), text(&ad_free));
        let out = Inliner::new(&store).inline("a/index.html").unwrap();
        assert!(out.report.missing.is_empty());
    }

    #[test]
    fn ad_utility_monotone_and_saturating() {
        let u = |n: usize| AdMetrics { ad_count: n }.reading_utility(0.8);
        assert_eq!(u(0), 0.0);
        assert!(u(1) < u(0));
        assert!(u(4) < u(1));
        // Saturation: 7 ads no worse than 6.
        assert_eq!(u(7), u(6));
        // Text-focused readers mind more.
        let m = AdMetrics { ad_count: 3 };
        assert!(m.reading_utility(0.9) < m.reading_utility(0.5));
    }

    #[test]
    fn ads_study_params_valid() {
        let (store, params) = ads_study(50);
        params.validate().unwrap();
        assert!(store.contains("pages/with-ads/index.html"));
        assert_eq!(params.integrated_page_count(), 1);
    }

    #[test]
    fn expand_study_params_valid() {
        let (store, params) = expand_button_study(100);
        params.validate().unwrap();
        assert_eq!(params.question.len(), 3);
        assert_eq!(params.integrated_page_count(), 1);
        let out = Inliner::new(&store).inline("pages/group-a/index.html").unwrap();
        assert!(out.report.missing.is_empty());
    }
}
