//! Sorting-reduction campaigns (§III-D).
//!
//! "We also utilize sorting algorithms (e.g., bubble sort, insertion sort,
//! etc.) to reduce the number of integrated webpages when only one
//! comparison question is asked. We omit details for space constraints."
//! This module supplies those details: instead of showing every `C(N,2)`
//! pair, each participant answers only the comparisons a sorting algorithm
//! requests, discovering their personal ranking in `O(N log N)` judgments.
//! Control pages are still shown, and participants failing them are
//! dropped, so the §III-D quality machinery carries over.

use crate::aggregator::{ControlKind, PreparedTest};
use crate::campaign::{Campaign, CampaignError};
use crate::params::TestParams;
use crate::sorting::{full_pairwise_comparisons, sort_versions, SortAlgo};
use kscope_browser::LoadedPage;
use kscope_crowd::platform::Recruitment;
use kscope_crowd::Worker;
use kscope_stats::rank::{ranking_to_positions, Preference};
use rand::Rng;

/// One participant's sorted session.
#[derive(Debug, Clone)]
pub struct SortedSession {
    /// The participant.
    pub worker: Worker,
    /// Their personal best-first ranking of the versions.
    pub ranking: Vec<usize>,
    /// How many side-by-side comparisons they answered (excluding control
    /// pages).
    pub comparisons: usize,
    /// Whether they passed the control pages.
    pub passed_controls: bool,
}

/// The outcome of a sorting-reduction campaign.
#[derive(Debug, Clone)]
pub struct SortedOutcome {
    /// Every session in arrival order.
    pub sessions: Vec<SortedSession>,
    /// The sorting strategy used.
    pub algo: SortAlgo,
    /// Number of versions under test.
    pub n_versions: usize,
}

impl SortedOutcome {
    /// Sessions that passed the control questions.
    pub fn kept(&self) -> Vec<&SortedSession> {
        self.sessions.iter().filter(|s| s.passed_controls).collect()
    }

    /// Total comparisons asked across kept sessions (the money metric).
    pub fn total_comparisons(&self) -> usize {
        self.kept().iter().map(|s| s.comparisons).sum()
    }

    /// What a full pairwise sweep would have asked instead.
    pub fn full_pairwise_comparisons(&self) -> usize {
        self.kept().len() * full_pairwise_comparisons(self.n_versions)
    }

    /// `counts[version][rank]` over kept sessions — the Fig. 4 data under
    /// the reduced design.
    pub fn rank_counts(&self) -> Vec<Vec<u64>> {
        let mut counts = vec![vec![0u64; self.n_versions]; self.n_versions];
        for s in self.kept() {
            for (version, rank) in ranking_to_positions(&s.ranking).into_iter().enumerate() {
                counts[version][rank] += 1;
            }
        }
        counts
    }

    /// Versions ordered by how often they were ranked best.
    pub fn consensus_ranking(&self) -> Vec<usize> {
        let counts = self.rank_counts();
        // Score each version by mean rank (lower better).
        let mut order: Vec<usize> = (0..self.n_versions).collect();
        let mean_rank = |v: usize| {
            let total: u64 = counts[v].iter().sum();
            if total == 0 {
                return f64::MAX;
            }
            counts[v].iter().enumerate().map(|(rank, &c)| rank as f64 * c as f64).sum::<f64>()
                / total as f64
        };
        order.sort_by(|&a, &b| {
            mean_rank(a).partial_cmp(&mean_rank(b)).expect("finite").then(a.cmp(&b))
        });
        order
    }
}

impl Campaign {
    /// Runs a sorting-reduction campaign: each participant answers only the
    /// comparisons `algo` requests for the *first* question, plus the two
    /// control pages.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if pages are missing, the first question
    /// has no registered answer model, or the test has no control pages.
    pub fn run_sorted<R: Rng + ?Sized>(
        &self,
        params: &TestParams,
        prepared: &PreparedTest,
        recruitment: &Recruitment,
        algo: SortAlgo,
        rng: &mut R,
    ) -> Result<SortedOutcome, CampaignError> {
        let question = params
            .question
            .first()
            .ok_or_else(|| CampaignError::UnmappedQuestion("<none>".to_string()))?;
        let kind = self
            .question_kind(question.text())
            .ok_or_else(|| CampaignError::UnmappedQuestion(question.text().to_string()))?;
        let n = params.webpages.len();

        // Preload the version pages (the sort composes pairs on demand, so
        // we need version files, not the pregenerated pairs).
        let mut versions: Vec<LoadedPage> = Vec::with_capacity(n);
        for i in 0..n {
            let name = format!("version-{i}.html");
            let html = self
                .grid()
                .get_text(&prepared.test_id, &name)
                .ok_or_else(|| CampaignError::MissingPage(name.clone()))?;
            versions.push(LoadedPage::from_html(&html));
        }
        // Control pages come from the prepared pair set.
        let mut control_pages: Vec<(&ControlKind, LoadedPage, LoadedPage)> = Vec::new();
        for meta in &prepared.pages {
            if let Some(kind) = &meta.control {
                let html = self
                    .grid()
                    .get_text(&prepared.test_id, &meta.name)
                    .ok_or_else(|| CampaignError::MissingPage(meta.name.clone()))?;
                let integrated = LoadedPage::from_html(&html);
                let refs = integrated.iframe_refs();
                let pane = |file: &str| -> Result<LoadedPage, CampaignError> {
                    let html = self
                        .grid()
                        .get_text(&prepared.test_id, file)
                        .ok_or_else(|| CampaignError::MissingPage(file.to_string()))?;
                    Ok(LoadedPage::from_html(&html))
                };
                control_pages.push((kind, pane(&refs[0])?, pane(&refs[1])?));
            }
        }

        let mut sessions = Vec::with_capacity(recruitment.assignments.len());
        for assignment in &recruitment.assignments {
            let worker = &assignment.worker;
            let outcome = sort_versions(n, algo, |a, b| {
                // The oracle shows version `a` on the left, `b` on the
                // right, matching how an on-demand integrated page would be
                // composed.
                self.judge_pages(kind, worker, &versions[a], &versions[b], rng)
            });
            // Control pages, exactly as in the full design.
            let mut controls_ok = true;
            for (ckind, left, right) in &control_pages {
                let answer = self.judge_pages(kind, worker, left, right, rng);
                let expected = match ckind {
                    ControlKind::IdenticalPair => Preference::Same,
                    ControlKind::ExtremePair => Preference::Right,
                };
                if answer != expected {
                    controls_ok = false;
                }
            }
            sessions.push(SortedSession {
                worker: worker.clone(),
                ranking: outcome.ranking,
                comparisons: outcome.comparisons,
                passed_controls: controls_ok,
            });
        }
        Ok(SortedOutcome { sessions, algo, n_versions: n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;
    use crate::campaign::QuestionKind;
    use crate::corpus;
    use kscope_crowd::platform::{Channel, JobSpec, Platform};
    use kscope_store::{Database, GridStore};
    use rand::{rngs::StdRng, SeedableRng};

    fn run(algo: SortAlgo, participants: usize, seed: u64) -> SortedOutcome {
        let (store, params) = corpus::font_size_study(participants);
        let db = Database::new();
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let recruitment = Platform.post_job(
            &JobSpec::new(&params.test_id, 0.11, participants, Channel::HistoricallyTrustworthy),
            &mut rng,
        );
        Campaign::new(db, grid)
            .with_question(params.question[0].text(), QuestionKind::FontReadability)
            .run_sorted(&params, &prepared, &recruitment, algo, &mut rng)
            .unwrap()
    }

    #[test]
    fn merge_reduction_preserves_the_winner() {
        let outcome = run(SortAlgo::Merge, 60, 5);
        assert!(outcome.kept().len() >= 40, "kept {}", outcome.kept().len());
        let consensus = outcome.consensus_ranking();
        assert!(consensus[0] == 1 || consensus[0] == 2, "winner should be 12/14pt: {consensus:?}");
        assert_eq!(*consensus.last().unwrap(), 4, "22pt last: {consensus:?}");
    }

    #[test]
    fn reduction_actually_reduces() {
        let outcome = run(SortAlgo::Merge, 40, 6);
        assert!(
            outcome.total_comparisons() < outcome.full_pairwise_comparisons(),
            "{} vs {}",
            outcome.total_comparisons(),
            outcome.full_pairwise_comparisons()
        );
        // At N = 5 merge sort needs at most 8 comparisons per worker.
        let max_per_worker = outcome.kept().iter().map(|s| s.comparisons).max().unwrap_or(0);
        assert!(max_per_worker <= 8, "merge used {max_per_worker} on 5 items");
    }

    #[test]
    fn rankings_are_permutations() {
        let outcome = run(SortAlgo::Insertion, 30, 7);
        for s in &outcome.sessions {
            let mut r = s.ranking.clone();
            r.sort_unstable();
            assert_eq!(r, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn controls_catch_spammers_in_sorted_mode() {
        let outcome = run(SortAlgo::Bubble, 80, 8);
        use kscope_crowd::WorkerProfile;
        let spam_failed = outcome
            .sessions
            .iter()
            .filter(|s| matches!(s.worker.profile, WorkerProfile::Spammer(_)))
            .filter(|s| !s.passed_controls)
            .count();
        let spam_total = outcome
            .sessions
            .iter()
            .filter(|s| matches!(s.worker.profile, WorkerProfile::Spammer(_)))
            .count();
        assert!(
            spam_failed * 10 >= spam_total * 7,
            "controls should catch most spam: {spam_failed}/{spam_total}"
        );
    }

    #[test]
    fn rank_counts_sum_per_version() {
        let outcome = run(SortAlgo::Merge, 25, 9);
        let counts = outcome.rank_counts();
        let kept = outcome.kept().len() as u64;
        for (v, row) in counts.iter().enumerate() {
            let total: u64 = row.iter().sum();
            assert_eq!(total, kept, "version {v} rank counts must sum to kept sessions");
        }
    }
}
