//! Fault-tolerant campaign supervision: leases, refill, graceful
//! degradation.
//!
//! [`Campaign::run`] assumes every recruited participant completes
//! flawlessly; real crowd testers abandon sessions mid-comparison,
//! disconnect and re-upload, and straggle past any deadline. The
//! [`CampaignSupervisor`] treats each tester session as a fallible,
//! leased unit of work:
//!
//! * every accepted assignment gets a **lease** whose deadline is the
//!   expected engagement time × a slack factor;
//! * sessions that abandon (mid-page, mid-questionnaire) or never return
//!   are reclaimed when their lease expires and their slots are requeued;
//! * duplicate uploads from disconnect-then-retry clients are
//!   deduplicated on `(test_id, contributor_id, submission_id)` via the
//!   store's atomic unique-key insert, so the `responses` collection
//!   never holds two rows for one session;
//! * the quota is **refilled** by re-posting the job (optionally with an
//!   escalating reward) until the QC-kept count reaches the target or a
//!   campaign deadline / budget cap fires — at which point the supervisor
//!   degrades gracefully, concluding with partial results and a
//!   [`CampaignHealth`] report instead of erroring;
//! * cost accounting pays **only completed sessions** — abandoned and
//!   never-returning workers cost nothing.
//!
//! # Crash-only campaigns
//!
//! [`CampaignSupervisor::run_durable`] makes the whole campaign
//! **crash-only**: kill the process at any instant and a restarted
//! supervisor ([`CampaignSupervisor::resume`]) concludes with the exact
//! outcome an undisturbed run would have produced — same ranking, same
//! response set, same spend, nothing acknowledged lost and nothing repaid.
//!
//! The mechanism is deterministic replay against an idempotent store.
//! Every refill round draws from its own seeded RNG
//! (`splitmix64(campaign_seed ^ round)`), so round *r*'s recruitment,
//! faults, and session behaviour do not depend on how much randomness
//! earlier rounds consumed. A restarted run replays rounds from zero:
//! response inserts land on the unique `(test_id, contributor_id,
//! submission_id)` key and dedupe against the crashed incarnation's rows,
//! lease upserts are idempotent point writes, and the in-memory
//! accounting (including spend — sessions are never paid twice because
//! payment is an accumulator *rebuilt* by the replay, not an incremental
//! ledger) reconverges on the same values. A versioned
//! [`CAMPAIGN_LEDGER_COLLECTION`] document persisted at every round
//! boundary records the seed, postings, spend, and accounting; on resume
//! the replay is cross-checked against it when it reaches the same
//! boundary, so a ledger that disagrees with the replay (wrong seed,
//! edited store) fails loudly instead of silently double-counting.

use crate::aggregator::PreparedTest;
use crate::campaign::{Campaign, CampaignError, CampaignOutcome, DrivenSession, SessionResult};
use crate::params::TestParams;
use crate::quality::apply_quality_control;
use kscope_browser::SessionRecord;
use kscope_crowd::faults::{FaultModel, SessionFault};
use kscope_crowd::platform::{CostReport, JobSpec, Platform};
use kscope_crowd::worker::WorkerId;
use kscope_store::{Database, PersistError};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde_json::{json, Value};
use std::fmt;
use std::sync::Arc;

/// Collection holding the supervisor's durable lease ledger: one document
/// per `(test_id, contributor_id)` recording the lease window and how the
/// session concluded (`leased`, `completed`, `deduped`, or `reclaimed`).
pub const LEASES_COLLECTION: &str = "session_leases";
/// Unique index on `(test_id, contributor_id)` — lease state updates are
/// point lookups.
pub const LEASES_BY_WORKER_INDEX: &str = "leases_by_worker";
/// Ordered index on `(test_id, lease.deadline_ms)` — the expiry sweep is
/// a range scan `[test_id .. (test_id, now)]`, earliest deadline first,
/// instead of a linear pass over every lease ever issued.
pub const LEASES_BY_DEADLINE_INDEX: &str = "leases_by_deadline";
/// Collection holding one durable campaign-ledger document per test: the
/// seed, refill round, postings with rewards, spend in cents, the
/// kept/deduped/abandoned accounting, and the auto-close state. This is
/// what a restarted supervisor resumes from.
pub const CAMPAIGN_LEDGER_COLLECTION: &str = "campaign_ledger";
/// Unique index on `campaign_ledger(test_id)` — ledger reads and the
/// per-round snapshot upsert are point lookups.
pub const LEDGER_BY_TEST_INDEX: &str = "ledger_by_test";
/// Schema version stamped on every ledger document; bump on layout
/// changes so an old supervisor refuses a newer ledger loudly.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// Observer invoked at supervision phase boundaries: `(phase, n)` where
/// `phase` is one of `resume`, `refill`, `session`, `sweep`, or
/// `concluded`. The CLI prints these as flushed `KSCOPE-BEACON` lines so
/// an external chaos harness can SIGKILL the process at a precise
/// instant; it also piggybacks round-boundary checkpoints on `sweep`.
pub type SupervisorHook = Arc<dyn Fn(&str, u64) + Send + Sync>;

/// Mixes the campaign seed with a round number (splitmix64 finalizer) so
/// every refill round draws from an independent, reproducible stream.
fn mix_round_seed(seed: u64, round: usize) -> u64 {
    let mut z = (seed ^ (round as u64)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Round-scoped randomness. `External` threads one caller-supplied
/// generator through every round (the legacy [`CampaignSupervisor::run`]
/// contract, where round *r* depends on rounds before it). `Seeded`
/// reseeds per round from the campaign seed, which is what makes durable
/// resumption a deterministic replay.
enum RoundRngs<'r> {
    External(&'r mut dyn Rng),
    Seeded { seed: u64, current: StdRng },
}

impl RoundRngs<'_> {
    fn start_round(&mut self, round: usize) {
        if let RoundRngs::Seeded { seed, current } = self {
            *current = StdRng::seed_from_u64(mix_round_seed(*seed, round));
        }
    }

    fn rng(&mut self) -> &mut dyn Rng {
        match self {
            RoundRngs::External(r) => *r,
            RoundRngs::Seeded { current, .. } => current,
        }
    }
}

/// Knobs governing supervision. Defaults are deliberately forgiving: a
/// 3× engagement lease, up to 8 refill rounds with a 15% reward
/// escalation per round, and no deadline or budget cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Stop once this many sessions survive quality control.
    pub target_kept: usize,
    /// Lease deadline = expected engagement × this slack factor.
    pub lease_slack: f64,
    /// Expected per-session engagement in ms; derived from the behaviour
    /// model and page count when `None`.
    pub expected_engagement_ms: Option<u64>,
    /// Maximum number of refill rounds after the initial posting.
    pub max_refill_rounds: usize,
    /// Multiplier applied to the reward on each refill round (≥ 1.0
    /// escalates; 1.0 keeps it flat).
    pub reward_escalation: f64,
    /// Hard spend ceiling in USD (worker payments + platform fees).
    pub budget_cap_usd: Option<f64>,
    /// Campaign deadline in virtual ms after the first job posting.
    pub deadline_ms: Option<u64>,
}

impl SupervisorConfig {
    /// A forgiving default configuration aiming for `target_kept`
    /// QC-surviving sessions.
    pub fn new(target_kept: usize) -> Self {
        Self {
            target_kept,
            lease_slack: 3.0,
            expected_engagement_ms: None,
            max_refill_rounds: 8,
            reward_escalation: 1.15,
            budget_cap_usd: None,
            deadline_ms: None,
        }
    }

    /// Sets a campaign deadline (builder style).
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Sets a spend ceiling (builder style).
    pub fn with_budget_cap_usd(mut self, cap: f64) -> Self {
        self.budget_cap_usd = Some(cap);
        self
    }
}

/// Which phase of the session lifecycle a worker abandoned in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbandonPhase {
    /// Closed the browser while viewing an integrated page.
    MidPage,
    /// Left partway through a page's questionnaire.
    MidQuestionnaire,
    /// Accepted the assignment and was never heard from again.
    NeverReturned,
    /// The client violated a hard rule (skipped answer) and the upload
    /// was rejected.
    FlowFault,
}

impl AbandonPhase {
    /// The `phase` label used on `core.sessions_abandoned_total`.
    pub fn metric_label(&self) -> &'static str {
        match self {
            AbandonPhase::MidPage => "mid_page",
            AbandonPhase::MidQuestionnaire => "mid_questionnaire",
            AbandonPhase::NeverReturned => "never_returned",
            AbandonPhase::FlowFault => "flow_fault",
        }
    }
}

/// How one lease concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseOutcome {
    /// Uploaded a clean single response.
    Completed,
    /// Completed, but the upload was retried and the duplicate suppressed
    /// at intake.
    CompletedDeduped,
    /// The lease expired without a stored response; the slot was requeued.
    Abandoned(AbandonPhase),
}

/// One session lease: a worker's claim on a campaign slot, bounded by a
/// deadline after which the supervisor reclaims the slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionLease {
    /// The leased worker.
    pub contributor_id: String,
    /// Which posting round recruited this worker (0 = initial).
    pub round: usize,
    /// When the worker accepted, ms after the campaign started.
    pub issued_ms: u64,
    /// Lease expiry: `issued_ms` + expected engagement × slack.
    pub deadline_ms: u64,
    /// How the lease concluded.
    pub outcome: LeaseOutcome,
}

impl SessionLease {
    /// Re-anchors the lease window to wall-clock time: the absolute
    /// epoch-milliseconds instant, measured from `epoch_now_ms`, at which
    /// this lease expires. Clients stamp this onto every request as
    /// `x-kscope-deadline-ms` so the server can refuse to work for a
    /// session whose lease has already been reclaimed.
    pub fn wall_deadline_ms(&self, epoch_now_ms: u64) -> u64 {
        epoch_now_ms + self.deadline_ms.saturating_sub(self.issued_ms)
    }
}

/// The supervisor's accounting: every recruited worker ends in exactly
/// one of `completed`, `deduped`, or `abandoned`, so
/// `completed + deduped + abandoned == recruited` always holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignHealth {
    /// Workers who accepted a lease across all rounds.
    pub recruited: usize,
    /// Sessions that completed with a single clean upload.
    pub completed: usize,
    /// Sessions that completed but whose duplicate upload was suppressed.
    pub deduped: usize,
    /// Sessions reclaimed without a stored response (all phases).
    pub abandoned: usize,
    /// … of which abandoned while viewing a page.
    pub abandoned_mid_page: usize,
    /// … of which abandoned mid-questionnaire.
    pub abandoned_mid_questionnaire: usize,
    /// … of which never returned at all.
    pub never_returned: usize,
    /// … of which were rejected for hard-rule violations.
    pub flow_faults: usize,
    /// Upload retry attempts observed at intake.
    pub upload_retries: usize,
    /// Refill rounds actually run (0 = initial posting sufficed).
    pub refill_rounds: usize,
    /// Workers recruited by refill rounds.
    pub refill_recruited: usize,
    /// Sessions surviving quality control at conclusion.
    pub qc_kept: usize,
    /// The QC-kept target the campaign aimed for.
    pub target_kept: usize,
    /// Total spend (worker payments + fees), USD. Only completed (and
    /// deduped) sessions are paid.
    pub spend_usd: f64,
    /// The configured spend ceiling, if any.
    pub budget_cap_usd: Option<f64>,
    /// Virtual campaign duration, ms.
    pub duration_ms: u64,
    /// Whether the campaign deadline fired before the target was met.
    pub deadline_hit: bool,
    /// Whether the budget cap blocked a needed refill.
    pub budget_hit: bool,
    /// Whether the refill-round safety valve stopped the campaign.
    pub rounds_exhausted: bool,
}

impl CampaignHealth {
    /// Whether every recruited worker is accounted for:
    /// `completed + deduped + abandoned == recruited`.
    pub fn accounted(&self) -> bool {
        self.completed + self.deduped + self.abandoned == self.recruited
    }

    /// Whether the QC-kept target was reached.
    pub fn reached_target(&self) -> bool {
        self.qc_kept >= self.target_kept
    }

    /// Whether the campaign concluded degraded (partial results).
    pub fn degraded(&self) -> bool {
        !self.reached_target()
    }

    /// The health report as one JSON document.
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "recruited": self.recruited,
            "completed": self.completed,
            "deduped": self.deduped,
            "abandoned": {
                "total": self.abandoned,
                "mid_page": self.abandoned_mid_page,
                "mid_questionnaire": self.abandoned_mid_questionnaire,
                "never_returned": self.never_returned,
                "flow_fault": self.flow_faults,
            },
            "upload_retries": self.upload_retries,
            "refill": {
                "rounds": self.refill_rounds,
                "recruited": self.refill_recruited,
            },
            "qc_kept": self.qc_kept,
            "target_kept": self.target_kept,
            "spend_usd": self.spend_usd,
            "budget_cap_usd": self.budget_cap_usd,
            "duration_ms": self.duration_ms,
            "deadline_hit": self.deadline_hit,
            "budget_hit": self.budget_hit,
            "rounds_exhausted": self.rounds_exhausted,
            "reached_target": self.reached_target(),
        })
    }
}

impl fmt::Display for CampaignHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign health: {}/{} kept (target {}){}",
            self.qc_kept,
            self.completed + self.deduped,
            self.target_kept,
            if self.reached_target() { "" } else { " — DEGRADED" },
        )?;
        writeln!(
            f,
            "  recruited {} = completed {} + deduped {} + abandoned {}",
            self.recruited, self.completed, self.deduped, self.abandoned
        )?;
        writeln!(
            f,
            "  abandoned: mid-page {}, mid-questionnaire {}, never returned {}, flow faults {}",
            self.abandoned_mid_page,
            self.abandoned_mid_questionnaire,
            self.never_returned,
            self.flow_faults
        )?;
        writeln!(
            f,
            "  refill: {} rounds recruited {} extra; upload retries {}",
            self.refill_rounds, self.refill_recruited, self.upload_retries
        )?;
        write!(
            f,
            "  spend ${:.2}{}; deadline_hit={} budget_hit={} rounds_exhausted={}",
            self.spend_usd,
            match self.budget_cap_usd {
                Some(cap) => format!(" of ${cap:.2} cap"),
                None => String::new(),
            },
            self.deadline_hit,
            self.budget_hit,
            self.rounds_exhausted,
        )
    }
}

/// A supervised campaign's conclusion: the (possibly partial) outcome,
/// the health report, and every lease in issue order.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// Analyses over the completed sessions (same shape as an
    /// unsupervised campaign's outcome).
    pub outcome: CampaignOutcome,
    /// The supervisor's accounting.
    pub health: CampaignHealth,
    /// Every lease issued, in issue order.
    pub leases: Vec<SessionLease>,
}

/// Runs a campaign under session leases with abandonment recovery and
/// quota refill. Wraps a [`Campaign`] (which supplies storage, question
/// models, behaviour, QC thresholds, and telemetry).
#[derive(Clone)]
pub struct CampaignSupervisor<'a> {
    campaign: &'a Campaign,
    config: SupervisorConfig,
    faults: FaultModel,
    hook: Option<SupervisorHook>,
}

impl fmt::Debug for CampaignSupervisor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignSupervisor")
            .field("config", &self.config)
            .field("faults", &self.faults)
            .field("hook", &self.hook.is_some())
            .finish_non_exhaustive()
    }
}

struct SupervisorMetrics {
    lease_expired: kscope_telemetry::Counter,
    refill_rounds: kscope_telemetry::Gauge,
    refill_recruited: kscope_telemetry::Counter,
    deduped: kscope_telemetry::Counter,
    retries: kscope_telemetry::Counter,
    /// Spend in integer cents — the gauge is integer-valued.
    budget_spent: kscope_telemetry::Gauge,
    health: kscope_telemetry::Gauge,
}

impl SupervisorMetrics {
    fn register(registry: &kscope_telemetry::Registry) -> Self {
        // Registered (at zero) even before any crash, so the resumption
        // series is always present in `/metrics` and `kscope snapshot`.
        let _ = registry.counter("core.campaign_resumed_total");
        Self {
            lease_expired: registry.counter("core.session_lease_expired_total"),
            refill_rounds: registry.gauge("core.refill_rounds"),
            refill_recruited: registry.counter("core.refill_recruited_total"),
            deduped: registry.counter("server.responses_deduped_total"),
            retries: registry.counter("server.upload_retries_total"),
            budget_spent: registry.gauge("core.campaign_budget_spent_usd"),
            health: registry.gauge("core.campaign_health"),
        }
    }
}

/// Durable-run bookkeeping threaded through the engine: the campaign
/// seed, whether this incarnation resumed an earlier one, and the crashed
/// incarnation's last persisted snapshot (for the boundary cross-check).
struct LedgerState {
    seed: u64,
    resumed: bool,
    resumed_count: u64,
    persisted: Option<Value>,
}

/// Retries a store write while the database is read-only under disk
/// pressure: the supervisor *pauses* (recruiting included — nothing
/// advances past a write that has not been accepted) until background
/// compaction frees WAL space and clears the mode. Counted on
/// `core.supervisor_write_pauses_total` once per pause episode.
fn write_pausing<T>(
    registry: Option<&kscope_telemetry::Registry>,
    mut op: impl FnMut() -> Result<T, PersistError>,
) -> T {
    let mut paused = false;
    let start = std::time::Instant::now();
    loop {
        match op() {
            Ok(v) => return v,
            Err(e) => {
                if !paused {
                    paused = true;
                    if let Some(r) = registry {
                        r.counter("core.supervisor_write_pauses_total").inc();
                    }
                }
                assert!(
                    start.elapsed() < std::time::Duration::from_secs(120),
                    "supervisor write blocked for 120s: {e}"
                );
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    }
}

/// Upserts the campaign-ledger document (point write through the unique
/// `test_id` index), pausing through read-only windows.
fn persist_ledger(
    ledger: &kscope_store::Collection,
    registry: Option<&kscope_telemetry::Registry>,
    doc: &Value,
) {
    let key = json!({ "test_id": doc["test_id"] });
    write_pausing(registry, || {
        ledger.try_upsert_mutate(&key, doc.clone(), |d| {
            if let (Some(obj), Some(src)) = (d.as_object_mut(), doc.as_object()) {
                for (k, v) in src {
                    obj.insert(k.clone(), v.clone());
                }
            }
        })
    });
}

/// The campaign-ledger document persisted at every round boundary.
#[allow(clippy::too_many_arguments)]
fn ledger_snapshot_doc(
    test_id: &str,
    seed: u64,
    config: &SupervisorConfig,
    health: &CampaignHealth,
    postings: &[Value],
    rounds_completed: usize,
    now_ms: u64,
    state: &str,
    resumed_count: u64,
) -> Value {
    json!({
        "test_id": test_id,
        "schema_version": LEDGER_SCHEMA_VERSION,
        "seed": seed,
        "state": state,
        "resumed_count": resumed_count,
        "rounds_completed": rounds_completed,
        "postings": postings,
        "budget_spent_cents": (health.spend_usd * 100.0).round() as i64,
        "accounting": {
            "recruited": health.recruited,
            "completed": health.completed,
            "deduped": health.deduped,
            "abandoned": health.abandoned,
            "qc_kept": health.qc_kept,
            "upload_retries": health.upload_retries,
            "refill_recruited": health.refill_recruited,
        },
        "auto_close": {
            "deadline_hit": health.deadline_hit,
            "budget_hit": health.budget_hit,
            "rounds_exhausted": health.rounds_exhausted,
            "reached_target": health.reached_target(),
        },
        "now_ms": now_ms,
        "config": {
            "target_kept": config.target_kept,
            "lease_slack": config.lease_slack,
            "max_refill_rounds": config.max_refill_rounds,
            "reward_escalation": config.reward_escalation,
            "budget_cap_usd": config.budget_cap_usd,
            "deadline_ms": config.deadline_ms,
        },
    })
}

/// Verifies a resumed replay against the crashed incarnation's persisted
/// snapshot once the replay reaches the same round boundary. A mismatch
/// means the ledger and the store disagree (edited files, wrong seed) —
/// failing loudly beats silently double-paying sessions.
fn check_replay_against_ledger(
    persisted: &Value,
    health: &CampaignHealth,
    rounds_completed: usize,
    now_ms: u64,
) -> Result<(), CampaignError> {
    if persisted.get("rounds_completed").and_then(Value::as_u64) != Some(rounds_completed as u64) {
        return Ok(());
    }
    let acct = &persisted["accounting"];
    let expect = [
        ("recruited", health.recruited),
        ("completed", health.completed),
        ("deduped", health.deduped),
        ("abandoned", health.abandoned),
    ];
    for (field, replayed) in expect {
        let stored = acct.get(field).and_then(Value::as_u64).unwrap_or(u64::MAX);
        if stored != replayed as u64 {
            return Err(CampaignError::LedgerConflict(format!(
                "replay diverged from the persisted ledger at round boundary \
                 {rounds_completed}: {field} replayed {replayed}, ledger holds {stored}"
            )));
        }
    }
    let stored_cents = persisted.get("budget_spent_cents").and_then(Value::as_i64).unwrap_or(-1);
    let replayed_cents = (health.spend_usd * 100.0).round() as i64;
    if stored_cents != replayed_cents {
        return Err(CampaignError::LedgerConflict(format!(
            "replay diverged from the persisted ledger at round boundary {rounds_completed}: \
             spend replayed {replayed_cents}¢, ledger holds {stored_cents}¢"
        )));
    }
    let stored_now = persisted.get("now_ms").and_then(Value::as_u64).unwrap_or(u64::MAX);
    if stored_now != now_ms {
        return Err(CampaignError::LedgerConflict(format!(
            "replay diverged from the persisted ledger at round boundary {rounds_completed}: \
             virtual clock replayed {now_ms}, ledger holds {stored_now}"
        )));
    }
    Ok(())
}

impl<'a> CampaignSupervisor<'a> {
    /// Creates a supervisor over an existing campaign with a reliable
    /// population (no faults).
    pub fn new(campaign: &'a Campaign, config: SupervisorConfig) -> Self {
        Self { campaign, config, faults: FaultModel::none(), hook: None }
    }

    /// Injects a fault model (builder style).
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Installs a phase observer (builder style) — see [`SupervisorHook`].
    pub fn with_hook(mut self, hook: SupervisorHook) -> Self {
        self.hook = Some(hook);
        self
    }

    fn beacon(&self, phase: &str, n: u64) {
        if let Some(hook) = &self.hook {
            hook(phase, n);
        }
    }

    /// Expected engagement per session in ms: configured value, or the
    /// behaviour model's median comparison time × page count.
    fn expected_engagement_ms(&self, pages: usize) -> u64 {
        self.config.expected_engagement_ms.unwrap_or_else(|| {
            let median_min = self.campaign.behavior_model().diligent_median_min;
            ((median_min * pages.max(1) as f64) * 60_000.0).round() as u64
        })
    }

    /// Runs the supervised campaign: post the job, lease every accepted
    /// assignment, reclaim expired/abandoned slots, dedupe duplicate
    /// uploads, refill the quota until `target_kept` sessions survive QC
    /// or a deadline/budget cap fires, then conclude — degraded runs
    /// return partial results, never an error.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] only for campaign *setup* faults
    /// (missing pages, unmapped questions). Session-level faults are the
    /// whole point and are absorbed into the [`CampaignHealth`] report.
    pub fn run<R: Rng + ?Sized>(
        &self,
        params: &TestParams,
        prepared: &PreparedTest,
        spec: &JobSpec,
        rng: &mut R,
    ) -> Result<SupervisedOutcome, CampaignError> {
        let mut reborrow: &mut R = rng;
        let mut rngs = RoundRngs::External(&mut reborrow);
        self.engine(params, prepared, spec, &mut rngs, None)
    }

    /// Runs (or transparently **resumes**) a crash-only supervised
    /// campaign against the campaign's database, which should be durable
    /// for the crash-safety to mean anything. Each refill round draws
    /// from its own seeded RNG and a versioned campaign-ledger document
    /// is persisted at every round boundary, so a process killed at any
    /// instant can be restarted with the same arguments and conclude
    /// with the exact outcome an undisturbed run would have produced.
    ///
    /// If a ledger for this test already exists the run resumes: the
    /// rounds are replayed deterministically (response inserts dedupe
    /// against the crashed incarnation's rows; sessions are never paid
    /// twice because spend is an accumulator rebuilt by the replay), the
    /// replay is cross-checked against the persisted accounting, and
    /// `core.campaign_resumed_total` is incremented.
    ///
    /// # Errors
    ///
    /// Setup faults as in [`CampaignSupervisor::run`], plus
    /// [`CampaignError::LedgerConflict`] when an existing ledger carries
    /// a different seed, a newer schema, or accounting the replay cannot
    /// reproduce.
    pub fn run_durable(
        &self,
        params: &TestParams,
        prepared: &PreparedTest,
        spec: &JobSpec,
        seed: u64,
    ) -> Result<SupervisedOutcome, CampaignError> {
        let db = self.campaign.db();
        let ledger = db.collection(CAMPAIGN_LEDGER_COLLECTION);
        let registry = self.campaign.telemetry().cloned();
        write_pausing(registry.as_deref(), || {
            ledger.try_ensure_index(LEDGER_BY_TEST_INDEX, &["test_id"], true)
        });
        let mut state = LedgerState { seed, resumed: false, resumed_count: 0, persisted: None };
        if let Some(doc) = Self::ledger(db, &prepared.test_id) {
            let version = doc.get("schema_version").and_then(Value::as_u64).unwrap_or(0);
            if version > LEDGER_SCHEMA_VERSION {
                return Err(CampaignError::LedgerConflict(format!(
                    "ledger schema v{version} is newer than this supervisor \
                     (v{LEDGER_SCHEMA_VERSION})"
                )));
            }
            let stored_seed = doc.get("seed").and_then(Value::as_u64);
            if stored_seed != Some(seed) {
                return Err(CampaignError::LedgerConflict(format!(
                    "campaign was started with seed {stored_seed:?}, not {seed}; \
                     resume with the original seed"
                )));
            }
            state.resumed = true;
            state.resumed_count = doc.get("resumed_count").and_then(Value::as_u64).unwrap_or(0) + 1;
            // Record the resume itself durably before replaying: another
            // crash ahead of the first round boundary must still count
            // this incarnation.
            let count = state.resumed_count;
            let key = json!({ "test_id": prepared.test_id });
            write_pausing(registry.as_deref(), || {
                ledger.try_upsert_mutate(&key, key.clone(), |d| {
                    if let Some(obj) = d.as_object_mut() {
                        obj.insert("resumed_count".to_string(), json!(count));
                    }
                })
            });
            if let Some(r) = registry.as_deref() {
                r.counter("core.campaign_resumed_total").inc();
            }
            let boundary = doc.get("rounds_completed").and_then(Value::as_u64).unwrap_or(0);
            state.persisted = Some(doc);
            self.beacon("resume", boundary);
        } else {
            // Stamp the ledger before the first posting so a crash during
            // round 0 still leaves the seed on disk for the resume to find.
            let fresh = CampaignHealth {
                target_kept: self.config.target_kept,
                budget_cap_usd: self.config.budget_cap_usd,
                ..CampaignHealth::default()
            };
            let doc = ledger_snapshot_doc(
                &prepared.test_id,
                seed,
                &self.config,
                &fresh,
                &[],
                0,
                0,
                "running",
                0,
            );
            persist_ledger(&ledger, registry.as_deref(), &doc);
        }
        let mut rngs =
            RoundRngs::Seeded { seed, current: StdRng::seed_from_u64(mix_round_seed(seed, 0)) };
        self.engine(params, prepared, spec, &mut rngs, Some(state))
    }

    /// Resumes a crashed durable campaign using the seed recorded in its
    /// ledger document — the restart path when the operator has the test
    /// but not the original seed at hand.
    ///
    /// # Errors
    ///
    /// [`CampaignError::LedgerConflict`] when no ledger exists for this
    /// test; otherwise as [`CampaignSupervisor::run_durable`].
    pub fn resume(
        &self,
        params: &TestParams,
        prepared: &PreparedTest,
        spec: &JobSpec,
    ) -> Result<SupervisedOutcome, CampaignError> {
        let doc = Self::ledger(self.campaign.db(), &prepared.test_id).ok_or_else(|| {
            CampaignError::LedgerConflict(format!(
                "no campaign ledger for test '{}' — nothing to resume",
                prepared.test_id
            ))
        })?;
        let seed = doc.get("seed").and_then(Value::as_u64).ok_or_else(|| {
            CampaignError::LedgerConflict("ledger document carries no seed".to_string())
        })?;
        self.run_durable(params, prepared, spec, seed)
    }

    /// Reads the durable campaign-ledger document for `test_id`, if one
    /// exists — what `kscope` prints as its recovery banner on start.
    pub fn ledger(db: &Database, test_id: &str) -> Option<Value> {
        db.collection(CAMPAIGN_LEDGER_COLLECTION).find_one(&json!({ "test_id": test_id }))
    }

    fn engine(
        &self,
        params: &TestParams,
        prepared: &PreparedTest,
        spec: &JobSpec,
        rngs: &mut RoundRngs<'_>,
        ledger_state: Option<LedgerState>,
    ) -> Result<SupervisedOutcome, CampaignError> {
        self.campaign.validate_questions(params)?;
        let pages = self.campaign.load_pages(prepared)?;
        let questions: Vec<String> = params.question.iter().map(|q| q.text().to_string()).collect();
        let page_names = prepared.page_names();
        let responses = self.campaign.db().collection("responses");
        // The lease ledger mirrors the in-memory accounting into the
        // store, where operators (and restarts) can see it. Both writes
        // and the expiry sweep go through secondary indexes. All writes
        // pause through read-only windows instead of failing: a campaign
        // under disk pressure stalls until compaction frees space.
        let ledger = self.campaign.db().collection(LEASES_COLLECTION);
        let registry = self.campaign.telemetry().cloned();
        write_pausing(registry.as_deref(), || {
            ledger.try_ensure_index(LEASES_BY_WORKER_INDEX, &["test_id", "contributor_id"], true)
        });
        write_pausing(registry.as_deref(), || {
            ledger.try_ensure_index(
                LEASES_BY_DEADLINE_INDEX,
                &["test_id", "lease.deadline_ms"],
                false,
            )
        });
        let stamp_lease = |contributor: &str, round: usize, issued: u64, deadline: u64| {
            let key = json!({ "test_id": prepared.test_id, "contributor_id": contributor });
            write_pausing(registry.as_deref(), || {
                ledger.try_upsert_mutate(&key, key.clone(), |d| {
                    if let Some(obj) = d.as_object_mut() {
                        obj.insert("round".to_string(), json!(round));
                        obj.insert(
                            "lease".to_string(),
                            json!({ "issued_ms": issued, "deadline_ms": deadline }),
                        );
                        obj.insert("state".to_string(), json!("leased"));
                    }
                })
            });
        };
        let conclude_lease = |contributor: &str, state: &str, paid_usd: Option<f64>| {
            let key = json!({ "test_id": prepared.test_id, "contributor_id": contributor });
            write_pausing(registry.as_deref(), || {
                ledger.try_upsert_mutate(&key, key.clone(), |d| {
                    if let Some(obj) = d.as_object_mut() {
                        obj.insert("state".to_string(), json!(state));
                        if let Some(paid) = paid_usd {
                            obj.insert("paid_usd".to_string(), json!(paid));
                        }
                    }
                })
            });
        };
        let metrics = registry.as_deref().map(SupervisorMetrics::register);
        let abandon_metric = |phase: AbandonPhase| {
            if let Some(r) = registry.as_deref() {
                r.counter_with("core.sessions_abandoned_total", &[("phase", phase.metric_label())])
                    .inc();
            }
        };

        let engagement_ms = self.expected_engagement_ms(page_names.len());
        let lease_ms = (engagement_ms as f64 * self.config.lease_slack).round() as u64;

        let mut health = CampaignHealth {
            target_kept: self.config.target_kept,
            budget_cap_usd: self.config.budget_cap_usd,
            ..CampaignHealth::default()
        };
        let mut leases: Vec<SessionLease> = Vec::new();
        let mut sessions: Vec<SessionResult> = Vec::new();
        let mut worker_payments = 0.0f64;
        let mut platform_fees = 0.0f64;
        let mut now_ms = 0u64;
        let mut reward = spec.reward_usd;
        let mut round = 0usize;
        let mut quota = spec.quota;
        let mut rounds_completed = 0usize;
        let mut postings: Vec<Value> = Vec::new();

        loop {
            rngs.start_round(round);
            // The budget cap is a *hard* spend ceiling: clamp every
            // posting — the initial one included, which used to go out
            // unchecked — to what the remaining budget can pay if every
            // recruited worker completes at this round's reward.
            if let Some(cap) = self.config.budget_cap_usd {
                let per_session = reward * (1.0 + Platform::FEE_RATE);
                let affordable = ((cap - health.spend_usd) / per_session).floor();
                if affordable < 1.0 {
                    health.budget_hit = true;
                    break;
                }
                if quota as f64 > affordable {
                    quota = affordable as usize;
                    health.budget_hit = true;
                }
            }
            if round > 0 {
                // Count the refill round only once its posting is funded
                // and actually goes out.
                health.refill_rounds = round;
            }
            let mut recruitment = Platform
                .post_job(&JobSpec { quota, reward_usd: reward, ..spec.clone() }, rngs.rng());
            postings.push(json!({ "round": round, "quota": quota, "reward_usd": reward }));
            self.beacon("refill", round as u64);
            if round > 0 {
                // Re-tag refill recruits: `post_job` numbers every posting
                // from w-00000, which would collide with round 0.
                for (k, a) in recruitment.assignments.iter_mut().enumerate() {
                    a.worker.id = WorkerId(format!("w-r{round}-{k:05}"));
                }
                health.refill_recruited += recruitment.assignments.len();
                if let Some(m) = &metrics {
                    m.refill_recruited.add(recruitment.assignments.len() as u64);
                }
            }

            let round_t0 = now_ms;
            for assignment in &recruitment.assignments {
                let arrival = round_t0 + assignment.arrival_ms;
                if self.config.deadline_ms.is_some_and(|d| arrival > d) {
                    // The campaign closes before this worker shows up: the
                    // posting is withdrawn, the worker never gets a lease.
                    health.deadline_hit = true;
                    break;
                }
                let worker = &assignment.worker;
                health.recruited += 1;
                let lease_deadline = arrival + lease_ms;
                let fault =
                    self.faults.sample(worker, page_names.len(), questions.len(), rngs.rng());
                let mut lease = SessionLease {
                    contributor_id: worker.id.0.clone(),
                    round,
                    issued_ms: arrival,
                    deadline_ms: lease_deadline,
                    outcome: LeaseOutcome::Abandoned(AbandonPhase::NeverReturned),
                };
                stamp_lease(&worker.id.0, round, arrival, lease_deadline);

                if fault == SessionFault::NeverReturns {
                    health.abandoned += 1;
                    health.never_returned += 1;
                    abandon_metric(AbandonPhase::NeverReturned);
                    if let Some(m) = &metrics {
                        m.lease_expired.inc();
                    }
                    now_ms = now_ms.max(lease_deadline);
                    leases.push(lease);
                    self.beacon("session", leases.len() as u64);
                    continue;
                }

                let behavior = self.campaign.session_behavior(worker, page_names.len(), rngs.rng());
                let driven = self.campaign.drive_flow(
                    &prepared.test_id,
                    worker,
                    &behavior,
                    &pages,
                    &questions,
                    &page_names,
                    Some(&fault),
                    rngs.rng(),
                );
                match driven {
                    Ok(DrivenSession::Completed(record)) => {
                        let record = *record;
                        let (retried, duplicate) = match fault {
                            SessionFault::DisconnectRetry { duplicate_upload } => {
                                (true, duplicate_upload)
                            }
                            _ => (false, false),
                        };
                        let key = json!({
                            "test_id": record.test_id,
                            "contributor_id": record.contributor_id,
                            "submission_id": record.submission_id,
                        });
                        // `submission_id` is deterministic (FNV of test +
                        // contributor), so a durable database that already
                        // ran this campaign holds the key: the unique-key
                        // insert answers with the original row and the
                        // session is accounted as an idempotent dedupe,
                        // never an error.
                        let already_stored = write_pausing(registry.as_deref(), || {
                            responses.try_insert_if_absent(&key, record.to_json())
                        })
                        .is_err();
                        // Crash-only replay: a row stored by this
                        // campaign's crashed incarnation is the session's
                        // own acknowledged upload, not a client duplicate
                        // — classification must come from the (replayed)
                        // fault so the resumed accounting matches an
                        // undisturbed run exactly.
                        let mut deduped =
                            if ledger_state.is_some() { false } else { already_stored };
                        if retried {
                            health.upload_retries += 1;
                            if let Some(m) = &metrics {
                                m.retries.inc();
                            }
                        }
                        if duplicate {
                            // The retry reached intake as a second copy;
                            // the unique-key insert answers with the
                            // original row instead of storing it twice.
                            let replay = write_pausing(registry.as_deref(), || {
                                responses.try_insert_if_absent(&key, record.to_json())
                            });
                            assert!(replay.is_err(), "duplicate upload must be suppressed");
                            deduped = true;
                        }
                        if deduped {
                            health.deduped += 1;
                            if let Some(m) = &metrics {
                                m.deduped.inc();
                            }
                            lease.outcome = LeaseOutcome::CompletedDeduped;
                            conclude_lease(&worker.id.0, "deduped", Some(reward));
                        } else {
                            health.completed += 1;
                            lease.outcome = LeaseOutcome::Completed;
                            conclude_lease(&worker.id.0, "completed", Some(reward));
                        }
                        // Pay the completed session: reward at this
                        // round's rate plus the platform fee.
                        worker_payments += reward;
                        platform_fees += reward * Platform::FEE_RATE;
                        now_ms = now_ms.max(arrival + record.total_duration_ms());
                        sessions.push(SessionResult {
                            worker: worker.clone(),
                            arrival_ms: arrival,
                            record,
                            behavior,
                        });
                    }
                    Ok(DrivenSession::Interrupted(partial)) => {
                        // Classify from the sampled fault, not from how
                        // many answers the checkpoint holds: a
                        // mid-questionnaire abandonment with zero answers
                        // recorded would otherwise be miscounted as
                        // mid-page. The checkpoint-based inference stays
                        // as a fallback for faults with no explicit phase.
                        let phase = match fault {
                            SessionFault::AbandonMidPage { .. } => AbandonPhase::MidPage,
                            SessionFault::AbandonMidQuestionnaire { .. } => {
                                AbandonPhase::MidQuestionnaire
                            }
                            _ if partial.current_answers.is_empty() => AbandonPhase::MidPage,
                            _ => AbandonPhase::MidQuestionnaire,
                        };
                        health.abandoned += 1;
                        match phase {
                            AbandonPhase::MidPage => health.abandoned_mid_page += 1,
                            _ => health.abandoned_mid_questionnaire += 1,
                        }
                        abandon_metric(phase);
                        if let Some(m) = &metrics {
                            m.lease_expired.inc();
                        }
                        lease.outcome = LeaseOutcome::Abandoned(phase);
                        // The slot is only reclaimed when the lease runs
                        // out — the supervisor cannot see a silent close.
                        now_ms = now_ms.max(lease_deadline);
                    }
                    Err(CampaignError::FlowFault(_)) => {
                        health.abandoned += 1;
                        health.flow_faults += 1;
                        abandon_metric(AbandonPhase::FlowFault);
                        if let Some(m) = &metrics {
                            m.lease_expired.inc();
                        }
                        lease.outcome = LeaseOutcome::Abandoned(AbandonPhase::FlowFault);
                        now_ms = now_ms.max(lease_deadline);
                    }
                    Err(e) => return Err(e),
                }
                leases.push(lease);
                self.beacon("session", leases.len() as u64);
            }

            // Lease-expiry sweep: an ordered range scan over the
            // (test_id, lease.deadline_ms) index picks out exactly the
            // leases whose deadline has passed — abandoned and
            // never-returned sessions — and reclaims their ledger rows.
            // Completed sessions past their deadline are left alone.
            let expired_leases = ledger.range_by_index(
                LEASES_BY_DEADLINE_INDEX,
                Some(&[json!(prepared.test_id)]),
                Some(&[json!(prepared.test_id), json!(now_ms)]),
            );
            for doc in expired_leases {
                if doc.get("state").and_then(Value::as_str) == Some("leased") {
                    if let Some(cid) = doc.get("contributor_id").and_then(Value::as_str) {
                        conclude_lease(cid, "reclaimed", None);
                    }
                }
            }

            let records: Vec<SessionRecord> = sessions.iter().map(|s| s.record.clone()).collect();
            let report = apply_quality_control(&records, prepared, self.campaign.quality_config());
            health.qc_kept = report.kept.len();
            health.spend_usd = worker_payments + platform_fees;
            if let Some(m) = &metrics {
                m.budget_spent.set((health.spend_usd * 100.0).round() as i64);
                m.refill_rounds.set(health.refill_rounds as i64);
            }
            rounds_completed = round + 1;

            // Round boundary: cross-check a resumed replay against the
            // crashed incarnation's persisted accounting, then persist
            // this round's snapshot so the *next* crash resumes from it.
            if let Some(ls) = &ledger_state {
                if let Some(persisted) = &ls.persisted {
                    check_replay_against_ledger(persisted, &health, rounds_completed, now_ms)?;
                }
                let doc = ledger_snapshot_doc(
                    &prepared.test_id,
                    ls.seed,
                    &self.config,
                    &health,
                    &postings,
                    rounds_completed,
                    now_ms,
                    "running",
                    ls.resumed_count,
                );
                persist_ledger(
                    &self.campaign.db().collection(CAMPAIGN_LEDGER_COLLECTION),
                    registry.as_deref(),
                    &doc,
                );
            }
            self.beacon("sweep", round as u64);

            if health.reached_target() || health.deadline_hit {
                break;
            }
            if self.config.deadline_ms.is_some_and(|d| now_ms >= d) {
                health.deadline_hit = true;
                break;
            }
            if round >= self.config.max_refill_rounds {
                health.rounds_exhausted = true;
                break;
            }

            // Plan the next refill round: size the ask by the observed
            // QC yield so one round usually closes the deficit.
            let deficit = self.config.target_kept - health.qc_kept;
            let processed = health.recruited.max(1);
            let observed_yield = (health.qc_kept as f64 / processed as f64).max(0.25);
            let mut ask = ((deficit as f64) / observed_yield).ceil() as usize;
            ask = ask.clamp(1, self.config.target_kept.max(1) * 4);
            round += 1;
            reward = (reward * self.config.reward_escalation).min(spec.reward_usd * 10.0);
            // The budget gate at the top of the loop clamps (or blocks)
            // this ask against the remaining budget at the new reward.
            quota = ask;
        }

        health.duration_ms = now_ms;
        let records: Vec<SessionRecord> = sessions.iter().map(|s| s.record.clone()).collect();
        let quality = apply_quality_control(&records, prepared, self.campaign.quality_config());
        health.qc_kept = quality.kept.len();
        if let Some(m) = &metrics {
            m.refill_rounds.set(health.refill_rounds as i64);
            m.budget_spent.set((health.spend_usd * 100.0).round() as i64);
            m.health.set(i64::from(health.reached_target()));
        }
        assert!(
            health.accounted(),
            "supervisor accounting must balance: completed {} + deduped {} + abandoned {} != \
             recruited {}",
            health.completed,
            health.deduped,
            health.abandoned,
            health.recruited
        );

        // Conclude the ledger: the final accounting and auto-close state,
        // marked `concluded` so operators (and `kscope` banners) can tell
        // a finished campaign from one a crash interrupted.
        if let Some(ls) = &ledger_state {
            let doc = ledger_snapshot_doc(
                &prepared.test_id,
                ls.seed,
                &self.config,
                &health,
                &postings,
                rounds_completed,
                now_ms,
                "concluded",
                ls.resumed_count,
            );
            persist_ledger(
                &self.campaign.db().collection(CAMPAIGN_LEDGER_COLLECTION),
                registry.as_deref(),
                &doc,
            );
        }
        self.beacon("concluded", rounds_completed as u64);

        let outcome = CampaignOutcome {
            test_id: prepared.test_id.clone(),
            prepared: prepared.clone(),
            n_versions: params.webpages.len(),
            sessions,
            quality,
            cost: CostReport {
                worker_payments_usd: worker_payments,
                platform_fee_usd: platform_fees,
            },
        };
        Ok(SupervisedOutcome { outcome, health, leases })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;
    use crate::campaign::QuestionKind;
    use crate::corpus;
    use kscope_crowd::platform::Channel;
    use kscope_store::{Database, GridStore};
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::Arc;

    struct Fixture {
        params: crate::params::TestParams,
        prepared: PreparedTest,
        campaign: Campaign,
        db: Database,
    }

    fn fixture(
        participants: usize,
        seed: u64,
        registry: Option<Arc<kscope_telemetry::Registry>>,
    ) -> (Fixture, StdRng) {
        let (store, params) = corpus::font_size_study(participants);
        let db = match &registry {
            Some(r) => Database::new().with_telemetry(r),
            None => Database::new(),
        };
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let mut campaign = Campaign::new(db.clone(), grid)
            .with_question(params.question[0].text(), QuestionKind::FontReadability);
        if let Some(r) = registry {
            campaign = campaign.with_telemetry(r);
        }
        (Fixture { params, prepared, campaign, db }, rng)
    }

    #[test]
    fn clean_population_needs_no_refill() {
        let (fx, mut rng) = fixture(40, 1, None);
        let spec = JobSpec::new(&fx.params.test_id, 0.11, 40, Channel::HistoricallyTrustworthy);
        let sup = CampaignSupervisor::new(&fx.campaign, SupervisorConfig::new(20));
        let out = sup.run(&fx.params, &fx.prepared, &spec, &mut rng).unwrap();
        assert!(out.health.reached_target());
        assert!(out.health.accounted());
        assert_eq!(out.health.refill_rounds, 0);
        assert_eq!(out.health.abandoned, 0);
        assert_eq!(out.health.deduped, 0);
        assert_eq!(out.health.completed, out.health.recruited);
        // Only completed sessions are paid.
        let expected = 0.11 * out.health.completed as f64 * (1.0 + Platform::FEE_RATE);
        assert!((out.outcome.cost.total_usd() - expected).abs() < 1e-9);
        // Every lease concluded completed.
        assert!(out.leases.iter().all(|l| l.outcome == LeaseOutcome::Completed));
        assert!(out.leases.iter().all(|l| l.deadline_ms > l.issued_ms));
    }

    #[test]
    fn faulty_population_refills_to_target_without_duplicates() {
        let registry = Arc::new(kscope_telemetry::Registry::new());
        let (fx, mut rng) = fixture(30, 7, Some(Arc::clone(&registry)));
        let spec = JobSpec::new(&fx.params.test_id, 0.11, 30, Channel::Open);
        let sup = CampaignSupervisor::new(&fx.campaign, SupervisorConfig::new(15))
            .with_faults(FaultModel::flaky());
        let out = sup.run(&fx.params, &fx.prepared, &spec, &mut rng).unwrap();

        assert!(out.health.reached_target(), "refill must close the gap: {}", out.health);
        assert!(out.health.accounted(), "accounting must balance: {}", out.health);
        assert!(out.health.abandoned > 0, "a flaky open channel abandons: {}", out.health);

        // Zero duplicate rows: every stored response has a unique
        // (contributor, submission) pair.
        let responses = fx.db.collection("responses");
        let mut keys: Vec<String> = responses
            .all()
            .iter()
            .map(|d| {
                format!(
                    "{}|{}",
                    d["contributor_id"].as_str().unwrap(),
                    d["submission_id"].as_str().unwrap()
                )
            })
            .collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), total, "responses must hold no duplicate rows");
        assert_eq!(total, out.health.completed + out.health.deduped);

        // Only completed sessions are paid (reward varies per round, so
        // bound the spend instead of equating it).
        let paid = out.health.completed + out.health.deduped;
        assert!(out.health.spend_usd >= 0.11 * paid as f64 * (1.0 + Platform::FEE_RATE) - 1e-9);
        assert!(out.health.spend_usd < 0.11 * 10.0 * paid as f64 * (1.0 + Platform::FEE_RATE));

        // Metrics mirror the health report.
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_total("core.sessions_abandoned_total"),
            out.health.abandoned as u64
        );
        assert_eq!(
            registry.counter_value("core.session_lease_expired_total", &[]),
            Some(out.health.abandoned as u64)
        );
        assert_eq!(
            registry.counter_value("server.responses_deduped_total", &[]),
            Some(out.health.deduped as u64)
        );
        assert_eq!(
            registry.counter_value("core.refill_recruited_total", &[]),
            Some(out.health.refill_recruited as u64)
        );
        assert_eq!(registry.gauge_value("core.campaign_health", &[]), Some(1));
        assert_eq!(
            registry.gauge_value("core.campaign_budget_spent_usd", &[]),
            Some((out.health.spend_usd * 100.0).round() as i64)
        );
    }

    #[test]
    fn budget_cap_degrades_gracefully() {
        let (fx, mut rng) = fixture(10, 3, None);
        let spec = JobSpec::new(&fx.params.test_id, 0.11, 10, Channel::Open);
        // A cap that cannot possibly fund the target forces a degraded
        // conclusion with partial results, not an error.
        let config = SupervisorConfig::new(200).with_budget_cap_usd(2.0);
        let sup = CampaignSupervisor::new(&fx.campaign, config).with_faults(FaultModel::flaky());
        let out = sup.run(&fx.params, &fx.prepared, &spec, &mut rng).unwrap();
        assert!(!out.health.reached_target());
        assert!(out.health.budget_hit, "{}", out.health);
        assert!(out.health.accounted());
        assert!(out.health.spend_usd <= 2.0 + 1e-9, "spend {}", out.health.spend_usd);
    }

    #[test]
    fn rerun_against_same_database_dedupes_instead_of_panicking() {
        // submission_id is deterministic (FNV of test + contributor) and
        // round-0 workers keep the platform's default ids, so a second
        // supervised run over the same responses collection collides with
        // every row the first run stored. That must be absorbed as an
        // idempotent dedupe — never a panic.
        let (fx, mut rng) = fixture(40, 11, None);
        let spec = JobSpec::new(&fx.params.test_id, 0.11, 20, Channel::HistoricallyTrustworthy);
        let sup = CampaignSupervisor::new(&fx.campaign, SupervisorConfig::new(10));
        let first = sup.run(&fx.params, &fx.prepared, &spec, &mut rng).unwrap();
        assert!(first.health.reached_target());
        let rows_after_first = fx.db.collection("responses").len();

        let replay = sup.run(&fx.params, &fx.prepared, &spec, &mut rng).unwrap();
        assert!(replay.health.accounted(), "accounting balances: {}", replay.health);
        assert!(replay.health.deduped > 0, "round-0 ids collide: {}", replay.health);
        // Deduped uploads answer with the original row — no new rows for
        // colliding (contributor, submission) pairs.
        assert_eq!(
            fx.db.collection("responses").len(),
            rows_after_first + replay.health.completed,
            "only fresh submissions add rows: {}",
            replay.health
        );
    }

    #[test]
    fn budget_cap_clamps_the_initial_posting() {
        let (fx, mut rng) = fixture(40, 6, None);
        // quota 40 at $0.50 (+20% fee) would cost $24 up front — four
        // times the cap. The round-0 posting must be clamped so spend can
        // never exceed the ceiling, not just refill rounds.
        let spec = JobSpec::new(&fx.params.test_id, 0.50, 40, Channel::HistoricallyTrustworthy);
        let cap = 6.0;
        let config = SupervisorConfig::new(100).with_budget_cap_usd(cap);
        let sup = CampaignSupervisor::new(&fx.campaign, config);
        let out = sup.run(&fx.params, &fx.prepared, &spec, &mut rng).unwrap();
        let per_session = 0.50 * (1.0 + Platform::FEE_RATE);
        let affordable = (cap / per_session).floor() as usize;
        assert!(
            out.health.recruited <= affordable,
            "round 0 must be clamped to {} sessions: {}",
            affordable,
            out.health
        );
        assert!(out.health.budget_hit, "{}", out.health);
        assert!(out.health.spend_usd <= cap + 1e-9, "spend {}", out.health.spend_usd);
        assert!(out.health.accounted());
    }

    #[test]
    fn deadline_degrades_gracefully() {
        let (fx, mut rng) = fixture(10, 4, None);
        let spec = JobSpec::new(&fx.params.test_id, 0.11, 10, Channel::HistoricallyTrustworthy);
        // One virtual minute: almost nobody arrives in time.
        let config = SupervisorConfig::new(50).with_deadline_ms(60_000);
        let sup = CampaignSupervisor::new(&fx.campaign, config);
        let out = sup.run(&fx.params, &fx.prepared, &spec, &mut rng).unwrap();
        assert!(out.health.deadline_hit, "{}", out.health);
        assert!(!out.health.reached_target());
        assert!(out.health.accounted());
    }

    #[test]
    fn lease_ledger_mirrors_health_accounting() {
        let registry = Arc::new(kscope_telemetry::Registry::new());
        let (fx, mut rng) = fixture(30, 9, Some(Arc::clone(&registry)));
        let spec = JobSpec::new(&fx.params.test_id, 0.11, 30, Channel::Open);
        let sup = CampaignSupervisor::new(&fx.campaign, SupervisorConfig::new(12))
            .with_faults(FaultModel::flaky());
        let out = sup.run(&fx.params, &fx.prepared, &spec, &mut rng).unwrap();
        assert!(out.health.abandoned > 0, "a flaky open channel abandons: {}", out.health);

        // Every issued lease has exactly one ledger row, and the sweep
        // reclaimed precisely the abandoned ones.
        let ledger = fx.db.collection(LEASES_COLLECTION);
        let rows = ledger.all();
        assert_eq!(rows.len(), out.health.recruited);
        let count =
            |state: &str| rows.iter().filter(|d| d.get("state") == Some(&json!(state))).count();
        assert_eq!(count("completed"), out.health.completed);
        assert_eq!(count("deduped"), out.health.deduped);
        assert_eq!(count("reclaimed"), out.health.abandoned);
        assert_eq!(count("leased"), 0, "no lease left dangling after the final sweep");

        // The sweep ran as ordered range scans over the deadline index,
        // and lease updates were index point lookups — never a fallback
        // scan over the ledger.
        let labels = [("collection", LEASES_COLLECTION)];
        assert!(registry
            .counter_value("store.index_range_scans_total", &labels)
            .is_some_and(|n| n > 0));
        assert_eq!(
            registry.counter_value("store.index_fallback_scans_total", &labels).unwrap_or(0),
            0,
            "ledger queries must all plan onto an index"
        );
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kscope-sup-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A fixture over a durable database. Page metadata goes to a scratch
    /// in-memory store so re-preparing on resume does not duplicate rows
    /// in the durable database; the grid (page HTML) is rebuilt
    /// deterministically from the corpus seed.
    fn durable_fixture(
        dir: &std::path::Path,
        participants: usize,
        corpus_seed: u64,
        registry: Option<Arc<kscope_telemetry::Registry>>,
    ) -> Fixture {
        let (store, params) = corpus::font_size_study(participants);
        let (db, _) = Database::open_durable(dir).unwrap();
        let db = match &registry {
            Some(r) => db.with_telemetry(r),
            None => db,
        };
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(corpus_seed);
        let prepared = Aggregator::new(Database::new(), grid.clone())
            .prepare(&params, &store, &mut rng)
            .unwrap();
        let mut campaign = Campaign::new(db.clone(), grid)
            .with_question(params.question[0].text(), QuestionKind::FontReadability);
        if let Some(r) = registry {
            campaign = campaign.with_telemetry(r);
        }
        Fixture { params, prepared, campaign, db }
    }

    fn response_keys(db: &Database) -> std::collections::BTreeSet<String> {
        db.collection("responses")
            .all()
            .iter()
            .map(|d| {
                format!(
                    "{}|{}",
                    d["contributor_id"].as_str().unwrap(),
                    d["submission_id"].as_str().unwrap()
                )
            })
            .collect()
    }

    const CAMPAIGN_SEED: u64 = 42;

    fn crash_spec(test_id: &str) -> JobSpec {
        JobSpec::new(test_id, 0.11, 30, Channel::Open)
    }

    #[test]
    fn durable_run_resumes_after_a_crash_to_the_undisturbed_outcome() {
        let dir_a = tempdir("undisturbed");
        let dir_b = tempdir("crashed");

        // The undisturbed reference run.
        let fx_a = durable_fixture(&dir_a, 30, 7, None);
        let spec = crash_spec(&fx_a.params.test_id);
        let sup = CampaignSupervisor::new(&fx_a.campaign, SupervisorConfig::new(15))
            .with_faults(FaultModel::flaky());
        let undisturbed =
            sup.run_durable(&fx_a.params, &fx_a.prepared, &spec, CAMPAIGN_SEED).unwrap();
        assert!(undisturbed.health.accounted());

        // The same campaign, killed mid-flight at the 5th settled session.
        {
            let fx_b = durable_fixture(&dir_b, 30, 7, None);
            let sup = CampaignSupervisor::new(&fx_b.campaign, SupervisorConfig::new(15))
                .with_faults(FaultModel::flaky())
                .with_hook(Arc::new(|phase: &str, n: u64| {
                    assert!(!(phase == "session" && n == 5), "chaos: simulated crash mid-campaign");
                }));
            let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sup.run_durable(&fx_b.params, &fx_b.prepared, &spec, CAMPAIGN_SEED)
            }));
            assert!(crashed.is_err(), "the hook must abort the first incarnation");
        }

        // A fresh process resumes from the ledger and concludes with the
        // exact undisturbed outcome: same health (spend included), same
        // response key set, same ranking report.
        let fx_b = durable_fixture(&dir_b, 30, 7, None);
        let sup = CampaignSupervisor::new(&fx_b.campaign, SupervisorConfig::new(15))
            .with_faults(FaultModel::flaky());
        let resumed = sup.resume(&fx_b.params, &fx_b.prepared, &spec).unwrap();

        assert_eq!(resumed.health, undisturbed.health, "accounting must replay exactly");
        assert_eq!(response_keys(&fx_b.db), response_keys(&fx_a.db));
        assert_eq!(
            fx_b.db.collection("responses").len(),
            fx_a.db.collection("responses").len(),
            "no duplicate rows from the crashed incarnation"
        );
        assert_eq!(
            resumed.outcome.to_report_json(&fx_b.params.question),
            undisturbed.outcome.to_report_json(&fx_a.params.question),
            "the concluded ranking must be identical"
        );

        let ledger = CampaignSupervisor::ledger(&fx_b.db, &fx_b.params.test_id).unwrap();
        assert_eq!(ledger["state"], json!("concluded"));
        assert_eq!(ledger["resumed_count"], json!(1));
        assert_eq!(ledger["seed"], json!(CAMPAIGN_SEED));
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn repeated_kills_at_different_phases_still_converge() {
        let dir_ref = tempdir("conv-ref");
        let dir = tempdir("conv-crash");

        let fx_ref = durable_fixture(&dir_ref, 30, 7, None);
        let spec = crash_spec(&fx_ref.params.test_id);
        let sup = CampaignSupervisor::new(&fx_ref.campaign, SupervisorConfig::new(15))
            .with_faults(FaultModel::flaky());
        let undisturbed =
            sup.run_durable(&fx_ref.params, &fx_ref.prepared, &spec, CAMPAIGN_SEED).unwrap();

        // Kill the campaign over and over at different phase boundaries —
        // every incarnation resumes the one before it.
        let kill_points: [(&str, u64); 3] = [("session", 3), ("sweep", 0), ("session", 10)];
        for (phase, n) in kill_points {
            let fx = durable_fixture(&dir, 30, 7, None);
            let sup = CampaignSupervisor::new(&fx.campaign, SupervisorConfig::new(15))
                .with_faults(FaultModel::flaky())
                .with_hook(Arc::new(move |p: &str, k: u64| {
                    assert!(!(p == phase && k == n), "chaos: kill at {phase} #{n}");
                }));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sup.run_durable(&fx.params, &fx.prepared, &spec, CAMPAIGN_SEED)
            }));
            assert!(result.is_err(), "kill point ({phase}, {n}) must fire");
        }

        let fx = durable_fixture(&dir, 30, 7, None);
        let sup = CampaignSupervisor::new(&fx.campaign, SupervisorConfig::new(15))
            .with_faults(FaultModel::flaky());
        let finished = sup.resume(&fx.params, &fx.prepared, &spec).unwrap();
        assert_eq!(finished.health, undisturbed.health);
        assert_eq!(response_keys(&fx.db), response_keys(&fx_ref.db));
        let ledger = CampaignSupervisor::ledger(&fx.db, &fx.params.test_id).unwrap();
        assert_eq!(ledger["state"], json!("concluded"));
        assert_eq!(ledger["resumed_count"], json!(3));
        std::fs::remove_dir_all(&dir_ref).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_guards_the_ledger_seed_and_presence() {
        let dir = tempdir("guards");
        let registry = Arc::new(kscope_telemetry::Registry::new());
        let fx = durable_fixture(&dir, 20, 5, Some(Arc::clone(&registry)));
        let spec = JobSpec::new(&fx.params.test_id, 0.11, 20, Channel::HistoricallyTrustworthy);
        let sup = CampaignSupervisor::new(&fx.campaign, SupervisorConfig::new(8));

        // Nothing to resume on a fresh store.
        let err = sup.resume(&fx.params, &fx.prepared, &spec).unwrap_err();
        assert!(matches!(err, CampaignError::LedgerConflict(_)), "{err}");

        let first = sup.run_durable(&fx.params, &fx.prepared, &spec, CAMPAIGN_SEED).unwrap();
        assert_eq!(registry.counter_value("core.campaign_resumed_total", &[]), Some(0));

        // A different seed cannot adopt this campaign's ledger.
        let err = sup.run_durable(&fx.params, &fx.prepared, &spec, CAMPAIGN_SEED + 1).unwrap_err();
        assert!(matches!(err, CampaignError::LedgerConflict(_)), "{err}");

        // Re-running a concluded campaign is an idempotent replay.
        let replay = sup.run_durable(&fx.params, &fx.prepared, &spec, CAMPAIGN_SEED).unwrap();
        assert_eq!(replay.health, first.health);
        assert_eq!(registry.counter_value("core.campaign_resumed_total", &[]), Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn supervisor_pauses_writes_while_the_store_is_read_only() {
        let dir = tempdir("pause");
        let registry = Arc::new(kscope_telemetry::Registry::new());
        let fx = durable_fixture(&dir, 10, 3, Some(Arc::clone(&registry)));
        let spec = JobSpec::new(&fx.params.test_id, 0.11, 10, Channel::HistoricallyTrustworthy);
        let sup = CampaignSupervisor::new(&fx.campaign, SupervisorConfig::new(5));
        let first = sup.run_durable(&fx.params, &fx.prepared, &spec, CAMPAIGN_SEED).unwrap();

        // Disk pressure hits; a compactor (played here by a thread) frees
        // space 200ms later. The resuming supervisor must pause — not
        // fail, not skip — and then finish the replay normally.
        assert!(fx.db.force_read_only(true));
        let unblocker = {
            let db = fx.db.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(200));
                db.force_read_only(false);
            })
        };
        let resumed = sup.run_durable(&fx.params, &fx.prepared, &spec, CAMPAIGN_SEED).unwrap();
        unblocker.join().unwrap();
        assert_eq!(resumed.health, first.health);
        assert!(
            registry.counter_value("core.supervisor_write_pauses_total", &[]).unwrap_or(0) >= 1,
            "the pause must be visible on the pause counter"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn health_json_and_display_are_consistent() {
        let (fx, mut rng) = fixture(20, 5, None);
        let spec = JobSpec::new(&fx.params.test_id, 0.11, 20, Channel::Open);
        let sup = CampaignSupervisor::new(&fx.campaign, SupervisorConfig::new(8))
            .with_faults(FaultModel::flaky());
        let out = sup.run(&fx.params, &fx.prepared, &spec, &mut rng).unwrap();
        let j = out.health.to_json();
        assert_eq!(j["recruited"].as_u64().unwrap() as usize, out.health.recruited);
        assert_eq!(j["abandoned"]["total"].as_u64().unwrap() as usize, out.health.abandoned);
        assert_eq!(j["reached_target"].as_bool().unwrap(), out.health.reached_target());
        assert!(!out.health.to_string().is_empty());
    }
}
