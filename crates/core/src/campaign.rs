//! The end-to-end campaign orchestrator (paper Fig. 2).
//!
//! A campaign takes a prepared test, a recruitment (crowd platform or
//! in-lab), and a mapping from each comparison question to the perception
//! model that answers it. For every recruited participant it runs the full
//! extension session in the virtual browser — download pages, visit,
//! answer, upload — storing responses in the database, then applies the
//! quality-control pipeline and exposes the analyses the figures need.

use crate::aggregator::PreparedTest;
use crate::analysis::{preference_label, BehaviorSamples, QuestionAnalysis, RankDistribution};
use crate::corpus::{ExpandButtonMetrics, MAIN_TEXT_SELECTOR};
use crate::params::TestParams;
use crate::quality::{apply_quality_control, QualityConfig, QualityReport};
use kscope_browser::{FlowError, LoadedPage, PartialSession, SessionRecord, TestFlow};
use kscope_crowd::behavior::BehaviorModel;
use kscope_crowd::faults::SessionFault;
use kscope_crowd::perception::{judge_pair, FontSizeModel, ReadinessModel};
use kscope_crowd::platform::{CostReport, Recruitment};
use kscope_crowd::{SessionBehavior, Worker};
use kscope_html::Selector;
use kscope_store::{Database, GridStore};
use kscope_telemetry::Registry;
use rand::Rng;
use serde_json::json;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// How workers answer one comparison question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuestionKind {
    /// "Which webpage's font size is more suitable for reading?" — judged
    /// by each worker's font-size readability model on the main text.
    FontReadability,
    /// "Which version seems ready to use first?" — judged by the weighted
    /// readiness model over each version's paint timeline.
    ReadyToUse,
    /// "Which webpage is graphically more appealing?" — tiny utility gap.
    Appeal,
    /// "Which version of the button looks better?" — moderate gap.
    StyleBetter,
    /// "Which version of the button is more visible?" — large gap.
    Visibility,
    /// "Which webpage is more pleasant to read?" — judged by ad clutter
    /// (the abstract's "with vs without ads" example).
    AdClutter,
}

/// One participant's complete simulated session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The participant (including latent traits — useful for evaluation,
    /// invisible to the pipeline).
    pub worker: Worker,
    /// When the participant arrived (ms after the job was posted).
    pub arrival_ms: u64,
    /// What the extension uploaded.
    pub record: SessionRecord,
    /// The generated behaviour (durations and tab activity).
    pub behavior: SessionBehavior,
}

/// A campaign failure.
#[derive(Debug)]
pub enum CampaignError {
    /// A stored page was missing from the grid store.
    MissingPage(String),
    /// A question had no registered [`QuestionKind`].
    UnmappedQuestion(String),
    /// A tester session violated the extension's sequencing rules (e.g. a
    /// client skipped a question and tried to advance). The orchestrator
    /// surfaces the fault instead of panicking.
    FlowFault(FlowError),
    /// The durable campaign ledger disagrees with this run — a missing
    /// ledger on resume, a seed mismatch, a newer schema version, or a
    /// replay that diverged from the persisted accounting.
    LedgerConflict(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::MissingPage(name) => write!(f, "page '{name}' not in store"),
            CampaignError::UnmappedQuestion(q) => {
                write!(f, "question '{q}' has no answer model")
            }
            CampaignError::FlowFault(e) => write!(f, "session flow fault: {e}"),
            CampaignError::LedgerConflict(msg) => write!(f, "campaign ledger conflict: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<FlowError> for CampaignError {
    fn from(e: FlowError) -> Self {
        CampaignError::FlowFault(e)
    }
}

/// The per-test page cache: integrated page name → (integrated, left
/// pane, right pane), all parsed once.
pub(crate) type PageSet = HashMap<String, (LoadedPage, LoadedPage, LoadedPage)>;

/// What driving one tester session through the extension flow produced.
#[derive(Debug)]
pub(crate) enum DrivenSession {
    /// The session finished and uploaded a record.
    Completed(Box<SessionRecord>),
    /// The tester abandoned partway; the flow checkpointed instead of
    /// panicking.
    Interrupted(Box<PartialSession>),
}

/// The campaign runner.
#[derive(Debug, Clone)]
pub struct Campaign {
    db: Database,
    grid: GridStore,
    kinds: Vec<(String, QuestionKind)>,
    behavior: BehaviorModel,
    quality: QualityConfig,
    font_model: FontSizeModel,
    readiness_model: ReadinessModel,
    /// Indifference threshold for the appeal/style/visibility judgments.
    style_indifference: f64,
    in_lab: bool,
    viewport: kscope_pageload::Viewport,
    telemetry: Option<Arc<Registry>>,
}

impl Campaign {
    /// Creates a campaign over shared storage.
    pub fn new(db: Database, grid: GridStore) -> Self {
        Self {
            db,
            grid,
            kinds: Vec::new(),
            behavior: BehaviorModel::default(),
            quality: QualityConfig::default(),
            font_model: FontSizeModel::default(),
            readiness_model: ReadinessModel::default(),
            style_indifference: 0.5,
            in_lab: false,
            viewport: kscope_pageload::Viewport::desktop(),
            telemetry: None,
        }
    }

    /// Attaches a metric registry (builder style). [`Campaign::run`] then
    /// maintains the `core.campaign_sessions_target` /
    /// `core.campaign_sessions_done` progress gauges, counts
    /// `core.sessions_total` and `core.responses_total`, times each
    /// session (`core.session_us`), and accounts quality control in
    /// `core.qc_kept_total` and `core.qc_rejects_total{reason=...}`.
    pub fn with_telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// The attached registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.as_ref()
    }

    /// Overrides the viewport testers' virtual browsers render under
    /// (builder style) — e.g. [`kscope_pageload::Viewport::mobile`] for a
    /// phone-sized campaign.
    pub fn with_viewport(mut self, viewport: kscope_pageload::Viewport) -> Self {
        self.viewport = viewport;
        self
    }

    /// Registers the answer model for a question (builder style).
    pub fn with_question(mut self, question: &str, kind: QuestionKind) -> Self {
        self.kinds.push((question.to_string(), kind));
        self
    }

    /// Switches to in-lab behaviour (trusted, guided participants).
    pub fn in_lab(mut self) -> Self {
        self.in_lab = true;
        self
    }

    /// Overrides the quality-control thresholds.
    pub fn with_quality(mut self, quality: QualityConfig) -> Self {
        self.quality = quality;
        self
    }

    /// Overrides the behaviour model (builder style) — e.g. to raise
    /// `question_skip_rate` and exercise the hard-rule fault path.
    pub fn with_behavior(mut self, behavior: BehaviorModel) -> Self {
        self.behavior = behavior;
        self
    }

    /// The registered answer model for a question, if any.
    pub fn question_kind(&self, question: &str) -> Option<QuestionKind> {
        self.kinds.iter().find(|(text, _)| text == question).map(|&(_, kind)| kind)
    }

    /// The backing file store.
    pub fn grid(&self) -> &GridStore {
        &self.grid
    }

    /// Judges a pair of loaded pages under a question kind — the shared
    /// perception step used by both the full and the sorting-reduction
    /// campaign modes.
    pub fn judge_pages<R: Rng + ?Sized>(
        &self,
        kind: QuestionKind,
        worker: &Worker,
        left: &LoadedPage,
        right: &LoadedPage,
        rng: &mut R,
    ) -> kscope_stats::rank::Preference {
        self.judge(kind, worker, left, right, rng)
    }

    /// Runs every recruited participant through the extension flow and
    /// applies quality control.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if pages are missing from storage or a
    /// question in `params` has no registered answer model.
    pub fn run<R: Rng + ?Sized>(
        &self,
        params: &TestParams,
        prepared: &PreparedTest,
        recruitment: &Recruitment,
        rng: &mut R,
    ) -> Result<CampaignOutcome, CampaignError> {
        self.validate_questions(params)?;
        let pages = self.load_pages(prepared)?;
        let questions: Vec<String> = params.question.iter().map(|q| q.text().to_string()).collect();
        let page_names = prepared.page_names();
        let responses = self.db.collection("responses");
        let metrics = self.telemetry.as_deref().map(CampaignMetrics::register);
        if let Some(m) = &metrics {
            m.sessions_target.set(recruitment.assignments.len() as i64);
            m.sessions_done.set(0);
        }
        let mut sessions = Vec::with_capacity(recruitment.assignments.len());
        for assignment in &recruitment.assignments {
            let session_timer = metrics.as_ref().map(|m| m.session_us.start_timer());
            let worker = &assignment.worker;
            let behavior = self.session_behavior(worker, page_names.len(), rng);
            let driven = self.drive_flow(
                &prepared.test_id,
                worker,
                &behavior,
                &pages,
                &questions,
                &page_names,
                None,
                rng,
            )?;
            let record = match driven {
                DrivenSession::Completed(record) => *record,
                // Without an injected fault the flow always runs to
                // completion; abandonment is the supervisor's domain.
                DrivenSession::Interrupted(partial) => {
                    return Err(CampaignError::FlowFault(FlowError::PagesRemaining(
                        partial.page_names.len() - partial.completed_pages(),
                    )))
                }
            };
            responses.insert_one(record.to_json());
            sessions.push(SessionResult {
                worker: worker.clone(),
                arrival_ms: assignment.arrival_ms,
                record,
                behavior,
            });
            drop(session_timer);
            if let Some(m) = &metrics {
                m.sessions_total.inc();
                m.responses_total.inc();
                m.sessions_done.inc();
            }
        }

        let records: Vec<SessionRecord> = sessions.iter().map(|s| s.record.clone()).collect();
        let quality = apply_quality_control(&records, prepared, &self.quality);
        if let Some(registry) = self.telemetry.as_deref() {
            let m = metrics.as_ref().expect("registered above");
            m.qc_kept.add(quality.kept.len() as u64);
            for (_, reason) in &quality.dropped {
                registry
                    .counter_with("core.qc_rejects_total", &[("reason", reason.metric_label())])
                    .inc();
            }
        }
        Ok(CampaignOutcome {
            test_id: prepared.test_id.clone(),
            prepared: prepared.clone(),
            n_versions: params.webpages.len(),
            sessions,
            quality,
            cost: recruitment.cost,
        })
    }

    /// Ensures every question in `params` has a registered answer model.
    pub(crate) fn validate_questions(&self, params: &TestParams) -> Result<(), CampaignError> {
        for q in &params.question {
            if !self.kinds.iter().any(|(text, _)| text == q.text()) {
                return Err(CampaignError::UnmappedQuestion(q.text().to_string()));
            }
        }
        Ok(())
    }

    /// Loads every integrated page and its two panes once.
    pub(crate) fn load_pages(&self, prepared: &PreparedTest) -> Result<PageSet, CampaignError> {
        let mut pages: PageSet = HashMap::new();
        for meta in &prepared.pages {
            let html = self
                .grid
                .get_text(&prepared.test_id, &meta.name)
                .ok_or_else(|| CampaignError::MissingPage(meta.name.clone()))?;
            let integrated = LoadedPage::from_html_with_viewport(&html, self.viewport);
            let refs = integrated.iframe_refs();
            if refs.len() != 2 {
                return Err(CampaignError::MissingPage(format!(
                    "{} does not have two panes",
                    meta.name
                )));
            }
            let pane = |file: &str| -> Result<LoadedPage, CampaignError> {
                let html = self
                    .grid
                    .get_text(&prepared.test_id, file)
                    .ok_or_else(|| CampaignError::MissingPage(file.to_string()))?;
                Ok(LoadedPage::from_html_with_viewport(&html, self.viewport))
            };
            let left = pane(&refs[0])?;
            let right = pane(&refs[1])?;
            pages.insert(meta.name.clone(), (integrated, left, right));
        }
        Ok(pages)
    }

    /// Samples one worker's behaviour for this campaign's channel.
    pub(crate) fn session_behavior<R: Rng + ?Sized>(
        &self,
        worker: &Worker,
        comparisons: usize,
        rng: &mut R,
    ) -> SessionBehavior {
        if self.in_lab {
            self.behavior.in_lab_session(worker, comparisons, rng)
        } else {
            self.behavior.remote_session(worker, comparisons, rng)
        }
    }

    /// The behaviour model driving session generation.
    pub(crate) fn behavior_model(&self) -> &BehaviorModel {
        &self.behavior
    }

    /// The backing database.
    pub(crate) fn db(&self) -> &Database {
        &self.db
    }

    /// The quality-control thresholds in force.
    pub(crate) fn quality_config(&self) -> &QualityConfig {
        &self.quality
    }

    /// Drives one tester session through the extension flow, honouring an
    /// optionally injected [`SessionFault`]. Hard-rule violations (a
    /// skipped answer, whether from `behavior.dropped_answer_pages` or a
    /// [`SessionFault::SkipQuestion`]) surface as
    /// [`CampaignError::FlowFault`]; abandonment faults checkpoint the
    /// flow and return [`DrivenSession::Interrupted`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn drive_flow<R: Rng + ?Sized>(
        &self,
        test_id: &str,
        worker: &Worker,
        behavior: &SessionBehavior,
        pages: &PageSet,
        questions: &[String],
        page_names: &[String],
        fault: Option<&SessionFault>,
        rng: &mut R,
    ) -> Result<DrivenSession, CampaignError> {
        let mut flow = TestFlow::register(
            test_id,
            &worker.id.0,
            json!({
                "gender": format!("{:?}", worker.demographics.gender),
                "age": format!("{:?}", worker.demographics.age),
                "country": format!("{:?}", worker.demographics.country),
                "tech_ability": worker.demographics.tech_ability,
            }),
            questions.to_vec(),
            page_names.to_vec(),
        );
        for (i, name) in page_names.iter().enumerate() {
            if let Some(SessionFault::AbandonMidPage { page }) = fault {
                if *page == i {
                    // The tab closes before the page is even opened in
                    // earnest: checkpoint with the pages finished so far.
                    return Ok(DrivenSession::Interrupted(Box::new(flow.interrupt())));
                }
            }
            let (integrated, left, right) = &pages[name];
            let dwell_ms = (behavior.comparison_minutes[i] * 60_000.0).round() as u64;
            flow.visit(integrated.clone(), dwell_ms)?;
            let abandon_after = match fault {
                Some(SessionFault::AbandonMidQuestionnaire { page, answered }) if *page == i => {
                    Some(*answered)
                }
                _ => None,
            };
            let mut drop_one = behavior.dropped_answer_pages.contains(&i)
                || matches!(fault, Some(SessionFault::SkipQuestion { page }) if *page == i);
            let mut answered = 0usize;
            for (question, kind) in &self.kinds {
                if !questions.iter().any(|q| q == question) {
                    continue;
                }
                if abandon_after == Some(answered) {
                    return Ok(DrivenSession::Interrupted(Box::new(flow.interrupt())));
                }
                if drop_one {
                    // The faulty client loses exactly one answer.
                    drop_one = false;
                    continue;
                }
                let judged = self.judge(*kind, worker, left, right, rng);
                flow.answer(question, preference_label(judged))?;
                answered += 1;
            }
            flow.next_page()?;
        }
        let mut record = flow.upload()?;
        // The behaviour model supplies the side-browsing telemetry the
        // bare flow cannot know about: extra tabs and extra switches on
        // top of the test pages the extension itself opened.
        record.created_tabs += behavior.created_tabs.saturating_sub(1);
        record.active_tab_switches += behavior.active_tabs.saturating_sub(1);
        Ok(DrivenSession::Completed(Box::new(record)))
    }

    fn judge<R: Rng + ?Sized>(
        &self,
        kind: QuestionKind,
        worker: &Worker,
        left: &LoadedPage,
        right: &LoadedPage,
        rng: &mut R,
    ) -> kscope_stats::rank::Preference {
        match kind {
            QuestionKind::FontReadability => {
                let sel: Selector = MAIN_TEXT_SELECTOR.parse().expect("valid selector");
                let lpt = left.font_size_pt(&sel).unwrap_or(12.0);
                let rpt = right.font_size_pt(&sel).unwrap_or(12.0);
                self.font_model.judge(worker, lpt, rpt, rng).preference
            }
            QuestionKind::ReadyToUse => {
                let lc = left.readiness_curve();
                let rc = right.readiness_curve();
                self.readiness_model.judge(worker, &lc, &rc, rng).preference
            }
            QuestionKind::AdClutter => {
                // "Pleasant to read" weighs ad clutter AND legibility: the
                // ruined control version (4 pt body text) must lose to the
                // intact side even though both carry the same ads.
                let utility = |page: &LoadedPage| {
                    let ads = crate::corpus::AdMetrics::extract(page.document());
                    let sel: Selector = "#content".parse().expect("valid selector");
                    let font = page.font_size_pt(&sel).unwrap_or(12.0);
                    let legibility = if font < 8.0 { -3.0 } else { 0.0 };
                    ads.reading_utility(worker.text_focus) + legibility
                };
                judge_pair(worker, utility(left), utility(right), self.style_indifference, rng)
                    .preference
            }
            QuestionKind::Appeal | QuestionKind::StyleBetter | QuestionKind::Visibility => {
                let metric = |page: &LoadedPage| {
                    ExpandButtonMetrics::extract(page.document()).unwrap_or(ExpandButtonMetrics {
                        font_pt: 12.0,
                        has_icon: false,
                        near_text: false,
                    })
                };
                let (ml, mr) = (metric(left), metric(right));
                let (ul, ur) = match kind {
                    QuestionKind::Appeal => (ml.appeal_utility(), mr.appeal_utility()),
                    QuestionKind::StyleBetter => (ml.style_utility(), mr.style_utility()),
                    _ => (ml.visibility_utility(), mr.visibility_utility()),
                };
                judge_pair(worker, ul, ur, self.style_indifference, rng).preference
            }
        }
    }
}

/// Handles registered once per [`Campaign::run`] call; per-session updates
/// afterwards are plain atomics. The per-reason reject counters are
/// registered lazily from the quality report instead (labels depend on
/// which reasons actually fire).
struct CampaignMetrics {
    sessions_target: kscope_telemetry::Gauge,
    sessions_done: kscope_telemetry::Gauge,
    sessions_total: kscope_telemetry::Counter,
    responses_total: kscope_telemetry::Counter,
    session_us: kscope_telemetry::Histogram,
    qc_kept: kscope_telemetry::Counter,
}

impl CampaignMetrics {
    fn register(registry: &Registry) -> Self {
        Self {
            sessions_target: registry.gauge("core.campaign_sessions_target"),
            sessions_done: registry.gauge("core.campaign_sessions_done"),
            sessions_total: registry.counter("core.sessions_total"),
            responses_total: registry.counter("core.responses_total"),
            session_us: registry.histogram("core.session_us"),
            qc_kept: registry.counter("core.qc_kept_total"),
        }
    }
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The test id.
    pub test_id: String,
    /// The prepared test (page metadata).
    pub prepared: PreparedTest,
    /// Number of versions under test.
    pub n_versions: usize,
    /// Every participant session in arrival order.
    pub sessions: Vec<SessionResult>,
    /// The quality-control verdicts.
    pub quality: QualityReport,
    /// Recruitment cost.
    pub cost: CostReport,
}

impl CampaignOutcome {
    /// All records (raw).
    pub fn raw_records(&self) -> Vec<&SessionRecord> {
        self.sessions.iter().map(|s| &s.record).collect()
    }

    /// Records that survived quality control.
    pub fn kept_records(&self) -> Vec<&SessionRecord> {
        self.quality.kept.iter().map(|&i| &self.sessions[i].record).collect()
    }

    /// Question analysis over kept (`filtered = true`) or raw records.
    pub fn question_analysis(&self, question: &str, filtered: bool) -> QuestionAnalysis {
        let records = if filtered { self.kept_records() } else { self.raw_records() };
        QuestionAnalysis::aggregate(&records, &self.prepared, question, self.n_versions)
    }

    /// Rank distribution (Fig. 4) over kept or raw records.
    pub fn rank_distribution(&self, question: &str, filtered: bool) -> RankDistribution {
        let records = if filtered { self.kept_records() } else { self.raw_records() };
        RankDistribution::from_records(&records, &self.prepared, question, self.n_versions)
    }

    /// Behaviour samples (Fig. 5) over kept or raw records.
    pub fn behavior_samples(&self, filtered: bool) -> BehaviorSamples {
        let records = if filtered { self.kept_records() } else { self.raw_records() };
        BehaviorSamples::from_records(&records)
    }

    /// Cumulative `(t_ms, responses so far)` — arrivals, Fig. 7(a).
    pub fn recruitment_curve(&self) -> Vec<(u64, usize)> {
        self.sessions.iter().enumerate().map(|(i, s)| (s.arrival_ms, i + 1)).collect()
    }

    /// Wall time from job posting to the last uploaded session (ms).
    pub fn duration_ms(&self) -> u64 {
        self.sessions.iter().map(|s| s.arrival_ms + s.record.total_duration_ms()).max().unwrap_or(0)
    }

    /// The full campaign report as one JSON document — what the core
    /// server's "conclude the final results" step hands back to the
    /// experimenter. Includes per-question tallies (or rankings for
    /// multi-version tests), quality-control accounting, cost, and timing.
    pub fn to_report_json(&self, questions: &[crate::params::Question]) -> serde_json::Value {
        let mut question_reports = Vec::new();
        for q in questions {
            let qa = self.question_analysis(q.text(), true);
            let entry = match qa.two_version_votes() {
                Some(v) => {
                    let sig = v.significance();
                    json!({
                        "question": q.text(),
                        "votes": { "left": v.left, "same": v.same, "right": v.right },
                        "z": sig.statistic,
                        "p_value": sig.p_value,
                    })
                }
                None => json!({
                    "question": q.text(),
                    "ranking_best_first": qa.ranking(),
                }),
            };
            question_reports.push(entry);
        }
        let dropped: Vec<serde_json::Value> = self
            .quality
            .dropped
            .iter()
            .map(|(i, reason)| {
                json!({
                    "contributor_id": self.sessions[*i].record.contributor_id,
                    "reason": reason.to_string(),
                })
            })
            .collect();
        json!({
            "test_id": self.test_id,
            "participants": self.sessions.len(),
            "kept": self.quality.kept.len(),
            "dropped": dropped,
            "cost_usd": self.cost.total_usd(),
            "duration_ms": self.duration_ms(),
            "questions": question_reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;
    use crate::corpus;
    use kscope_crowd::platform::{Channel, JobSpec, Platform};
    use rand::{rngs::StdRng, SeedableRng};

    fn run_font_campaign(participants: usize, seed: u64) -> CampaignOutcome {
        let (store, params) = corpus::font_size_study(participants);
        let db = Database::new();
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let recruitment = Platform.post_job(
            &JobSpec::new(&params.test_id, 0.11, participants, Channel::HistoricallyTrustworthy),
            &mut rng,
        );
        Campaign::new(db, grid)
            .with_question(params.question[0].text(), QuestionKind::FontReadability)
            .run(&params, &prepared, &recruitment, &mut rng)
            .unwrap()
    }

    #[test]
    fn end_to_end_font_campaign() {
        let outcome = run_font_campaign(30, 42);
        assert_eq!(outcome.sessions.len(), 30);
        // Every session tested all 12 pages (10 pairs + 2 controls).
        assert!(outcome.sessions.iter().all(|s| s.record.pages.len() == 12));
        // QC keeps a solid majority of the trustworthy channel.
        assert!(outcome.quality.kept.len() >= 15, "kept {}", outcome.quality.kept.len());
        // Responses are persisted like the core server stores them.
        assert_eq!(outcome.sessions.len(), 30);
    }

    #[test]
    fn twelve_pt_wins_after_quality_control() {
        let outcome = run_font_campaign(60, 7);
        let question = "Which webpage's font size is more suitable (easier) for reading?";
        let qa = outcome.question_analysis(question, true);
        let ranking = qa.ranking();
        // Versions are [10, 12, 14, 18, 22] pt; 12pt (index 1) must win,
        // with 22pt (index 4) last — the CHI-consensus shape of Fig. 4.
        assert_eq!(ranking[0], 1, "12pt should rank first: {ranking:?}");
        assert_eq!(*ranking.last().unwrap(), 4, "22pt should rank last: {ranking:?}");
        let dist = outcome.rank_distribution(question, true);
        assert_eq!(dist.modal_version_at_rank(0), 1);
    }

    #[test]
    fn quality_control_sharpens_the_raw_result() {
        let outcome = run_font_campaign(80, 11);
        let question = "Which webpage's font size is more suitable (easier) for reading?";
        let raw = outcome.rank_distribution(question, false);
        let filtered = outcome.rank_distribution(question, true);
        // The fraction of participants putting 12pt on top grows after QC.
        let top_share = |d: &RankDistribution| d.percentage(1, 0);
        assert!(
            top_share(&filtered) >= top_share(&raw),
            "QC should not weaken the consensus: {} vs {}",
            top_share(&filtered),
            top_share(&raw)
        );
    }

    #[test]
    fn recruitment_curve_and_duration() {
        let outcome = run_font_campaign(20, 3);
        let curve = outcome.recruitment_curve();
        assert_eq!(curve.len(), 20);
        assert!(curve.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(outcome.duration_ms() >= curve.last().unwrap().0);
        assert!(outcome.cost.total_usd() > 0.0);
    }

    #[test]
    fn report_json_shape() {
        let outcome = run_font_campaign(15, 2);
        let q = crate::params::Question(
            "Which webpage's font size is more suitable (easier) for reading?".into(),
        );
        let report = outcome.to_report_json(&[q]);
        assert_eq!(report["participants"], serde_json::json!(15));
        assert!(report["kept"].as_u64().unwrap() <= 15);
        assert!(report["cost_usd"].as_f64().unwrap() > 0.0);
        // Five versions -> a ranking, not a vote split.
        assert_eq!(report["questions"][0]["ranking_best_first"].as_array().unwrap().len(), 5);
        assert_eq!(
            report["dropped"].as_array().unwrap().len() + report["kept"].as_u64().unwrap() as usize,
            15
        );
    }

    #[test]
    fn mobile_viewport_campaign_runs() {
        let (store, params) = corpus::font_size_study(8);
        let db = Database::new();
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let prepared = Aggregator::new(db.clone(), grid.clone())
            .with_viewport(kscope_pageload::Viewport::mobile())
            .prepare(&params, &store, &mut rng)
            .unwrap();
        let recruitment = Platform.post_job(
            &JobSpec::new(&params.test_id, 0.11, 8, Channel::HistoricallyTrustworthy),
            &mut rng,
        );
        let outcome = Campaign::new(db, grid)
            .with_viewport(kscope_pageload::Viewport::mobile())
            .with_question(params.question[0].text(), QuestionKind::FontReadability)
            .run(&params, &prepared, &recruitment, &mut rng)
            .unwrap();
        assert_eq!(outcome.sessions.len(), 8);
    }

    #[test]
    fn ads_campaign_prefers_ad_free() {
        let (store, params) = corpus::ads_study(40);
        let db = Database::new();
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let recruitment = Platform.post_job(
            &JobSpec::new(&params.test_id, 0.11, 40, Channel::HistoricallyTrustworthy),
            &mut rng,
        );
        let outcome = Campaign::new(db, grid)
            .with_question(params.question[0].text(), QuestionKind::AdClutter)
            .run(&params, &prepared, &recruitment, &mut rng)
            .unwrap();
        // Genuine workers must survive the controls...
        assert!(outcome.quality.kept.len() >= 25, "kept {}", outcome.quality.kept.len());
        // ...and the ad-free version (right pane) must win decisively.
        let votes =
            outcome.question_analysis(params.question[0].text(), true).two_version_votes().unwrap();
        assert!(votes.right > votes.left * 3, "{votes:?}");
        assert!(votes.significance().significant_at(0.01));
    }

    #[test]
    fn telemetry_tracks_campaign_progress_and_quality_control() {
        let (store, params) = corpus::font_size_study(25);
        let registry = Arc::new(Registry::new());
        let db = Database::new().with_telemetry(&registry);
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(42);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let recruitment =
            Platform.post_job(&JobSpec::new(&params.test_id, 0.11, 25, Channel::Open), &mut rng);
        let outcome = Campaign::new(db, grid)
            .with_telemetry(Arc::clone(&registry))
            .with_question(params.question[0].text(), QuestionKind::FontReadability)
            .run(&params, &prepared, &recruitment, &mut rng)
            .unwrap();

        assert_eq!(registry.gauge_value("core.campaign_sessions_target", &[]), Some(25));
        assert_eq!(registry.gauge_value("core.campaign_sessions_done", &[]), Some(25));
        assert_eq!(registry.counter_value("core.sessions_total", &[]), Some(25));
        assert_eq!(registry.counter_value("core.responses_total", &[]), Some(25));
        assert_eq!(registry.histogram("core.session_us").snapshot().count(), 25);

        // QC accounting: kept + per-reason rejects == participants.
        let kept = registry.counter_value("core.qc_kept_total", &[]).unwrap();
        assert_eq!(kept, outcome.quality.kept.len() as u64);
        let rejects = registry.snapshot().counter_total("core.qc_rejects_total");
        assert_eq!(kept + rejects, 25);
        assert_eq!(rejects, outcome.quality.dropped.len() as u64);

        // The instrumented database counted the response inserts too.
        assert_eq!(
            registry.counter_value("store.inserts_total", &[("collection", "responses")]),
            Some(25)
        );
    }

    #[test]
    fn unmapped_question_is_an_error() {
        let (store, params) = corpus::font_size_study(5);
        let db = Database::new();
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let recruitment =
            Platform.post_job(&JobSpec::new(&params.test_id, 0.1, 5, Channel::Open), &mut rng);
        let err =
            Campaign::new(db, grid).run(&params, &prepared, &recruitment, &mut rng).unwrap_err();
        assert!(matches!(err, CampaignError::UnmappedQuestion(_)));
    }

    #[test]
    fn skipped_question_is_flow_fault_not_panic() {
        // Regression: a behaviour model that skips a question used to trip
        // `.expect("all questions answered")` and panic the orchestrator.
        let (store, params) = corpus::font_size_study(5);
        let db = Database::new();
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let recruitment =
            Platform.post_job(&JobSpec::new(&params.test_id, 0.11, 5, Channel::Open), &mut rng);
        let err = Campaign::new(db, grid)
            .with_question(params.question[0].text(), QuestionKind::FontReadability)
            .with_behavior(BehaviorModel { question_skip_rate: 1.0, ..BehaviorModel::default() })
            .run(&params, &prepared, &recruitment, &mut rng)
            .unwrap_err();
        match err {
            CampaignError::FlowFault(kscope_browser::FlowError::UnansweredQuestions(missing)) => {
                assert!(!missing.is_empty());
            }
            other => panic!("expected a hard-rule FlowFault, got {other}"),
        }
    }

    #[test]
    fn in_lab_campaign_has_tighter_times() {
        let (store, params) = corpus::font_size_study(20);
        let db = Database::new();
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let lab_recruitment =
            kscope_crowd::platform::InLabRecruiter::new(20, 7.0).recruit(&mut rng);
        let outcome = Campaign::new(db, grid)
            .with_question(params.question[0].text(), QuestionKind::FontReadability)
            .in_lab()
            .run(&params, &prepared, &lab_recruitment, &mut rng)
            .unwrap();
        let behavior = outcome.behavior_samples(false);
        let max_cmp = behavior.comparison_minutes.iter().copied().fold(0.0f64, f64::max);
        assert!(max_cmp <= 2.3, "in-lab comparisons stay short, got {max_cmp}");
        assert_eq!(outcome.cost.total_usd(), 0.0);
    }
}
