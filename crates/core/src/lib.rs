//! Kaleidoscope core — the paper's primary contribution.
//!
//! Wires the substrates into the system of Fig. 2:
//!
//! * [`params`] — the Table-I test parameters (JSON in, JSON out).
//! * [`corpus`] — synthetic test webpages standing in for the paper's
//!   Wikipedia "rock hyrax" article and the authors' research-group page.
//! * [`aggregator`] — compresses each test webpage into a single file,
//!   injects the page-load reveal script, composes every pair into a
//!   side-by-side integrated webpage (plus quality-control pages), and
//!   stores everything in the database + file store.
//! * [`sorting`] — the §III-D comparison reduction: when only one
//!   comparison question is asked, a sorting algorithm with a human
//!   comparator replaces the full `C(N,2)` sweep.
//! * [`quality`] — hard rules, engagement screening, control questions,
//!   and crowd-wisdom majority filtering.
//! * [`campaign`] — the end-to-end orchestrator: recruit (platform or
//!   in-lab), run each participant's extension session in the virtual
//!   browser, collect, filter, analyze.
//! * [`supervisor`] — fault-tolerant campaign supervision: session
//!   leases, abandonment recovery, duplicate-upload dedupe, and quota
//!   refill with deadline/budget-cap degradation.
//! * [`analysis`] — vote aggregation, rank distributions (Fig. 4),
//!   behaviour CDFs (Fig. 5), and significance tests (Fig. 7/8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod analysis;
pub mod campaign;
pub mod corpus;
pub mod params;
pub mod quality;
pub mod sorted_campaign;
pub mod sorting;
pub mod supervisor;

pub use aggregator::{Aggregator, PreparedTest};
pub use analysis::{DemographicBreakdown, QuestionAnalysis, RankDistribution, VoteCounts};
pub use campaign::{Campaign, CampaignError, CampaignOutcome, QuestionKind, SessionResult};
pub use params::{Question, TestParams, ValidateParamsError, WebpageSpec};
pub use quality::{DropReason, QualityConfig, QualityReport};
pub use sorted_campaign::{SortedOutcome, SortedSession};
pub use sorting::{sort_versions, SortAlgo};
pub use supervisor::{
    AbandonPhase, CampaignHealth, CampaignSupervisor, LeaseOutcome, SessionLease,
    SupervisedOutcome, SupervisorConfig,
};
