//! Comparison reduction via sorting with a human comparator (§III-D).
//!
//! "We also utilize sorting algorithms (e.g., bubble sort, insertion sort,
//! etc.) to reduce the number of integrated webpages when only one
//! comparison question is asked." Instead of showing every `C(N,2)` pair,
//! the tester (the *oracle*) only answers the comparisons a sorting
//! algorithm requests — `O(N log N)` for merge sort. This module provides
//! the algorithms, the comparison counter, and the full-pairwise baseline
//! so the bench harness can quantify the saving.

use kscope_stats::rank::Preference;

/// Which sorting strategy drives the comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortAlgo {
    /// Every pair is asked — the default Kaleidoscope behaviour, needed
    /// when several questions are asked per page.
    FullPairwise,
    /// Bubble sort with early exit.
    Bubble,
    /// Insertion sort (binary-search placement would ask even less, but
    /// the paper names plain insertion sort).
    Insertion,
    /// Merge sort — the asymptotically optimal choice.
    Merge,
}

/// The outcome of a human-driven sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortOutcome {
    /// Version indices, best first.
    pub ranking: Vec<usize>,
    /// How many side-by-side comparisons the tester had to answer.
    pub comparisons: usize,
}

/// Ranks `n` versions best-first by asking `oracle(left, right)` which of a
/// pair is better. `Preference::Same` keeps the current relative order
/// (stable algorithms are used throughout, so ties behave consistently).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn sort_versions<F>(n: usize, algo: SortAlgo, mut oracle: F) -> SortOutcome
where
    F: FnMut(usize, usize) -> Preference,
{
    assert!(n >= 2, "need at least two versions to rank");
    let mut comparisons = 0usize;
    // `better(a, b)` = "is a strictly better than b?"
    let mut better = |a: usize, b: usize| -> bool {
        comparisons += 1;
        matches!(oracle(a, b), Preference::Left)
    };
    let ranking = match algo {
        SortAlgo::FullPairwise => full_pairwise(n, &mut better),
        SortAlgo::Bubble => bubble(n, &mut better),
        SortAlgo::Insertion => insertion(n, &mut better),
        SortAlgo::Merge => {
            let items: Vec<usize> = (0..n).collect();
            merge_sort(&items, &mut better)
        }
    };
    SortOutcome { ranking, comparisons }
}

/// Asks every pair and ranks by win count (ties split by index).
fn full_pairwise<F: FnMut(usize, usize) -> bool>(n: usize, better: &mut F) -> Vec<usize> {
    let mut wins = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if better(i, j) {
                wins[i] += 1;
            } else if better(j, i) {
                wins[j] += 1;
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));
    order
}

fn bubble<F: FnMut(usize, usize) -> bool>(n: usize, better: &mut F) -> Vec<usize> {
    let mut items: Vec<usize> = (0..n).collect();
    // A consistent oracle needs at most n passes; the cap keeps an
    // inconsistent (noisy human) oracle from cycling forever.
    for _ in 0..n {
        let mut swapped = false;
        for i in 0..items.len() - 1 {
            // If the later item is strictly better, bubble it up.
            if better(items[i + 1], items[i]) {
                items.swap(i, i + 1);
                swapped = true;
            }
        }
        if !swapped {
            break;
        }
    }
    items
}

fn insertion<F: FnMut(usize, usize) -> bool>(n: usize, better: &mut F) -> Vec<usize> {
    let mut items: Vec<usize> = Vec::with_capacity(n);
    for v in 0..n {
        let mut pos = items.len();
        // Walk left while the new item beats the resident.
        while pos > 0 && better(v, items[pos - 1]) {
            pos -= 1;
        }
        items.insert(pos, v);
    }
    items
}

fn merge_sort<F: FnMut(usize, usize) -> bool>(items: &[usize], better: &mut F) -> Vec<usize> {
    if items.len() <= 1 {
        return items.to_vec();
    }
    let mid = items.len() / 2;
    let left = merge_sort(&items[..mid], better);
    let right = merge_sort(&items[mid..], better);
    let mut out = Vec::with_capacity(items.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        // Stable: take from the left run unless the right item is strictly
        // better.
        if better(right[j], left[i]) {
            out.push(right[j]);
            j += 1;
        } else {
            out.push(left[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

/// The comparison count of the full pairwise sweep: `C(n, 2)`.
pub fn full_pairwise_comparisons(n: usize) -> usize {
    n * (n - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A perfectly consistent oracle ranking smaller "distance from ideal"
    /// higher; `values[i]` is item i's quality.
    fn oracle_for(values: &[f64]) -> impl FnMut(usize, usize) -> Preference + '_ {
        move |a, b| {
            if (values[a] - values[b]).abs() < 1e-12 {
                Preference::Same
            } else if values[a] > values[b] {
                Preference::Left
            } else {
                Preference::Right
            }
        }
    }

    const QUALITIES: [f64; 5] = [2.0, 5.0, 4.0, 1.0, 3.0]; // best: 1,2,4,0,3

    #[test]
    fn all_algorithms_agree_on_consistent_oracle() {
        let expected = vec![1, 2, 4, 0, 3];
        for algo in [SortAlgo::FullPairwise, SortAlgo::Bubble, SortAlgo::Insertion, SortAlgo::Merge]
        {
            // Full pairwise asks both directions for wins; wrap values each
            // time because the closure captures by reference.
            let out = sort_versions(5, algo, oracle_for(&QUALITIES));
            assert_eq!(out.ranking, expected, "{algo:?}");
        }
    }

    #[test]
    fn merge_sort_asks_fewer_questions_than_pairwise() {
        let n = 16;
        let values: Vec<f64> = (0..n).map(|i| ((i * 7) % n) as f64).collect();
        let full = sort_versions(n, SortAlgo::FullPairwise, oracle_for(&values));
        let merge = sort_versions(n, SortAlgo::Merge, oracle_for(&values));
        assert!(full.comparisons >= full_pairwise_comparisons(n));
        assert!(
            merge.comparisons < full_pairwise_comparisons(n) / 2,
            "merge used {} vs C(n,2) = {}",
            merge.comparisons,
            full_pairwise_comparisons(n)
        );
        assert_eq!(merge.ranking, full.ranking);
    }

    #[test]
    fn insertion_beats_pairwise_on_sorted_input() {
        // Already-best-first input: insertion asks n-1 comparisons.
        let values = [5.0, 4.0, 3.0, 2.0, 1.0];
        let out = sort_versions(5, SortAlgo::Insertion, oracle_for(&values));
        assert_eq!(out.ranking, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.comparisons, 4);
    }

    #[test]
    fn bubble_early_exit_on_sorted_input() {
        let values = [5.0, 4.0, 3.0, 2.0, 1.0];
        let out = sort_versions(5, SortAlgo::Bubble, oracle_for(&values));
        assert_eq!(out.ranking, vec![0, 1, 2, 3, 4]);
        // One clean pass.
        assert_eq!(out.comparisons, 4);
    }

    #[test]
    fn ties_keep_stable_order() {
        let values = [1.0, 1.0, 1.0];
        for algo in [SortAlgo::Bubble, SortAlgo::Insertion, SortAlgo::Merge] {
            let out = sort_versions(3, algo, oracle_for(&values));
            assert_eq!(out.ranking, vec![0, 1, 2], "{algo:?}");
        }
    }

    #[test]
    fn two_items_one_comparison() {
        for algo in [SortAlgo::Bubble, SortAlgo::Insertion, SortAlgo::Merge] {
            let values = [1.0, 2.0];
            let out = sort_versions(2, algo, oracle_for(&values));
            assert_eq!(out.ranking, vec![1, 0], "{algo:?}");
        }
    }

    #[test]
    fn noisy_oracle_still_returns_permutation() {
        // An inconsistent (random) oracle must still terminate and produce
        // a permutation for every algorithm.
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for algo in [SortAlgo::FullPairwise, SortAlgo::Bubble, SortAlgo::Insertion, SortAlgo::Merge]
        {
            let out = sort_versions(8, algo, |_a, _b| match rng.random_range(0..3) {
                0 => Preference::Left,
                1 => Preference::Right,
                _ => Preference::Same,
            });
            let mut sorted = out.ranking.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "{algo:?}");
            // Bubble sort with a random oracle could in principle run long,
            // but must stay bounded in practice for the test sizes.
            assert!(out.comparisons < 5000);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_item() {
        let _ = sort_versions(1, SortAlgo::Merge, |_, _| Preference::Same);
    }
}
