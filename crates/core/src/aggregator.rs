//! The aggregator (paper §III-B): test-data preparation.
//!
//! "Two kinds of test data should be prepared and stored in the system —
//! test information and integrated webpages." For each test webpage the
//! aggregator (1) compresses the saved folder into one self-contained HTML
//! file (SingleFile), (2) injects the page-load reveal script built from
//! the webpage's `web_page_load` parameter, and (3) composes every pair of
//! versions into an integrated webpage: an initial HTML document with two
//! side-by-side iframes (Fig. 1). Quality-control pages — an identical
//! pair and a significantly-different pair with known answers — are added
//! for §III-D's control questions. Everything lands in the database and
//! the per-test file store.

use crate::params::TestParams;
use kscope_html::parse_document;
use kscope_pageload::{Layout, RevealPlan, Viewport};
use kscope_singlefile::{AssetCache, InlineError, Inliner, ResourceStore};
use kscope_store::{Database, GridStore};
use kscope_telemetry::Registry;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde_json::{json, Value};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// What a control page checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// Two copies of the same version: a genuine tester must answer "Same".
    IdenticalPair,
    /// A deliberately ruined version against a normal one: a genuine tester
    /// must prefer the normal side (always presented on the right).
    ExtremePair,
}

/// Metadata of one integrated webpage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegratedPageMeta {
    /// File name under the test's folder in the grid store.
    pub name: String,
    /// Index of the version shown in the left iframe, or `None` when the
    /// left pane holds the deliberately ruined copy of the extreme control
    /// (which is no numbered version at all).
    pub left: Option<usize>,
    /// Index of the version shown in the right iframe.
    pub right: usize,
    /// `Some` when this is a quality-control page.
    pub control: Option<ControlKind>,
}

impl IntegratedPageMeta {
    /// Whether this page contributes to the real measurement (not QC).
    pub fn is_real(&self) -> bool {
        self.control.is_none()
    }

    /// The left pane's version index.
    ///
    /// # Panics
    ///
    /// Panics on the extreme control page, whose left pane holds the
    /// ruined copy rather than a numbered version.
    pub fn left_index(&self) -> usize {
        self.left.expect("page's left pane holds a numbered version")
    }

    /// The stored-document form of this metadata (the paper's
    /// integrated-webpages collection). The ruined pane is persisted as an
    /// explicit `"left": null` — never a cast sentinel — so the database
    /// record always round-trips back to the in-memory metadata.
    pub fn to_doc(&self, test_id: &str) -> Value {
        json!({
            "test_id": test_id,
            "name": self.name,
            "left": match self.left {
                Some(i) => json!(i as i64),
                None => Value::Null,
            },
            "right": self.right as i64,
            "control": match self.control {
                None => Value::Null,
                Some(ControlKind::IdenticalPair) => json!("identical"),
                Some(ControlKind::ExtremePair) => json!("extreme"),
            },
        })
    }

    /// Parses a document written by [`IntegratedPageMeta::to_doc`];
    /// `None` when a required field is missing or malformed.
    pub fn from_doc(doc: &Value) -> Option<Self> {
        let name = doc.get("name")?.as_str()?.to_string();
        let left = match doc.get("left")? {
            Value::Null => None,
            v => Some(usize::try_from(v.as_i64()?).ok()?),
        };
        let right = usize::try_from(doc.get("right")?.as_i64()?).ok()?;
        let control = match doc.get("control")? {
            Value::Null => None,
            v if v.as_str() == Some("identical") => Some(ControlKind::IdenticalPair),
            v if v.as_str() == Some("extreme") => Some(ControlKind::ExtremePair),
            _ => return None,
        };
        Some(Self { name, left, right, control })
    }
}

/// The product of [`Aggregator::prepare`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedTest {
    /// The test id everything is stored under.
    pub test_id: String,
    /// All integrated pages in presentation order (real pairs first, then
    /// control pages).
    pub pages: Vec<IntegratedPageMeta>,
}

impl PreparedTest {
    /// Page names in presentation order.
    pub fn page_names(&self) -> Vec<String> {
        self.pages.iter().map(|p| p.name.clone()).collect()
    }

    /// The real (non-control) pairs.
    pub fn real_pairs(&self) -> Vec<&IntegratedPageMeta> {
        self.pages.iter().filter(|p| p.is_real()).collect()
    }

    /// Looks up a page's metadata by name.
    pub fn page(&self, name: &str) -> Option<&IntegratedPageMeta> {
        self.pages.iter().find(|p| p.name == name)
    }
}

/// Errors during test preparation.
#[derive(Debug)]
pub enum AggregateError {
    /// The test parameters failed validation.
    InvalidParams(crate::params::ValidateParamsError),
    /// A webpage folder was missing or incomplete.
    Inline(InlineError),
}

impl fmt::Display for AggregateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateError::InvalidParams(e) => write!(f, "{e}"),
            AggregateError::Inline(e) => write!(f, "webpage preparation failed: {e}"),
        }
    }
}

impl std::error::Error for AggregateError {}

impl From<crate::params::ValidateParamsError> for AggregateError {
    fn from(e: crate::params::ValidateParamsError) -> Self {
        AggregateError::InvalidParams(e)
    }
}

impl From<InlineError> for AggregateError {
    fn from(e: InlineError) -> Self {
        AggregateError::Inline(e)
    }
}

/// The aggregator: prepares and stores a test's data.
#[derive(Debug, Clone)]
pub struct Aggregator {
    db: Database,
    grid: GridStore,
    viewport: Viewport,
    telemetry: Option<Arc<Registry>>,
    threads: usize,
    cache: Arc<AssetCache>,
}

impl Aggregator {
    /// Creates an aggregator over the shared storage. Preparation runs on
    /// as many worker threads as the machine offers (see
    /// [`Aggregator::with_threads`]) over a fresh content-addressed asset
    /// cache (see [`Aggregator::with_shared_cache`]).
    pub fn new(db: Database, grid: GridStore) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self {
            db,
            grid,
            viewport: Viewport::desktop(),
            telemetry: None,
            threads,
            cache: Arc::new(AssetCache::new()),
        }
    }

    /// Overrides the viewport used for layout/reveal planning.
    pub fn with_viewport(mut self, viewport: Viewport) -> Self {
        self.viewport = viewport;
        self
    }

    /// Sets the worker-thread count for [`Aggregator::prepare`]'s fan-out
    /// (`0` restores the machine default). The thread count never changes
    /// the produced bytes — every version draws from its own seed-derived
    /// RNG stream, so `with_threads(1)` and `with_threads(8)` emit
    /// identical artifacts for the same campaign seed.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        self
    }

    /// Replaces the content-addressed asset cache, e.g. to share one cache
    /// across aggregators or to keep it warm between prepare runs (a warm
    /// re-prepare re-encodes nothing).
    pub fn with_shared_cache(mut self, cache: Arc<AssetCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The content-addressed asset cache used while inlining.
    pub fn cache(&self) -> &Arc<AssetCache> {
        &self.cache
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a metric registry (builder style). [`Aggregator::prepare`]
    /// then records `core.version_inline_us` (per-version inline + reveal
    /// injection time), `core.compose_us` (per-integrated-page compose
    /// time), and the `core.versions_prepared_total` /
    /// `core.pages_prepared_total` / `core.tests_prepared_total` counters.
    pub fn with_telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// The attached registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.as_ref()
    }

    /// Prepares a test: compresses versions, injects reveal scripts,
    /// generates `C(N,2)` integrated pages plus two control pages, stores
    /// everything, and records the test information.
    ///
    /// Version compression and pair composition fan out across the
    /// configured worker pool ([`Aggregator::with_threads`]). One draw
    /// from `rng` seeds every per-version RNG stream (SplitMix-derived,
    /// see [`derive_stream_seed`]), so the produced bytes depend only on
    /// the campaign seed — never on thread count or scheduling order —
    /// and shared assets are base64-encoded once through the
    /// content-addressed cache no matter how many versions reference them.
    ///
    /// Per-version compression runs the streaming single-pass inliner
    /// (`kscope_singlefile::Inliner::inline`): untouched page bytes pass
    /// through verbatim and only mutated tags are re-rendered, so the
    /// only full parse → serialize round trip left is the one the reveal
    /// planner needs (it computes layout over the inlined document).
    ///
    /// # Errors
    ///
    /// Returns [`AggregateError`] on invalid parameters or missing webpage
    /// folders.
    pub fn prepare<R: Rng + ?Sized>(
        &self,
        params: &TestParams,
        store: &ResourceStore,
        rng: &mut R,
    ) -> Result<PreparedTest, AggregateError> {
        params.validate()?;
        let test_id = params.test_id.clone();
        let metrics = self.telemetry.as_deref().map(PrepareMetrics::register);
        if let Some(registry) = self.telemetry.as_deref() {
            self.cache.attach_metrics(registry);
        }

        // One draw from the caller's RNG seeds every per-version stream.
        let base_seed = rng.next_u64();

        // 1. Compress each version and inject its reveal plan — one job
        // per version, fanned out over the worker pool. The grid store is
        // keyed (order-independent), each job writes only its own file,
        // and each job's randomness comes from its own derived stream, so
        // the fan-out is invisible in the output.
        let inliner = Inliner::new(store).with_cache(&self.cache);
        let n = params.webpages.len();
        let version_files: Vec<String> = (0..n).map(|i| format!("version-{i}.html")).collect();
        run_jobs(self.threads, n, &|i: usize| -> Result<(), AggregateError> {
            let timer = metrics.as_ref().map(|m| m.inline_us.start_timer());
            let spec = &params.webpages[i];
            let out = inliner.inline(&spec.main_file_path())?;
            let mut doc = parse_document(&out.html);
            let layout = Layout::compute(&doc, self.viewport);
            let load = spec.load_spec().expect("validated above");
            let mut stream = StdRng::seed_from_u64(derive_stream_seed(base_seed, i as u64));
            let plan = RevealPlan::build(&doc, &layout, &load, &mut stream);
            plan.inject(&mut doc);
            // The injected page is the inlined page plus a small script;
            // pre-sizing from the inliner's output avoids regrowing a
            // MB-scale buffer during serialization.
            let mut html = String::with_capacity(out.html.len() + out.html.len() / 16 + 4096);
            doc.to_html_into(&mut html);
            self.grid.put(&test_id, &version_files[i], html.into_bytes());
            drop(timer);
            if let Some(m) = &metrics {
                m.versions.inc();
            }
            Ok(())
        })?;

        // 2. Integrated pages for every pair (i < j), in index order.
        // Composition is a pure function of the two file names and the
        // question list, so pair jobs parallelize the same way.
        let questions: Vec<String> = params.question.iter().map(|q| q.text().to_string()).collect();
        let pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j))).collect();
        run_jobs(self.threads, pairs.len(), &|k: usize| -> Result<(), AggregateError> {
            let timer = metrics.as_ref().map(|m| m.compose_us.start_timer());
            let (i, j) = pairs[k];
            let name = format!("integrated-{k:03}.html");
            let html =
                integrated_html_with_questions(&version_files[i], &version_files[j], &questions);
            self.grid.put(&test_id, &name, html.into_bytes());
            drop(timer);
            Ok(())
        })?;
        let mut pages: Vec<IntegratedPageMeta> = pairs
            .iter()
            .enumerate()
            .map(|(k, &(i, j))| IntegratedPageMeta {
                name: format!("integrated-{k:03}.html"),
                left: Some(i),
                right: j,
                control: None,
            })
            .collect();

        // 3. Control pages. "We occasionally show two copies of the same
        // version webpage, or two significantly different webpages."
        let identical = IntegratedPageMeta {
            name: "control-identical.html".to_string(),
            left: Some(0),
            right: 0,
            control: Some(ControlKind::IdenticalPair),
        };
        self.grid.put(
            &test_id,
            &identical.name,
            integrated_html(&version_files[0], &version_files[0]).into_bytes(),
        );
        pages.push(identical);

        let ruined_name = "version-ruined.html".to_string();
        let ruined =
            ruin_version(&self.grid.get_text(&test_id, &version_files[0]).expect("just stored"));
        self.grid.put(&test_id, &ruined_name, ruined.into_bytes());
        let extreme = IntegratedPageMeta {
            name: "control-extreme.html".to_string(),
            // The ruined copy is always the left pane; the honest answer is
            // therefore "Right".
            left: None,
            right: 0,
            control: Some(ControlKind::ExtremePair),
        };
        self.grid.put(
            &test_id,
            &extreme.name,
            integrated_html(&ruined_name, &version_files[0]).into_bytes(),
        );
        pages.push(extreme);

        // 4. Record test information and page metadata — the paper's three
        // collections: integrated webpages, basic test information, and
        // (later, from the server) participant responses. All page docs
        // commit as one atomic batch (a single WAL record on a durable
        // database).
        let integrated = self.db.collection("integrated_pages");
        integrated.insert_many(pages.iter().map(|p| p.to_doc(&test_id)));
        let tests = self.db.collection(kserver_tests());
        tests.insert_one(json!({
            "test_id": test_id,
            "params": serde_json::to_value(params).expect("params serialize"),
            "pages": pages.iter().map(|p| p.to_doc(&test_id)).collect::<Vec<_>>(),
        }));

        if let Some(m) = &metrics {
            m.pages.add(pages.len() as u64);
            m.tests.inc();
        }

        Ok(PreparedTest { test_id, pages })
    }

    /// The backing file store.
    pub fn grid(&self) -> &GridStore {
        &self.grid
    }

    /// The backing database.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

/// Name of the tests collection (matches the core server's).
fn kserver_tests() -> &'static str {
    "tests"
}

/// Derives the seed of one per-version RNG stream from the campaign-level
/// base seed: the stream index is spread by the golden-ratio increment and
/// the combination is finalized by SplitMix64, so neighbouring indices
/// yield statistically independent streams and the mapping is a pure
/// function — sequential and parallel prepare derive identical streams.
pub fn derive_stream_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `jobs` indexed jobs over at most `threads` scoped workers (atomic
/// work-stealing index; `threads <= 1` degenerates to a plain loop with
/// fail-fast). Every job must be independent — when several fail, the
/// lowest-indexed error is surfaced so the caller sees the same error a
/// sequential sweep would have hit first.
fn run_jobs<E: Send>(
    threads: usize,
    jobs: usize,
    job: &(impl Fn(usize) -> Result<(), E> + Sync),
) -> Result<(), E> {
    if jobs == 0 {
        return Ok(());
    }
    let workers = threads.clamp(1, jobs);
    if workers == 1 {
        return (0..jobs).try_for_each(job);
    }
    let next = AtomicUsize::new(0);
    let failures: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                if let Err(e) = job(i) {
                    failures.lock().expect("no panics hold this lock").push((i, e));
                }
            });
        }
    });
    let mut failures = failures.into_inner().expect("workers joined");
    failures.sort_by_key(|(i, _)| *i);
    match failures.into_iter().next() {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

/// Handles registered once per [`Aggregator::prepare`] call; all updates
/// afterwards are plain atomics.
struct PrepareMetrics {
    inline_us: kscope_telemetry::Histogram,
    compose_us: kscope_telemetry::Histogram,
    versions: kscope_telemetry::Counter,
    pages: kscope_telemetry::Counter,
    tests: kscope_telemetry::Counter,
}

impl PrepareMetrics {
    fn register(registry: &Registry) -> Self {
        Self {
            inline_us: registry.histogram("core.version_inline_us"),
            compose_us: registry.histogram("core.compose_us"),
            versions: registry.counter("core.versions_prepared_total"),
            pages: registry.counter("core.pages_prepared_total"),
            tests: registry.counter("core.tests_prepared_total"),
        }
    }
}

/// The initial HTML document with two side-by-side iframes (Fig. 1),
/// topped by the comparison-question banner the extension renders.
pub fn integrated_html(left_file: &str, right_file: &str) -> String {
    integrated_html_with_questions(left_file, right_file, &[])
}

/// Like [`integrated_html`], with the comparison questions listed in the
/// banner (the extension collects the Left/Right/Same answers itself).
pub fn integrated_html_with_questions(
    left_file: &str,
    right_file: &str,
    questions: &[String],
) -> String {
    let banner = if questions.is_empty() {
        String::new()
    } else {
        let items: String = questions
            .iter()
            .map(|q| format!("<li>{}</li>", kscope_html::tokenizer::escape_text(q)))
            .collect();
        format!(
            "<div id=\"kscope-questions\"><ul>{items}</ul>\
             <p>Answer each question with Left, Right, or Same.</p></div>"
        )
    };
    format!(
        r#"<!DOCTYPE html><html><head><title>Kaleidoscope comparison</title>
<style>
#kscope-questions {{ background: #f5f5f5; padding: 4px 8px; font: 13px sans-serif }}
.kscope-pane {{ width: 49.5%; height: 92vh; float: left; border: 1px solid #ccc }}
</style></head><body>
{banner}<iframe class="kscope-pane" id="kscope-left" src="{left_file}"></iframe>
<iframe class="kscope-pane" id="kscope-right" src="{right_file}"></iframe>
</body></html>"#
    )
}

/// Produces the "significantly different" (deliberately ruined) variant for
/// the extreme control pair: unreadably small text (the paper's 4 pt
/// example) *and* a crawling page load, so the control has a known answer
/// under every question kind — style, readability, and readiness alike.
///
/// Public so the aggregator benchmark's pre-optimization baseline can
/// reproduce the full prepare pipeline, control pages included.
pub fn ruin_version(html: &str) -> String {
    let mut doc = parse_document(html);
    if let Some(body) = doc.find_tag("body") {
        doc.set_style_property(body, "font-size", "4pt");
        doc.set_style_property(body, "letter-spacing", "-1px");
    }
    // Override any inline font sizes below the body.
    let sel: kscope_html::Selector = "[style]".parse().expect("valid selector");
    for node in doc.select(&sel) {
        if doc.style_property(node, "font-size").is_some() {
            doc.set_style_property(node, "font-size", "4pt");
        }
    }
    // Replace the reveal plan: everything under <body> appears only after
    // 8 seconds.
    if let Some(script) = doc.get_element_by_id(kscope_pageload::REVEAL_SCRIPT_ID) {
        doc.detach(script);
    }
    let layout = Layout::compute(&doc, Viewport::desktop());
    let slow = kscope_pageload::LoadSpec::PerSelector(vec![kscope_pageload::SelectorTiming {
        selector: "body".to_string(),
        at_ms: 8000,
    }]);
    // The per-selector form is deterministic, so the seed is irrelevant.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let plan = RevealPlan::build(&doc, &layout, &slow, &mut rng);
    plan.inject(&mut doc);
    doc.to_html()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use rand::{rngs::StdRng, SeedableRng};

    fn prepare_font_study() -> (Aggregator, PreparedTest, TestParams) {
        let (store, params) = corpus::font_size_study(50);
        let agg = Aggregator::new(Database::new(), GridStore::new());
        let mut rng = StdRng::seed_from_u64(1);
        let prepared = agg.prepare(&params, &store, &mut rng).unwrap();
        (agg, prepared, params)
    }

    #[test]
    fn prepares_versions_pairs_and_controls() {
        let (agg, prepared, params) = prepare_font_study();
        // C(5,2) = 10 real pairs + 2 control pages.
        assert_eq!(prepared.pages.len(), 12);
        assert_eq!(prepared.real_pairs().len(), 10);
        assert_eq!(params.integrated_page_count(), 10);
        // All files exist in the grid store.
        let files = agg.grid().list(&prepared.test_id);
        assert!(files.iter().any(|f| f == "version-0.html"));
        assert!(files.iter().any(|f| f == "version-4.html"));
        assert!(files.iter().any(|f| f == "integrated-009.html"));
        assert!(files.iter().any(|f| f == "control-identical.html"));
        assert!(files.iter().any(|f| f == "control-extreme.html"));
        assert!(files.iter().any(|f| f == "version-ruined.html"));
    }

    #[test]
    fn pairs_enumerate_in_index_order() {
        let (_, prepared, _) = prepare_font_study();
        let real = prepared.real_pairs();
        assert_eq!((real[0].left_index(), real[0].right), (0, 1));
        assert_eq!((real[1].left_index(), real[1].right), (0, 2));
        assert_eq!((real[9].left_index(), real[9].right), (3, 4));
        // Left pane always holds the lower index — the presentation-order
        // fact behind the AlwaysLeft-spammer artifact in Fig. 4 (raw).
        assert!(real.iter().all(|p| p.left_index() < p.right));
    }

    #[test]
    fn version_files_are_self_contained_with_reveal_script() {
        let (agg, prepared, _) = prepare_font_study();
        let html = agg.grid().get_text(&prepared.test_id, "version-0.html").unwrap();
        assert!(html.contains("kscope-reveal"), "reveal script must be injected");
        assert!(html.contains("data:image/"), "images must be inlined");
        assert!(!html.contains("style.css"), "stylesheet must be folded in");
    }

    #[test]
    fn integrated_page_references_both_versions() {
        let (agg, prepared, params) = prepare_font_study();
        let html = agg.grid().get_text(&prepared.test_id, "integrated-000.html").unwrap();
        assert!(html.contains(r#"src="version-0.html""#));
        assert!(html.contains(r#"src="version-1.html""#));
        let doc = parse_document(&html);
        let sel: kscope_html::Selector = "iframe".parse().unwrap();
        assert_eq!(doc.select(&sel).len(), 2);
        // The Fig. 1 banner lists the comparison question.
        let banner = doc.get_element_by_id("kscope-questions").expect("question banner");
        assert!(doc.text_content(banner).contains(params.question[0].text()));
    }

    #[test]
    fn ruined_version_has_tiny_font() {
        let (agg, prepared, _) = prepare_font_study();
        let html = agg.grid().get_text(&prepared.test_id, "version-ruined.html").unwrap();
        assert!(html.contains("font-size: 4pt"));
    }

    #[test]
    fn test_info_recorded_in_database() {
        let (agg, prepared, params) = prepare_font_study();
        let doc = agg
            .database()
            .collection("tests")
            .find_one(&json!({"test_id": prepared.test_id}))
            .unwrap();
        assert_eq!(doc["params"]["participant_num"], json!(params.participant_num));
        assert_eq!(doc["pages"].as_array().unwrap().len(), 12);
        // The paper's dedicated integrated-pages collection is populated
        // too, queryable by test id and control kind.
        let integrated = agg.database().collection("integrated_pages");
        assert_eq!(integrated.count(&json!({"test_id": prepared.test_id})), 12);
        assert_eq!(
            integrated.count(&json!({"test_id": prepared.test_id, "control": "identical"})),
            1
        );
        assert_eq!(integrated.count(&json!({"control": null})), 10);
    }

    #[test]
    fn extreme_control_round_trips_through_the_stored_doc() {
        let (agg, prepared, _) = prepare_font_study();
        let integrated = agg.database().collection("integrated_pages");
        for page in &prepared.pages {
            let doc = integrated
                .find_one(&json!({"test_id": prepared.test_id, "name": page.name}))
                .unwrap_or_else(|| panic!("{} stored", page.name));
            let parsed = IntegratedPageMeta::from_doc(&doc).expect("stored doc parses");
            assert_eq!(&parsed, page, "in-memory metadata and DB record agree");
        }
        // The ruined pane is an explicit null — never a cast sentinel.
        let extreme = integrated
            .find_one(&json!({"test_id": prepared.test_id, "control": "extreme"}))
            .unwrap();
        assert_eq!(extreme["left"], serde_json::Value::Null);
        assert_eq!(prepared.page("control-extreme.html").unwrap().left, None);
    }

    #[test]
    fn page_docs_commit_in_one_batch() {
        let dir = std::env::temp_dir().join(format!("kscope-agg-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (store, params) = corpus::font_size_study(10);
            let (db, _) = Database::open_durable(&dir).unwrap();
            let agg = Aggregator::new(db, GridStore::new());
            agg.prepare(&params, &store, &mut StdRng::seed_from_u64(1)).unwrap();
        }
        // Reopen: the batched page docs replay with the rest of the WAL.
        let (db, report) = Database::open_durable(&dir).unwrap();
        assert!(report.clean());
        assert_eq!(db.collection("integrated_pages").len(), 12);
        // 1 insert_many (12 page docs) + 1 test-info insert.
        assert_eq!(report.replayed_records, 2, "page docs are one WAL record");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let (store, params) = corpus::font_size_study(25);
        let seq = Aggregator::new(Database::new(), GridStore::new()).with_threads(1);
        let par = Aggregator::new(Database::new(), GridStore::new()).with_threads(8);
        let a = seq.prepare(&params, &store, &mut StdRng::seed_from_u64(42)).unwrap();
        let b = par.prepare(&params, &store, &mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(a, b, "PreparedTest metadata identical across thread counts");
        let files = seq.grid().list(&params.test_id);
        assert_eq!(files, par.grid().list(&params.test_id));
        for f in &files {
            assert_eq!(
                seq.grid().get(&params.test_id, f),
                par.grid().get(&params.test_id, f),
                "{f} must be byte-identical"
            );
        }
    }

    #[test]
    fn shared_assets_encode_once_across_versions() {
        let (store, params) = corpus::font_size_study(30);
        let agg = Aggregator::new(Database::new(), GridStore::new());
        agg.prepare(&params, &store, &mut StdRng::seed_from_u64(5)).unwrap();
        let stats = agg.cache().stats();
        // The font study's five versions share byte-identical images; only
        // the stylesheet differs per version. Shared bytes encode once.
        assert!(stats.hits > 0, "shared assets must hit the cache: {stats:?}");
        assert!(
            stats.misses < 5 * 3,
            "five versions × three assets must not all be encoded: {stats:?}"
        );
    }

    #[test]
    fn warm_cache_reprepare_is_identical() {
        let (store, params) = corpus::font_size_study(15);
        let cache = Arc::new(kscope_singlefile::AssetCache::new());
        let cold = Aggregator::new(Database::new(), GridStore::new())
            .with_shared_cache(Arc::clone(&cache));
        cold.prepare(&params, &store, &mut StdRng::seed_from_u64(9)).unwrap();
        let cold_stats = cache.stats();
        let warm = Aggregator::new(Database::new(), GridStore::new())
            .with_shared_cache(Arc::clone(&cache));
        warm.prepare(&params, &store, &mut StdRng::seed_from_u64(9)).unwrap();
        let warm_stats = cache.stats();
        // No new blob was base64-encoded (the per-run CSS memo re-resolves
        // sheets, but every data-URI comes straight from the cache).
        assert_eq!(warm_stats.entries, cold_stats.entries, "warm run encodes no new blobs");
        assert!(warm_stats.hits > cold_stats.hits, "warm run is served from the cache");
        for f in cold.grid().list(&params.test_id) {
            assert_eq!(
                cold.grid().get(&params.test_id, &f),
                warm.grid().get(&params.test_id, &f),
                "{f} identical on a warm cache"
            );
        }
    }

    #[test]
    fn stream_seed_derivation_is_stable_and_spread() {
        // The derivation is part of the reproducibility contract: a new
        // binary must replay old campaigns bit-for-bit.
        assert_eq!(derive_stream_seed(0, 0), 0);
        assert_ne!(derive_stream_seed(1, 0), derive_stream_seed(1, 1));
        assert_ne!(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
        let spread: std::collections::HashSet<u64> =
            (0..1000).map(|i| derive_stream_seed(7, i)).collect();
        assert_eq!(spread.len(), 1000, "streams never collide in practice");
    }

    #[test]
    fn reveal_plans_deterministic_per_seed() {
        let (store, params) = corpus::font_size_study(10);
        let a = Aggregator::new(Database::new(), GridStore::new());
        let b = Aggregator::new(Database::new(), GridStore::new());
        a.prepare(&params, &store, &mut StdRng::seed_from_u64(7)).unwrap();
        b.prepare(&params, &store, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(
            a.grid().get_text(&params.test_id, "version-2.html"),
            b.grid().get_text(&params.test_id, "version-2.html")
        );
    }

    #[test]
    fn telemetry_times_prepare_stages() {
        let (store, params) = corpus::font_size_study(20);
        let registry = Arc::new(Registry::new());
        let agg = Aggregator::new(Database::new(), GridStore::new())
            .with_telemetry(Arc::clone(&registry));
        let prepared = agg.prepare(&params, &store, &mut StdRng::seed_from_u64(3)).unwrap();

        assert_eq!(registry.counter_value("core.versions_prepared_total", &[]), Some(5));
        assert_eq!(
            registry.counter_value("core.pages_prepared_total", &[]),
            Some(prepared.pages.len() as u64)
        );
        assert_eq!(registry.counter_value("core.tests_prepared_total", &[]), Some(1));
        // One inline timing per version, one compose timing per real pair.
        assert_eq!(registry.histogram("core.version_inline_us").snapshot().count(), 5);
        assert_eq!(
            registry.histogram("core.compose_us").snapshot().count(),
            prepared.real_pairs().len() as u64
        );
    }

    #[test]
    fn missing_folder_is_an_error() {
        let params = TestParams::new(
            "t",
            10,
            vec!["q"],
            vec![
                crate::params::WebpageSpec::new("ghost-a", "index.html", 0),
                crate::params::WebpageSpec::new("ghost-b", "index.html", 0),
            ],
        );
        let agg = Aggregator::new(Database::new(), GridStore::new());
        let err =
            agg.prepare(&params, &ResourceStore::new(), &mut StdRng::seed_from_u64(0)).unwrap_err();
        assert!(matches!(err, AggregateError::Inline(_)));
        assert!(err.to_string().contains("ghost-a"));
    }

    #[test]
    fn invalid_params_rejected_before_work() {
        let (store, mut params) = corpus::font_size_study(10);
        params.webpage_num = 99;
        let agg = Aggregator::new(Database::new(), GridStore::new());
        let err = agg.prepare(&params, &store, &mut StdRng::seed_from_u64(0)).unwrap_err();
        assert!(matches!(err, AggregateError::InvalidParams(_)));
    }
}
