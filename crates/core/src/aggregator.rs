//! The aggregator (paper §III-B): test-data preparation.
//!
//! "Two kinds of test data should be prepared and stored in the system —
//! test information and integrated webpages." For each test webpage the
//! aggregator (1) compresses the saved folder into one self-contained HTML
//! file (SingleFile), (2) injects the page-load reveal script built from
//! the webpage's `web_page_load` parameter, and (3) composes every pair of
//! versions into an integrated webpage: an initial HTML document with two
//! side-by-side iframes (Fig. 1). Quality-control pages — an identical
//! pair and a significantly-different pair with known answers — are added
//! for §III-D's control questions. Everything lands in the database and
//! the per-test file store.

use crate::params::TestParams;
use kscope_html::parse_document;
use kscope_pageload::{Layout, RevealPlan, Viewport};
use kscope_singlefile::{InlineError, Inliner, ResourceStore};
use kscope_store::{Database, GridStore};
use kscope_telemetry::Registry;
use rand::Rng;
use serde_json::json;
use std::fmt;
use std::sync::Arc;

/// What a control page checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// Two copies of the same version: a genuine tester must answer "Same".
    IdenticalPair,
    /// A deliberately ruined version against a normal one: a genuine tester
    /// must prefer the normal side (always presented on the right).
    ExtremePair,
}

/// Metadata of one integrated webpage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegratedPageMeta {
    /// File name under the test's folder in the grid store.
    pub name: String,
    /// Index of the version shown in the left iframe.
    pub left: usize,
    /// Index of the version shown in the right iframe.
    pub right: usize,
    /// `Some` when this is a quality-control page.
    pub control: Option<ControlKind>,
}

impl IntegratedPageMeta {
    /// Whether this page contributes to the real measurement (not QC).
    pub fn is_real(&self) -> bool {
        self.control.is_none()
    }
}

/// The product of [`Aggregator::prepare`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedTest {
    /// The test id everything is stored under.
    pub test_id: String,
    /// All integrated pages in presentation order (real pairs first, then
    /// control pages).
    pub pages: Vec<IntegratedPageMeta>,
}

impl PreparedTest {
    /// Page names in presentation order.
    pub fn page_names(&self) -> Vec<String> {
        self.pages.iter().map(|p| p.name.clone()).collect()
    }

    /// The real (non-control) pairs.
    pub fn real_pairs(&self) -> Vec<&IntegratedPageMeta> {
        self.pages.iter().filter(|p| p.is_real()).collect()
    }

    /// Looks up a page's metadata by name.
    pub fn page(&self, name: &str) -> Option<&IntegratedPageMeta> {
        self.pages.iter().find(|p| p.name == name)
    }
}

/// Errors during test preparation.
#[derive(Debug)]
pub enum AggregateError {
    /// The test parameters failed validation.
    InvalidParams(crate::params::ValidateParamsError),
    /// A webpage folder was missing or incomplete.
    Inline(InlineError),
}

impl fmt::Display for AggregateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateError::InvalidParams(e) => write!(f, "{e}"),
            AggregateError::Inline(e) => write!(f, "webpage preparation failed: {e}"),
        }
    }
}

impl std::error::Error for AggregateError {}

impl From<crate::params::ValidateParamsError> for AggregateError {
    fn from(e: crate::params::ValidateParamsError) -> Self {
        AggregateError::InvalidParams(e)
    }
}

impl From<InlineError> for AggregateError {
    fn from(e: InlineError) -> Self {
        AggregateError::Inline(e)
    }
}

/// The aggregator: prepares and stores a test's data.
#[derive(Debug, Clone)]
pub struct Aggregator {
    db: Database,
    grid: GridStore,
    viewport: Viewport,
    telemetry: Option<Arc<Registry>>,
}

impl Aggregator {
    /// Creates an aggregator over the shared storage.
    pub fn new(db: Database, grid: GridStore) -> Self {
        Self { db, grid, viewport: Viewport::desktop(), telemetry: None }
    }

    /// Overrides the viewport used for layout/reveal planning.
    pub fn with_viewport(mut self, viewport: Viewport) -> Self {
        self.viewport = viewport;
        self
    }

    /// Attaches a metric registry (builder style). [`Aggregator::prepare`]
    /// then records `core.version_inline_us` (per-version inline + reveal
    /// injection time), `core.compose_us` (per-integrated-page compose
    /// time), and the `core.versions_prepared_total` /
    /// `core.pages_prepared_total` / `core.tests_prepared_total` counters.
    pub fn with_telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// The attached registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.as_ref()
    }

    /// Prepares a test: compresses versions, injects reveal scripts,
    /// generates `C(N,2)` integrated pages plus two control pages, stores
    /// everything, and records the test information.
    ///
    /// # Errors
    ///
    /// Returns [`AggregateError`] on invalid parameters or missing webpage
    /// folders.
    pub fn prepare<R: Rng + ?Sized>(
        &self,
        params: &TestParams,
        store: &ResourceStore,
        rng: &mut R,
    ) -> Result<PreparedTest, AggregateError> {
        params.validate()?;
        let test_id = params.test_id.clone();
        let metrics = self.telemetry.as_deref().map(PrepareMetrics::register);

        // 1. Compress each version and inject its reveal plan.
        let inliner = Inliner::new(store);
        let mut version_files = Vec::with_capacity(params.webpages.len());
        for (i, spec) in params.webpages.iter().enumerate() {
            let timer = metrics.as_ref().map(|m| m.inline_us.start_timer());
            let out = inliner.inline(&spec.main_file_path())?;
            let mut doc = parse_document(&out.html);
            let layout = Layout::compute(&doc, self.viewport);
            let load = spec.load_spec().expect("validated above");
            let plan = RevealPlan::build(&doc, &layout, &load, rng);
            plan.inject(&mut doc);
            let name = format!("version-{i}.html");
            self.grid.put(&test_id, &name, doc.to_html().into_bytes());
            version_files.push(name);
            drop(timer);
            if let Some(m) = &metrics {
                m.versions.inc();
            }
        }

        // 2. Integrated pages for every pair (i < j), in index order.
        let questions: Vec<String> = params.question.iter().map(|q| q.text().to_string()).collect();
        let mut pages = Vec::new();
        let n = params.webpages.len();
        let mut k = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let timer = metrics.as_ref().map(|m| m.compose_us.start_timer());
                let name = format!("integrated-{k:03}.html");
                let html = integrated_html_with_questions(
                    &version_files[i],
                    &version_files[j],
                    &questions,
                );
                self.grid.put(&test_id, &name, html.into_bytes());
                pages.push(IntegratedPageMeta { name, left: i, right: j, control: None });
                k += 1;
                drop(timer);
            }
        }

        // 3. Control pages. "We occasionally show two copies of the same
        // version webpage, or two significantly different webpages."
        let identical = IntegratedPageMeta {
            name: "control-identical.html".to_string(),
            left: 0,
            right: 0,
            control: Some(ControlKind::IdenticalPair),
        };
        self.grid.put(
            &test_id,
            &identical.name,
            integrated_html(&version_files[0], &version_files[0]).into_bytes(),
        );
        pages.push(identical);

        let ruined_name = "version-ruined.html".to_string();
        let ruined =
            ruin_version(&self.grid.get_text(&test_id, &version_files[0]).expect("just stored"));
        self.grid.put(&test_id, &ruined_name, ruined.into_bytes());
        let extreme = IntegratedPageMeta {
            name: "control-extreme.html".to_string(),
            // The ruined copy is always the left pane; the honest answer is
            // therefore "Right".
            left: usize::MAX,
            right: 0,
            control: Some(ControlKind::ExtremePair),
        };
        self.grid.put(
            &test_id,
            &extreme.name,
            integrated_html(&ruined_name, &version_files[0]).into_bytes(),
        );
        pages.push(extreme);

        // 4. Record test information and page metadata — the paper's three
        // collections: integrated webpages, basic test information, and
        // (later, from the server) participant responses.
        let page_doc = |p: &IntegratedPageMeta| {
            json!({
                "test_id": test_id,
                "name": p.name,
                "left": p.left as i64,
                "right": p.right as i64,
                "control": match p.control {
                    None => serde_json::Value::Null,
                    Some(ControlKind::IdenticalPair) => json!("identical"),
                    Some(ControlKind::ExtremePair) => json!("extreme"),
                },
            })
        };
        let integrated = self.db.collection("integrated_pages");
        for p in &pages {
            integrated.insert_one(page_doc(p));
        }
        let tests = self.db.collection(kserver_tests());
        tests.insert_one(json!({
            "test_id": test_id,
            "params": serde_json::to_value(params).expect("params serialize"),
            "pages": pages.iter().map(page_doc).collect::<Vec<_>>(),
        }));

        if let Some(m) = &metrics {
            m.pages.add(pages.len() as u64);
            m.tests.inc();
        }

        Ok(PreparedTest { test_id, pages })
    }

    /// The backing file store.
    pub fn grid(&self) -> &GridStore {
        &self.grid
    }

    /// The backing database.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

/// Name of the tests collection (matches the core server's).
fn kserver_tests() -> &'static str {
    "tests"
}

/// Handles registered once per [`Aggregator::prepare`] call; all updates
/// afterwards are plain atomics.
struct PrepareMetrics {
    inline_us: kscope_telemetry::Histogram,
    compose_us: kscope_telemetry::Histogram,
    versions: kscope_telemetry::Counter,
    pages: kscope_telemetry::Counter,
    tests: kscope_telemetry::Counter,
}

impl PrepareMetrics {
    fn register(registry: &Registry) -> Self {
        Self {
            inline_us: registry.histogram("core.version_inline_us"),
            compose_us: registry.histogram("core.compose_us"),
            versions: registry.counter("core.versions_prepared_total"),
            pages: registry.counter("core.pages_prepared_total"),
            tests: registry.counter("core.tests_prepared_total"),
        }
    }
}

/// The initial HTML document with two side-by-side iframes (Fig. 1),
/// topped by the comparison-question banner the extension renders.
pub fn integrated_html(left_file: &str, right_file: &str) -> String {
    integrated_html_with_questions(left_file, right_file, &[])
}

/// Like [`integrated_html`], with the comparison questions listed in the
/// banner (the extension collects the Left/Right/Same answers itself).
pub fn integrated_html_with_questions(
    left_file: &str,
    right_file: &str,
    questions: &[String],
) -> String {
    let banner = if questions.is_empty() {
        String::new()
    } else {
        let items: String = questions
            .iter()
            .map(|q| format!("<li>{}</li>", kscope_html::tokenizer::escape_text(q)))
            .collect();
        format!(
            "<div id=\"kscope-questions\"><ul>{items}</ul>\
             <p>Answer each question with Left, Right, or Same.</p></div>"
        )
    };
    format!(
        r#"<!DOCTYPE html><html><head><title>Kaleidoscope comparison</title>
<style>
#kscope-questions {{ background: #f5f5f5; padding: 4px 8px; font: 13px sans-serif }}
.kscope-pane {{ width: 49.5%; height: 92vh; float: left; border: 1px solid #ccc }}
</style></head><body>
{banner}<iframe class="kscope-pane" id="kscope-left" src="{left_file}"></iframe>
<iframe class="kscope-pane" id="kscope-right" src="{right_file}"></iframe>
</body></html>"#
    )
}

/// Produces the "significantly different" (deliberately ruined) variant for
/// the extreme control pair: unreadably small text (the paper's 4 pt
/// example) *and* a crawling page load, so the control has a known answer
/// under every question kind — style, readability, and readiness alike.
fn ruin_version(html: &str) -> String {
    let mut doc = parse_document(html);
    if let Some(body) = doc.find_tag("body") {
        doc.set_style_property(body, "font-size", "4pt");
        doc.set_style_property(body, "letter-spacing", "-1px");
    }
    // Override any inline font sizes below the body.
    let sel: kscope_html::Selector = "[style]".parse().expect("valid selector");
    for node in doc.select(&sel) {
        if doc.style_property(node, "font-size").is_some() {
            doc.set_style_property(node, "font-size", "4pt");
        }
    }
    // Replace the reveal plan: everything under <body> appears only after
    // 8 seconds.
    if let Some(script) = doc.get_element_by_id(kscope_pageload::REVEAL_SCRIPT_ID) {
        doc.detach(script);
    }
    let layout = Layout::compute(&doc, Viewport::desktop());
    let slow = kscope_pageload::LoadSpec::PerSelector(vec![kscope_pageload::SelectorTiming {
        selector: "body".to_string(),
        at_ms: 8000,
    }]);
    // The per-selector form is deterministic, so the seed is irrelevant.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let plan = RevealPlan::build(&doc, &layout, &slow, &mut rng);
    plan.inject(&mut doc);
    doc.to_html()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use rand::{rngs::StdRng, SeedableRng};

    fn prepare_font_study() -> (Aggregator, PreparedTest, TestParams) {
        let (store, params) = corpus::font_size_study(50);
        let agg = Aggregator::new(Database::new(), GridStore::new());
        let mut rng = StdRng::seed_from_u64(1);
        let prepared = agg.prepare(&params, &store, &mut rng).unwrap();
        (agg, prepared, params)
    }

    #[test]
    fn prepares_versions_pairs_and_controls() {
        let (agg, prepared, params) = prepare_font_study();
        // C(5,2) = 10 real pairs + 2 control pages.
        assert_eq!(prepared.pages.len(), 12);
        assert_eq!(prepared.real_pairs().len(), 10);
        assert_eq!(params.integrated_page_count(), 10);
        // All files exist in the grid store.
        let files = agg.grid().list(&prepared.test_id);
        assert!(files.iter().any(|f| f == "version-0.html"));
        assert!(files.iter().any(|f| f == "version-4.html"));
        assert!(files.iter().any(|f| f == "integrated-009.html"));
        assert!(files.iter().any(|f| f == "control-identical.html"));
        assert!(files.iter().any(|f| f == "control-extreme.html"));
        assert!(files.iter().any(|f| f == "version-ruined.html"));
    }

    #[test]
    fn pairs_enumerate_in_index_order() {
        let (_, prepared, _) = prepare_font_study();
        let real = prepared.real_pairs();
        assert_eq!((real[0].left, real[0].right), (0, 1));
        assert_eq!((real[1].left, real[1].right), (0, 2));
        assert_eq!((real[9].left, real[9].right), (3, 4));
        // Left pane always holds the lower index — the presentation-order
        // fact behind the AlwaysLeft-spammer artifact in Fig. 4 (raw).
        assert!(real.iter().all(|p| p.left < p.right));
    }

    #[test]
    fn version_files_are_self_contained_with_reveal_script() {
        let (agg, prepared, _) = prepare_font_study();
        let html = agg.grid().get_text(&prepared.test_id, "version-0.html").unwrap();
        assert!(html.contains("kscope-reveal"), "reveal script must be injected");
        assert!(html.contains("data:image/"), "images must be inlined");
        assert!(!html.contains("style.css"), "stylesheet must be folded in");
    }

    #[test]
    fn integrated_page_references_both_versions() {
        let (agg, prepared, params) = prepare_font_study();
        let html = agg.grid().get_text(&prepared.test_id, "integrated-000.html").unwrap();
        assert!(html.contains(r#"src="version-0.html""#));
        assert!(html.contains(r#"src="version-1.html""#));
        let doc = parse_document(&html);
        let sel: kscope_html::Selector = "iframe".parse().unwrap();
        assert_eq!(doc.select(&sel).len(), 2);
        // The Fig. 1 banner lists the comparison question.
        let banner = doc.get_element_by_id("kscope-questions").expect("question banner");
        assert!(doc.text_content(banner).contains(params.question[0].text()));
    }

    #[test]
    fn ruined_version_has_tiny_font() {
        let (agg, prepared, _) = prepare_font_study();
        let html = agg.grid().get_text(&prepared.test_id, "version-ruined.html").unwrap();
        assert!(html.contains("font-size: 4pt"));
    }

    #[test]
    fn test_info_recorded_in_database() {
        let (agg, prepared, params) = prepare_font_study();
        let doc = agg
            .database()
            .collection("tests")
            .find_one(&json!({"test_id": prepared.test_id}))
            .unwrap();
        assert_eq!(doc["params"]["participant_num"], json!(params.participant_num));
        assert_eq!(doc["pages"].as_array().unwrap().len(), 12);
        // The paper's dedicated integrated-pages collection is populated
        // too, queryable by test id and control kind.
        let integrated = agg.database().collection("integrated_pages");
        assert_eq!(integrated.count(&json!({"test_id": prepared.test_id})), 12);
        assert_eq!(
            integrated.count(&json!({"test_id": prepared.test_id, "control": "identical"})),
            1
        );
        assert_eq!(integrated.count(&json!({"control": null})), 10);
    }

    #[test]
    fn reveal_plans_deterministic_per_seed() {
        let (store, params) = corpus::font_size_study(10);
        let a = Aggregator::new(Database::new(), GridStore::new());
        let b = Aggregator::new(Database::new(), GridStore::new());
        a.prepare(&params, &store, &mut StdRng::seed_from_u64(7)).unwrap();
        b.prepare(&params, &store, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(
            a.grid().get_text(&params.test_id, "version-2.html"),
            b.grid().get_text(&params.test_id, "version-2.html")
        );
    }

    #[test]
    fn telemetry_times_prepare_stages() {
        let (store, params) = corpus::font_size_study(20);
        let registry = Arc::new(Registry::new());
        let agg = Aggregator::new(Database::new(), GridStore::new())
            .with_telemetry(Arc::clone(&registry));
        let prepared = agg.prepare(&params, &store, &mut StdRng::seed_from_u64(3)).unwrap();

        assert_eq!(registry.counter_value("core.versions_prepared_total", &[]), Some(5));
        assert_eq!(
            registry.counter_value("core.pages_prepared_total", &[]),
            Some(prepared.pages.len() as u64)
        );
        assert_eq!(registry.counter_value("core.tests_prepared_total", &[]), Some(1));
        // One inline timing per version, one compose timing per real pair.
        assert_eq!(registry.histogram("core.version_inline_us").snapshot().count(), 5);
        assert_eq!(
            registry.histogram("core.compose_us").snapshot().count(),
            prepared.real_pairs().len() as u64
        );
    }

    #[test]
    fn missing_folder_is_an_error() {
        let params = TestParams::new(
            "t",
            10,
            vec!["q"],
            vec![
                crate::params::WebpageSpec::new("ghost-a", "index.html", 0),
                crate::params::WebpageSpec::new("ghost-b", "index.html", 0),
            ],
        );
        let agg = Aggregator::new(Database::new(), GridStore::new());
        let err =
            agg.prepare(&params, &ResourceStore::new(), &mut StdRng::seed_from_u64(0)).unwrap_err();
        assert!(matches!(err, AggregateError::Inline(_)));
        assert!(err.to_string().contains("ghost-a"));
    }

    #[test]
    fn invalid_params_rejected_before_work() {
        let (store, mut params) = corpus::font_size_study(10);
        params.webpage_num = 99;
        let agg = Aggregator::new(Database::new(), GridStore::new());
        let err = agg.prepare(&params, &store, &mut StdRng::seed_from_u64(0)).unwrap_err();
        assert!(matches!(err, AggregateError::InvalidParams(_)));
    }
}
