//! A bounded ring buffer of structured events.
//!
//! Events record *rare* occurrences — handler panics, parse failures,
//! campaign milestones — so they live off the metrics hot path and a plain
//! mutex around the ring is fine (the lock-free guarantee applies to
//! counter/histogram updates, which fire on every request).

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// Severity of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventLevel {
    /// Routine milestone (campaign started, test prepared).
    Info,
    /// Something degraded but survivable (slow request, dropped session).
    Warn,
    /// A defect worth paging over (handler panic, storage failure).
    Error,
}

impl fmt::Display for EventLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventLevel::Info => "INFO",
            EventLevel::Warn => "WARN",
            EventLevel::Error => "ERROR",
        })
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (counts all events ever recorded, so gaps
    /// after eviction are visible).
    pub seq: u64,
    /// Milliseconds since the ring was created.
    pub at_ms: u64,
    /// Severity.
    pub level: EventLevel,
    /// Emitting subsystem (`server`, `store`, `core`, …).
    pub subsystem: String,
    /// Human-readable message.
    pub message: String,
    /// Structured key/value context.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// Renders the event as a single log line.
    pub fn to_line(&self) -> String {
        let mut line =
            format!("[{:>8}ms] {} {}: {}", self.at_ms, self.level, self.subsystem, self.message);
        for (k, v) in &self.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line
    }
}

#[derive(Debug)]
struct RingState {
    buf: VecDeque<Event>,
    next_seq: u64,
    evicted: u64,
}

/// A bounded, thread-safe ring buffer of [`Event`]s. When full, the oldest
/// event is evicted (and counted).
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    start: Instant,
    state: Mutex<RingState>,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring needs capacity");
        Self {
            capacity,
            start: Instant::now(),
            state: Mutex::new(RingState {
                buf: VecDeque::with_capacity(capacity),
                next_seq: 0,
                evicted: 0,
            }),
        }
    }

    /// Records an event, evicting the oldest if the ring is full.
    pub fn record(
        &self,
        level: EventLevel,
        subsystem: &str,
        message: &str,
        fields: &[(&str, &str)],
    ) {
        let at_ms = self.start.elapsed().as_millis().min(u64::MAX as u128) as u64;
        let mut state = self.state.lock().expect("event ring poisoned");
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.buf.len() == self.capacity {
            state.buf.pop_front();
            state.evicted += 1;
        }
        state.buf.push_back(Event {
            seq,
            at_ms,
            level,
            subsystem: subsystem.to_string(),
            message: message.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        });
    }

    /// The newest `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let state = self.state.lock().expect("event ring poisoned");
        let skip = state.buf.len().saturating_sub(n);
        state.buf.iter().skip(skip).cloned().collect()
    }

    /// All retained events, oldest first.
    pub fn all(&self) -> Vec<Event> {
        let state = self.state.lock().expect("event ring poisoned");
        state.buf.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.state.lock().expect("event ring poisoned").buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.state.lock().expect("event ring poisoned").next_seq
    }

    /// Events evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.state.lock().expect("event ring poisoned").evicted
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_lists() {
        let ring = EventRing::new(8);
        ring.record(EventLevel::Info, "core", "campaign started", &[("test_id", "t1")]);
        ring.record(EventLevel::Error, "server", "handler panicked", &[("route", "/x")]);
        let all = ring.all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].seq, 0);
        assert_eq!(all[1].level, EventLevel::Error);
        assert_eq!(all[1].fields, vec![("route".to_string(), "/x".to_string())]);
        assert!(all[1].to_line().contains("handler panicked"));
        assert!(all[1].to_line().contains("route=/x"));
    }

    #[test]
    fn bounded_eviction() {
        let ring = EventRing::new(3);
        for i in 0..10 {
            ring.record(EventLevel::Info, "t", &format!("e{i}"), &[]);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted(), 7);
        assert_eq!(ring.total_recorded(), 10);
        let all = ring.all();
        assert_eq!(all[0].message, "e7");
        assert_eq!(all[2].message, "e9");
        // Sequence numbers survive eviction.
        assert_eq!(all[0].seq, 7);
    }

    #[test]
    fn recent_takes_newest() {
        let ring = EventRing::new(10);
        for i in 0..5 {
            ring.record(EventLevel::Info, "t", &format!("e{i}"), &[]);
        }
        let recent = ring.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].message, "e3");
        assert_eq!(recent[1].message, "e4");
        assert_eq!(ring.recent(100).len(), 5);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let ring = std::sync::Arc::new(EventRing::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..100 {
                        ring.record(EventLevel::Info, "t", &format!("{t}-{i}"), &[]);
                    }
                });
            }
        });
        assert_eq!(ring.total_recorded(), 400);
        assert_eq!(ring.len(), 64);
        assert_eq!(ring.evicted(), 400 - 64);
    }
}
