//! Observability for the Kaleidoscope pipeline.
//!
//! The paper's core server must sustain a crowd of concurrent testers
//! fetching integrated pages and posting questionnaire responses; EYEORG
//! and VidPlat both stress that crowdsourced QoE platforms live or die by
//! operational turnaround. This crate gives every layer of the pipeline a
//! shared, dependency-free instrumentation substrate:
//!
//! * [`Counter`] / [`Gauge`] — single atomics, lock-free, `Clone`-cheap.
//! * [`Histogram`] — fixed exponential (or caller-supplied) buckets with
//!   atomic bucket counts; snapshots compute p50/p95/p99 by cumulative
//!   interpolation. [`Histogram::start_timer`] returns an RAII
//!   [`ScopedTimer`] that observes elapsed microseconds on drop.
//! * [`Registry`] — a named metric registry. Handles are registered once
//!   (the only place a lock is taken) and then shared across threads;
//!   every subsequent update is a plain atomic operation, so the request
//!   hot path never acquires a lock.
//! * [`EventRing`] — a bounded ring buffer of structured events (panics,
//!   parse errors, campaign milestones). Events are off the hot path by
//!   design: they record rare occurrences, so the ring uses a plain mutex.
//! * Prometheus text exposition ([`Registry::render_prometheus`]) and a
//!   human-readable snapshot ([`Registry::render_human`]) for the CLI.
//!
//! # Naming scheme
//!
//! Metrics are named `<subsystem>.<name>` (e.g. `server.requests_total`,
//! `store.inserts_total`, `core.compose_us`) with optional labels.
//! Prometheus exposition maps dots to underscores under a `kscope_`
//! prefix: `server.requests_total{route="/ping"}` becomes
//! `kscope_server_requests_total{route="/ping"}`.
//!
//! # Example
//!
//! ```
//! use kscope_telemetry::Registry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let requests = registry.counter_with("server.requests_total", &[("route", "/ping")]);
//! let latency = registry.histogram("server.latency_us");
//! {
//!     let _timer = latency.start_timer(); // observes on drop
//!     requests.inc();
//! }
//! assert_eq!(requests.get(), 1);
//! assert!(registry.render_prometheus().contains("kscope_server_requests_total"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod registry;

pub use events::{Event, EventLevel, EventRing};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, ScopedTimer};
pub use registry::{MetricKey, Registry, Snapshot};
