//! The named metric registry and its exposition formats.

use crate::events::{EventLevel, EventRing};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::RwLock;
use std::time::{Duration, Instant};

/// Default capacity of the registry's event ring.
const DEFAULT_EVENT_CAPACITY: usize = 256;

/// A metric's identity: dotted name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Dotted `<subsystem>.<name>` metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        Self { name: name.to_string(), labels }
    }

    /// Renders `name{k="v",...}` (no labels → just the name).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            let pairs: Vec<String> =
                self.labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            format!("{}{{{}}}", self.name, pairs.join(","))
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named registry of metrics plus a structured-event ring.
///
/// Registration (`counter`, `gauge`, `histogram`, and their `_with` label
/// variants) takes a write lock once per *new* metric and a read lock per
/// lookup; callers are expected to register at wiring time and keep the
/// returned handles, after which every update is purely atomic. Handles
/// stay live even if the registry is dropped.
#[derive(Debug)]
pub struct Registry {
    start: Instant,
    metrics: RwLock<BTreeMap<MetricKey, Metric>>,
    events: EventRing,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry (event capacity
    /// [`DEFAULT_EVENT_CAPACITY`](crate::Registry::with_event_capacity)).
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Creates an empty registry retaining at most `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            start: Instant::now(),
            metrics: RwLock::new(BTreeMap::new()),
            events: EventRing::new(capacity),
        }
    }

    /// Time since the registry was created.
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }

    /// The event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Records a structured event (see [`EventRing::record`]).
    pub fn event(
        &self,
        level: EventLevel,
        subsystem: &str,
        message: &str,
        fields: &[(&str, &str)],
    ) {
        self.events.record(level, subsystem, message, fields);
    }

    fn get_or_insert<F>(&self, key: MetricKey, make: F) -> Metric
    where
        F: FnOnce() -> Metric,
    {
        if let Some(m) = self.metrics.read().expect("registry poisoned").get(&key) {
            return m.clone();
        }
        let mut metrics = self.metrics.write().expect("registry poisoned");
        metrics.entry(key).or_insert_with(make).clone()
    }

    /// Gets or creates an unlabelled counter.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Gets or creates a labelled counter.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        match self.get_or_insert(key.clone(), || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {} already registered as {}", key.render(), other.kind()),
        }
    }

    /// Gets or creates an unlabelled gauge.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Gets or creates a labelled gauge.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        match self.get_or_insert(key.clone(), || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {} already registered as {}", key.render(), other.kind()),
        }
    }

    /// Gets or creates an unlabelled histogram with default latency
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Gets or creates a labelled histogram with default latency buckets.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric kind.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        match self.get_or_insert(key.clone(), || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {} already registered as {}", key.render(), other.kind()),
        }
    }

    /// Gets or creates a labelled histogram over custom bucket bounds —
    /// for observations that live on a different scale than the default
    /// microsecond latency series (e.g. shutdown durations in
    /// milliseconds). If the key is already registered, the existing
    /// histogram (and its original buckets) is returned.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric kind,
    /// or if `bounds` is empty or not strictly increasing.
    pub fn histogram_with_buckets(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Histogram {
        let key = MetricKey::new(name, labels);
        match self.get_or_insert(key.clone(), || Metric::Histogram(Histogram::with_buckets(bounds)))
        {
            Metric::Histogram(h) => h,
            other => panic!("metric {} already registered as {}", key.render(), other.kind()),
        }
    }

    /// Looks up a counter's current value.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.metrics.read().expect("registry poisoned").get(&MetricKey::new(name, labels)) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Looks up a gauge's current value.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.metrics.read().expect("registry poisoned").get(&MetricKey::new(name, labels)) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// A point-in-time snapshot of every metric, sorted by key.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.read().expect("registry poisoned");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (key, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => counters.push((key.clone(), c.get())),
                Metric::Gauge(g) => gauges.push((key.clone(), g.get())),
                Metric::Histogram(h) => histograms.push((key.clone(), h.snapshot())),
            }
        }
        Snapshot { uptime: self.uptime(), counters, gauges, histograms }
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`text/plain; version=0.0.4`). Dotted names become
    /// `kscope_<subsystem>_<name>`.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        // Uptime first so scrapes always have at least one sample.
        out.push_str("# HELP kscope_uptime_seconds Seconds since the registry was created.\n");
        out.push_str("# TYPE kscope_uptime_seconds gauge\n");
        out.push_str(&format!("kscope_uptime_seconds {}\n", snap.uptime.as_secs_f64()));

        let mut last_name = String::new();
        let mut emit_header = |out: &mut String, name: &str, kind: &str| {
            if last_name != name {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_name = name.to_string();
            }
        };
        for (key, value) in &snap.counters {
            let name = prometheus_name(&key.name);
            emit_header(&mut out, &name, "counter");
            out.push_str(&format!("{}{} {}\n", name, prometheus_labels(&key.labels, &[]), value));
        }
        for (key, value) in &snap.gauges {
            let name = prometheus_name(&key.name);
            emit_header(&mut out, &name, "gauge");
            out.push_str(&format!("{}{} {}\n", name, prometheus_labels(&key.labels, &[]), value));
        }
        for (key, hist) in &snap.histograms {
            let name = prometheus_name(&key.name);
            emit_header(&mut out, &name, "histogram");
            let mut cumulative = 0u64;
            for (i, &count) in hist.counts.iter().enumerate() {
                cumulative += count;
                let le = match hist.bounds.get(i) {
                    Some(&b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    name,
                    prometheus_labels(&key.labels, &[("le", &le)]),
                    cumulative
                ));
            }
            out.push_str(&format!(
                "{}_sum{} {}\n",
                name,
                prometheus_labels(&key.labels, &[]),
                hist.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                name,
                prometheus_labels(&key.labels, &[]),
                cumulative
            ));
        }
        out
    }

    /// Renders a human-readable snapshot: counters, gauges, histogram
    /// quantiles, and the most recent events — the CLI's post-run report.
    pub fn render_human(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        out.push_str(&format!("uptime: {:.3}s\n", snap.uptime.as_secs_f64()));
        if !snap.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (key, value) in &snap.counters {
                out.push_str(&format!("  {:<58} {value}\n", key.render()));
            }
        }
        if !snap.gauges.is_empty() {
            out.push_str("\ngauges:\n");
            for (key, value) in &snap.gauges {
                out.push_str(&format!("  {:<58} {value}\n", key.render()));
            }
        }
        if !snap.histograms.is_empty() {
            out.push_str("\nhistograms (count / mean / p50 / p95 / p99):\n");
            for (key, hist) in &snap.histograms {
                out.push_str(&format!(
                    "  {:<58} {} / {:.0} / {:.0} / {:.0} / {:.0}\n",
                    key.render(),
                    hist.count(),
                    hist.mean(),
                    hist.p50(),
                    hist.p95(),
                    hist.p99()
                ));
            }
        }
        let events = self.events.recent(16);
        if !events.is_empty() {
            out.push_str("\nrecent events:\n");
            for e in events {
                out.push_str(&format!("  {}\n", e.to_line()));
            }
        }
        out
    }
}

/// A point-in-time view of a whole registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Registry uptime at snapshot time.
    pub uptime: Duration,
    /// All counters, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// All gauges, sorted by key.
    pub gauges: Vec<(MetricKey, i64)>,
    /// All histograms, sorted by key.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl Snapshot {
    /// Sum of every counter whose dotted name matches, across labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.name == name).map(|(_, v)| v).sum()
    }
}

/// Maps a dotted metric name to its Prometheus form:
/// `server.requests_total` → `kscope_server_requests_total`. Characters
/// outside `[a-zA-Z0-9_]` become underscores.
pub(crate) fn prometheus_name(dotted: &str) -> String {
    let mut name = String::with_capacity(dotted.len() + 7);
    name.push_str("kscope_");
    for ch in dotted.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            name.push(ch);
        } else {
            name.push('_');
        }
    }
    name
}

/// Renders a Prometheus label set, merging metric labels with extras
/// (e.g. `le` for histogram buckets). Escapes `\`, `"`, and newlines.
fn prometheus_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let escape = |v: &str| v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .chain(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_bucket_histograms() {
        let r = Registry::new();
        let h = r.histogram_with_buckets("server.shutdown_duration_ms", &[], &[10, 100, 1000]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 1, 0, 1]);
        // Re-registering the same key returns the same histogram (original
        // buckets kept), not a fresh one.
        let again = r.histogram_with_buckets("server.shutdown_duration_ms", &[], &[1, 2]);
        again.observe(50);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn registration_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("server.requests_total");
        let b = r.counter("server.requests_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same name returns the same counter");
        // Different labels are distinct metrics.
        let c = r.counter_with("server.requests_total", &[("route", "/x")]);
        c.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.counter_with("m", &[("a", "1"), ("b", "2")]);
        let b = r.counter_with("m", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn value_lookups() {
        let r = Registry::new();
        r.counter_with("store.inserts_total", &[("collection", "tests")]).add(3);
        r.gauge("server.workers_busy").set(2);
        assert_eq!(r.counter_value("store.inserts_total", &[("collection", "tests")]), Some(3));
        assert_eq!(r.gauge_value("server.workers_busy", &[]), Some(2));
        assert_eq!(r.counter_value("missing", &[]), None);
        assert_eq!(r.gauge_value("store.inserts_total", &[]), None, "kind mismatch is None");
    }

    #[test]
    fn snapshot_totals_across_labels() {
        let r = Registry::new();
        r.counter_with("server.requests_total", &[("route", "/a")]).add(2);
        r.counter_with("server.requests_total", &[("route", "/b")]).add(3);
        assert_eq!(r.snapshot().counter_total("server.requests_total"), 5);
    }

    #[test]
    fn prometheus_name_mapping() {
        assert_eq!(prometheus_name("server.requests_total"), "kscope_server_requests_total");
        assert_eq!(prometheus_name("core.compose_us"), "kscope_core_compose_us");
        assert_eq!(prometheus_name("weird-name"), "kscope_weird_name");
    }

    #[test]
    fn prometheus_exposition_format() {
        let r = Registry::new();
        r.counter_with("server.requests_total", &[("route", "/ping"), ("method", "GET")]).add(3);
        r.gauge("server.workers_busy").set(1);
        let h = r.histogram_with("server.latency_us", &[("route", "/ping")]);
        h.observe(15);
        h.observe(70_000_000); // overflow bucket

        let text = r.render_prometheus();
        assert!(text.contains("# TYPE kscope_uptime_seconds gauge"));
        assert!(text.contains("# TYPE kscope_server_requests_total counter"));
        assert!(text.contains("kscope_server_requests_total{method=\"GET\",route=\"/ping\"} 3"));
        assert!(text.contains("kscope_server_workers_busy 1"));
        assert!(text.contains("# TYPE kscope_server_latency_us histogram"));
        assert!(text.contains("kscope_server_latency_us_bucket{route=\"/ping\",le=\"20\"} 1"));
        assert!(text.contains("kscope_server_latency_us_bucket{route=\"/ping\",le=\"+Inf\"} 2"));
        assert!(text.contains("kscope_server_latency_us_sum{route=\"/ping\"} 70000015"));
        assert!(text.contains("kscope_server_latency_us_count{route=\"/ping\"} 2"));
        // Bucket counts are cumulative.
        let b20: u64 = extract_value(&text, "kscope_server_latency_us_bucket", "le=\"20\"");
        let b50: u64 = extract_value(&text, "kscope_server_latency_us_bucket", "le=\"50\"");
        assert!(b50 >= b20);
    }

    fn extract_value(text: &str, name: &str, label: &str) -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && l.contains(label))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("metric line present")
    }

    #[test]
    fn label_values_escaped() {
        let r = Registry::new();
        r.counter_with("m", &[("path", "a\"b\\c")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("kscope_m{path=\"a\\\"b\\\\c\"} 1"));
    }

    #[test]
    fn human_rendering_mentions_everything() {
        let r = Registry::new();
        r.counter("server.requests_total").add(7);
        r.gauge("core.campaign_sessions_done").set(4);
        r.histogram("server.latency_us").observe(1000);
        r.event(EventLevel::Warn, "server", "slow request", &[("route", "/x")]);
        let text = r.render_human();
        assert!(text.contains("server.requests_total"));
        assert!(text.contains("core.campaign_sessions_done"));
        assert!(text.contains("histograms"));
        assert!(text.contains("slow request"));
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        // The ISSUE's acceptance test: N threads × M increments, exact sum.
        let r = std::sync::Arc::new(Registry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    // Half the threads re-register the handle each time to
                    // exercise the read-lock lookup path too.
                    let c = r.counter("concurrency.test_total");
                    for i in 0..PER_THREAD {
                        if i % 2 == 0 {
                            c.inc();
                        } else {
                            r.counter("concurrency.test_total").inc();
                        }
                    }
                });
            }
        });
        assert_eq!(
            r.counter_value("concurrency.test_total", &[]),
            Some(THREADS as u64 * PER_THREAD)
        );
    }

    #[test]
    fn concurrent_histogram_observations_sum_exactly() {
        let r = std::sync::Arc::new(Registry::new());
        let h = r.histogram("concurrency.latency_us");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        h.observe(i % 100);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        let expected_sum: u64 = 8 * (0..5_000u64).map(|i| i % 100).sum::<u64>();
        assert_eq!(h.sum(), expected_sum);
    }
}
