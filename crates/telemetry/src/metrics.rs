//! Lock-free metric primitives: counters, gauges, and fixed-bucket
//! histograms with RAII scoped timers.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing counter.
///
/// Cloning is cheap (an `Arc` bump) and all clones share the same value;
/// updates are single relaxed atomic adds — no locks, ever.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, busy workers,
/// campaign progress). Same sharing and ordering story as [`Counter`].
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Raises the gauge to `v` if `v` is larger than the current value —
    /// a lock-free high-water mark (e.g. the deepest ready queue a
    /// reactor shard has ever drained in one poll).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default histogram buckets: a 1-2-5 series in microseconds from 1 µs to
/// 60 s — wide enough for handler latencies and aggregator compose times
/// alike.
pub const DEFAULT_LATENCY_BUCKETS_US: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (inclusive) of each finite bucket, strictly increasing.
    bounds: Vec<u64>,
    /// One count per finite bucket plus a final overflow (+inf) bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations (conventionally
/// microseconds for latency metrics, but any unit works).
///
/// `observe` is a binary search over immutable bounds plus two relaxed
/// atomic adds — no locks on the hot path. Cloning shares the buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A histogram over [`DEFAULT_LATENCY_BUCKETS_US`].
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_LATENCY_BUCKETS_US)
    }

    /// A histogram over the given strictly-increasing upper bounds. An
    /// overflow (+inf) bucket is always appended.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_buckets(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        // partition_point returns the first bound >= value's bucket:
        // bucket i holds values <= bounds[i]; the final slot is +inf.
        let idx = self.inner.bounds.partition_point(|&b| b < value);
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn observe_duration(&self, elapsed: std::time::Duration) {
        self.observe(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Starts an RAII timer that observes the elapsed microseconds into
    /// this histogram when dropped.
    pub fn start_timer(&self) -> ScopedTimer {
        ScopedTimer { histogram: self.clone(), start: Instant::now(), observed: false }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot (counts are read bucket-by-bucket without
    /// stopping writers, so a snapshot taken under concurrent load is
    /// approximate to within the in-flight observations).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> =
            self.inner.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        HistogramSnapshot { bounds: self.inner.bounds.clone(), counts, sum: self.sum() }
    }
}

/// RAII timer returned by [`Histogram::start_timer`].
#[derive(Debug)]
pub struct ScopedTimer {
    histogram: Histogram,
    start: Instant,
    observed: bool,
}

impl ScopedTimer {
    /// Stops the timer early, observing the elapsed time now instead of at
    /// drop. Returns the elapsed duration.
    pub fn stop(mut self) -> std::time::Duration {
        let elapsed = self.start.elapsed();
        self.histogram.observe_duration(elapsed);
        self.observed = true;
        elapsed
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if !self.observed {
            self.histogram.observe_duration(self.start.elapsed());
        }
    }
}

/// An immutable view of a histogram's buckets, for quantile estimation and
/// exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one entry longer than `bounds` (the +inf bucket).
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket containing the target rank — the same estimator
    /// Prometheus's `histogram_quantile` uses. Observations in the
    /// overflow bucket clamp to the largest finite bound. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * total as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cumulative + c;
            if (next as f64) >= target && c > 0 {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(&b) => b,
                    // +inf bucket: clamp to the largest finite bound.
                    None => return *self.bounds.last().expect("non-empty bounds") as f64,
                };
                let into = (target - cumulative as f64) / c as f64;
                return lower as f64 + (upper - lower) as f64 * into.clamp(0.0, 1.0);
            }
            cumulative = next;
        }
        *self.bounds.last().expect("non-empty bounds") as f64
    }

    /// The median (p50).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6, "clones share the value");
    }

    #[test]
    fn gauge_up_and_down() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
        g.add(10);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = Gauge::new();
        g.set_max(5);
        assert_eq!(g.get(), 5);
        g.set_max(3);
        assert_eq!(g.get(), 5, "lower values must not pull the mark down");
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::with_buckets(&[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        // <=10: {5, 10}; <=100: {11, 100}; <=1000: {}; +inf: {5000}.
        assert_eq!(snap.counts, vec![2, 2, 0, 1]);
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.sum, 5126);
    }

    #[test]
    fn quantiles_exact_on_linear_buckets() {
        // 1000 unit-wide buckets and one observation per bucket make the
        // interpolation exact: the q-quantile of 1..=1000 is 1000q.
        let bounds: Vec<u64> = (1..=1000).collect();
        let h = Histogram::with_buckets(&bounds);
        for v in 1..=1000 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 500.0);
        assert_eq!(snap.p95(), 950.0);
        assert_eq!(snap.p99(), 990.0);
        assert_eq!(snap.quantile(1.0), 1000.0);
        assert_eq!(snap.mean(), 500.5);
    }

    #[test]
    fn quantile_brackets_reference_computation() {
        // Against a reference nearest-rank quantile on the raw data, the
        // bucketed estimate must land within the bucket containing the
        // true value.
        let h = Histogram::new();
        let mut raw: Vec<u64> = Vec::new();
        let mut x = 3u64;
        for i in 0..2000 {
            // Deterministic spread over several orders of magnitude.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = 1 + (x % 1_000_000) / (1 + i % 17);
            raw.push(v);
            h.observe(v);
        }
        raw.sort_unstable();
        let snap = h.snapshot();
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * raw.len() as f64).ceil() as usize).clamp(1, raw.len());
            let reference = raw[rank - 1];
            let bucket_upper = DEFAULT_LATENCY_BUCKETS_US
                .iter()
                .copied()
                .find(|&b| b >= reference)
                .unwrap_or(u64::MAX);
            let bucket_lower = DEFAULT_LATENCY_BUCKETS_US
                .iter()
                .copied()
                .rev()
                .find(|&b| b < reference)
                .unwrap_or(0);
            let est = snap.quantile(q);
            assert!(
                est >= bucket_lower as f64 && est <= bucket_upper as f64,
                "q={q}: estimate {est} outside bucket [{bucket_lower}, {bucket_upper}] \
                 around reference {reference}"
            );
        }
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0.0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn overflow_bucket_clamps_to_last_bound() {
        let h = Histogram::with_buckets(&[10, 20]);
        h.observe(1_000_000);
        assert_eq!(h.snapshot().quantile(0.99), 20.0);
    }

    #[test]
    fn scoped_timer_observes_on_drop() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
        let t = h.start_timer();
        t.stop();
        assert_eq!(h.count(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::with_buckets(&[10, 5]);
    }
}
