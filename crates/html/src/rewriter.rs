//! Streaming single-pass HTML rewrite.
//!
//! The aggregation hot path used to parse every page into a DOM and
//! serialize it back even when only a handful of tags changed — every
//! byte of text was copied into node `String`s, entity-decoded, then
//! re-escaped on the way out. This module replaces that round trip for
//! the inliner: the tokenizer drives a rewriter that copies unmodified
//! input spans verbatim (byte-slice passthrough, no re-escape of
//! untouched text) and only materializes replacement fragments — in a
//! reusable arena — for the tags a visitor actually rewrites.
//!
//! Invariants:
//!
//! - **Span passthrough.** [`tokenize_spans`] yields monotonically
//!   increasing, non-overlapping byte ranges. The rewriter tracks the
//!   end of the last byte it emitted; for every replaced tag it copies
//!   `input[copied..span.start]` (all untouched tokens *and* the gap
//!   bytes the tokenizer consumed without emitting a token) in one bulk
//!   `push_str`, then renders the replacement. A visitor that keeps
//!   every tag therefore reproduces the input byte-for-byte.
//! - **Arena lifetime.** Replacement fragments never allocate per node:
//!   all names, attribute strings and bodies are bump-appended into one
//!   shared `String`, attributes into one shared `Vec`, nodes into one
//!   shared `Vec`, all owned by the [`Arena`] that lives for the whole
//!   rewrite and is reset (length zeroed, capacity kept) before each
//!   visited tag. Fragment nodes refer to the arena by byte span, so a
//!   fragment is plain old data and rendering is bulk copies.
//! - **Serializer conventions.** Rendered replacement tags follow the
//!   same rules as [`crate::serialize`]: lowercased names (the
//!   tokenizer already lowercased them), double-quoted attribute values
//!   escaped with [`escape_attr_into`], bare attribute names for empty
//!   values, and `/>` preserved for tags that were self-closing in the
//!   source so a later re-parse sees the same leaf structure.

use crate::tokenizer::{escape_attr_into, escape_text_into, tokenize_spans, Token};

type Span = std::ops::Range<usize>;

/// Visitor decision for one start tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Emit the tag exactly as it appeared in the input (byte passthrough).
    Keep,
    /// Emit the fragment the visitor built instead of the source tag.
    Replace,
}

/// Borrowed view of a start tag offered to the rewrite visitor.
#[derive(Debug)]
pub struct StartTag<'t> {
    /// Lowercased tag name.
    pub name: &'t str,
    /// Attributes in document order; values entity-decoded, first wins.
    pub attrs: &'t [(String, String)],
    /// Whether the source tag ended with `/>`.
    pub self_closing: bool,
}

impl StartTag<'_> {
    /// Returns the value of attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// One node of a replacement fragment. Spans index [`Arena::text`];
/// `Open::attrs` indexes [`Arena::attrs`].
#[derive(Debug)]
enum FragNode {
    /// `<name attrs…>` — an open tag only; anything after it in the source
    /// stream (children, end tag) is untouched passthrough.
    Open { name: Span, attrs: Span, self_closing: bool },
    /// `</name>`.
    Close { name: Span },
    /// Character data, entity-escaped on render.
    Text { text: Span },
    /// Bytes emitted verbatim (raw-text bodies: script/style).
    Raw { text: Span },
}

/// Bump arena backing replacement fragments. One per rewrite; reset
/// (capacity retained) before each visited tag.
#[derive(Debug, Default)]
pub struct Arena {
    text: String,
    attrs: Vec<(Span, Span)>,
    nodes: Vec<FragNode>,
}

impl Arena {
    fn reset(&mut self) {
        self.text.clear();
        self.attrs.clear();
        self.nodes.clear();
    }

    fn intern(&mut self, s: &str) -> Span {
        let start = self.text.len();
        self.text.push_str(s);
        start..self.text.len()
    }
}

/// Builder handed to the visitor for assembling a replacement fragment.
#[derive(Debug)]
pub struct Fragment<'a> {
    arena: &'a mut Arena,
}

impl Fragment<'_> {
    /// Appends an open tag (no children, no end tag). Add attributes via
    /// the returned [`TagBuilder`], then drop it.
    pub fn open_tag<'b>(&'b mut self, name: &str, self_closing: bool) -> TagBuilder<'b> {
        let name = self.arena.intern(name);
        let at = self.arena.attrs.len();
        self.arena.nodes.push(FragNode::Open { name, attrs: at..at, self_closing });
        let node = self.arena.nodes.len() - 1;
        TagBuilder { arena: self.arena, node }
    }

    /// Appends a closing tag `</name>`.
    pub fn close_tag(&mut self, name: &str) {
        let name = self.arena.intern(name);
        self.arena.nodes.push(FragNode::Close { name });
    }

    /// Appends character data (entity-escaped on render).
    pub fn text(&mut self, text: &str) {
        let text = self.arena.intern(text);
        self.arena.nodes.push(FragNode::Text { text });
    }

    /// Appends bytes verbatim (for raw-text bodies: script/style).
    pub fn raw(&mut self, text: &str) {
        let text = self.arena.intern(text);
        self.arena.nodes.push(FragNode::Raw { text });
    }

    /// Convenience: `<name>body</name>` with a verbatim (raw-text) body.
    pub fn raw_text_element(&mut self, name: &str, body: &str) {
        self.open_tag(name, false);
        self.raw(body);
        self.close_tag(name);
    }
}

/// Appends attributes to the open tag it was created from. Holding the
/// builder mutably borrows the fragment, so the attribute run stays
/// contiguous in the arena.
#[derive(Debug)]
pub struct TagBuilder<'b> {
    arena: &'b mut Arena,
    node: usize,
}

impl TagBuilder<'_> {
    /// Appends one attribute. An empty value renders as a bare name,
    /// matching the serializer (`<input disabled>`).
    pub fn attr(&mut self, name: &str, value: &str) -> &mut Self {
        let n = self.arena.intern(name);
        let v = self.arena.intern(value);
        self.arena.attrs.push((n, v));
        let end = self.arena.attrs.len();
        if let FragNode::Open { attrs, .. } = &mut self.arena.nodes[self.node] {
            attrs.end = end;
        }
        self
    }
}

fn render(arena: &Arena, out: &mut String) {
    for node in &arena.nodes {
        match node {
            FragNode::Open { name, attrs, self_closing } => {
                out.push('<');
                out.push_str(&arena.text[name.clone()]);
                for (n, v) in &arena.attrs[attrs.clone()] {
                    out.push(' ');
                    out.push_str(&arena.text[n.clone()]);
                    if !v.is_empty() {
                        out.push_str("=\"");
                        escape_attr_into(&arena.text[v.clone()], out);
                        out.push('"');
                    }
                }
                out.push_str(if *self_closing { "/>" } else { ">" });
            }
            FragNode::Close { name } => {
                out.push_str("</");
                out.push_str(&arena.text[name.clone()]);
                out.push('>');
            }
            FragNode::Text { text } => escape_text_into(&arena.text[text.clone()], out),
            FragNode::Raw { text } => out.push_str(&arena.text[text.clone()]),
        }
    }
}

/// Rewrites `input` in a single streaming pass.
///
/// The visitor sees every start tag in document order and either keeps it
/// (source bytes pass through untouched) or replaces it with a fragment it
/// builds into the shared arena. Everything that is not a replaced start
/// tag — text, comments, doctypes, end tags, whitespace oddities,
/// malformed markup — is copied from the input verbatim, in maximal runs.
///
/// Note the granularity: only the start tag's own bytes are replaced. An
/// element's children and end tag remain in the stream, so a replacement
/// that changes structure (e.g. folding `<link>` into `<style>…</style>`)
/// must emit complete markup for the subtree it introduces.
pub fn rewrite_start_tags<F>(input: &str, mut visit: F) -> String
where
    F: FnMut(&StartTag<'_>, &mut Fragment<'_>) -> Action,
{
    let tokens = tokenize_spans(input);
    let mut out = String::with_capacity(input.len() + input.len() / 8);
    let mut arena = Arena::default();
    let mut copied = 0usize;
    for (token, span) in &tokens {
        let Token::StartTag { name, attrs, self_closing } = token else { continue };
        arena.reset();
        let tag = StartTag { name, attrs, self_closing: *self_closing };
        let mut frag = Fragment { arena: &mut arena };
        if visit(&tag, &mut frag) == Action::Replace {
            out.push_str(&input[copied..span.start]);
            render(&arena, &mut out);
            copied = span.end;
        }
    }
    out.push_str(&input[copied..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_everything_is_byte_identical() {
        // Unquoted attrs, entities, raw text, comments, bogus markup, a
        // lone '<', multibyte text, duplicate attributes: none of it may
        // be normalized when the visitor keeps every tag.
        let src = "<!DOCTYPE html><DIV Class=a class='b'  data-x  >1 < 2 &amp; &bogus;\
                   <script>if (a<b) {}</script><style>p>a{}</style>\
                   <!-- note --><img src=x.png/>岩狸</div >tail";
        let out = rewrite_start_tags(src, |_, _| Action::Keep);
        assert_eq!(out, src);
    }

    #[test]
    fn replace_rewrites_only_the_tag_bytes() {
        let src = "<p>before</p><img  src='a.png'  alt=\"x &amp; y\">after";
        let out = rewrite_start_tags(src, |tag, frag| {
            if tag.name != "img" {
                return Action::Keep;
            }
            let mut t = frag.open_tag("img", tag.self_closing);
            for (k, v) in tag.attrs {
                t.attr(k, if k == "src" { "data:x" } else { v });
            }
            Action::Replace
        });
        assert_eq!(out, r#"<p>before</p><img src="data:x" alt="x &amp; y">after"#);
    }

    #[test]
    fn replace_preserves_self_closing_slash() {
        let out = rewrite_start_tags(r#"<img src="a"/>"#, |tag, frag| {
            let mut t = frag.open_tag(tag.name, tag.self_closing);
            t.attr("src", "b");
            Action::Replace
        });
        assert_eq!(out, r#"<img src="b"/>"#);
    }

    #[test]
    fn raw_text_element_body_is_not_escaped() {
        let src = r#"<link rel=stylesheet href="m.css"><p>x</p>"#;
        let out = rewrite_start_tags(src, |tag, frag| {
            if tag.name == "link" {
                frag.raw_text_element("style", "p > a { color: red } /* & */");
                Action::Replace
            } else {
                Action::Keep
            }
        });
        assert_eq!(out, "<style>p > a { color: red } /* & */</style><p>x</p>");
    }

    #[test]
    fn script_start_tag_swap_keeps_source_end_tag() {
        let src = r#"pre<script src="app.js" defer></script>post"#;
        let out = rewrite_start_tags(src, |tag, frag| {
            if tag.name != "script" {
                return Action::Keep;
            }
            {
                let mut t = frag.open_tag("script", false);
                for (k, v) in tag.attrs {
                    if k != "src" {
                        t.attr(k, v);
                    }
                }
            }
            frag.raw("x();");
            Action::Replace
        });
        assert_eq!(out, "pre<script defer>x();</script>post");
    }

    #[test]
    fn empty_attr_value_renders_bare() {
        let out = rewrite_start_tags("<input type=checkbox checked>", |tag, frag| {
            let mut t = frag.open_tag(tag.name, false);
            for (k, v) in tag.attrs {
                t.attr(k, v);
            }
            Action::Replace
        });
        assert_eq!(out, r#"<input type="checkbox" checked>"#);
    }

    #[test]
    fn attr_values_escape_quotes_on_render() {
        let out = rewrite_start_tags("<p>", |_, frag| {
            let mut t = frag.open_tag("p", false);
            t.attr("title", r#"say "hi" & go"#);
            Action::Replace
        });
        assert_eq!(out, r#"<p title="say &quot;hi&quot; &amp; go">"#);
    }

    #[test]
    fn multiple_replacements_interleave_with_passthrough() {
        let src = "<a href=1>one</a><a href=2>two</a><a href=3>three</a>";
        let mut n = 0;
        let out = rewrite_start_tags(src, |tag, frag| {
            n += 1;
            if n == 2 {
                let mut t = frag.open_tag(tag.name, false);
                t.attr("href", "swapped");
                Action::Replace
            } else {
                Action::Keep
            }
        });
        assert_eq!(out, r#"<a href=1>one</a><a href="swapped">two</a><a href=3>three</a>"#);
    }

    #[test]
    fn arena_is_reused_across_tags() {
        // Behavioural proxy: many replacements in one pass must not
        // interfere with each other even though they share one arena.
        let src: String = (0..50).map(|i| format!("<i id={i}>")).collect();
        let out = rewrite_start_tags(&src, |tag, frag| {
            let mut t = frag.open_tag("b", false);
            t.attr("id", tag.attr("id").unwrap_or(""));
            Action::Replace
        });
        let want: String = (0..50).map(|i| format!(r#"<b id="{i}">"#)).collect();
        assert_eq!(out, want);
    }
}
