//! Arena-based DOM tree.
//!
//! Nodes live in a flat `Vec` inside [`Document`] and are addressed by
//! [`NodeId`]; this keeps the tree cheap to clone and free of interior
//! mutability, which matters because the aggregator clones a parsed page
//! once per variant.

use crate::selector::Selector;

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The arena index as a plain `usize` (useful as a map key).
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a `NodeId` from an arena index, e.g. when reading back
    /// an injected reveal plan that stores node indices in JSON. The caller
    /// is responsible for pairing it with the right [`Document`].
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }
}

/// The payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic root of the document.
    Document,
    /// A `<!DOCTYPE ...>` node (raw contents after `<!`).
    Doctype(String),
    /// An element with a tag name and attributes.
    Element(ElementData),
    /// Character data.
    Text(String),
    /// An HTML comment.
    Comment(String),
}

/// Tag name and attributes of an element node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementData {
    /// Lowercased tag name.
    pub name: String,
    attrs: Vec<(String, String)>,
}

impl ElementData {
    /// Creates element data with the given (lowercased) tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into().to_ascii_lowercase(), attrs: Vec::new() }
    }

    /// Creates element data with attributes.
    pub fn with_attrs(name: impl Into<String>, attrs: Vec<(String, String)>) -> Self {
        Self { name: name.into().to_ascii_lowercase(), attrs }
    }

    /// Attribute value by (case-insensitive) name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, name: &str, value: &str) {
        let name_lc = name.to_ascii_lowercase();
        match self.attrs.iter_mut().find(|(n, _)| *n == name_lc) {
            Some(slot) => slot.1 = value.to_string(),
            None => self.attrs.push((name_lc, value.to_string())),
        }
    }

    /// Removes an attribute, returning its previous value.
    pub fn remove_attr(&mut self, name: &str) -> Option<String> {
        let name_lc = name.to_ascii_lowercase();
        let idx = self.attrs.iter().position(|(n, _)| *n == name_lc)?;
        Some(self.attrs.remove(idx).1)
    }

    /// The element's `id` attribute.
    pub fn id(&self) -> Option<&str> {
        self.attr("id")
    }

    /// Whether `class` contains the given class name.
    pub fn has_class(&self, class: &str) -> bool {
        self.attr("class").map(|c| c.split_ascii_whitespace().any(|p| p == class)).unwrap_or(false)
    }
}

/// One node of the tree: payload plus links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node payload.
    pub kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
}

/// An HTML document: an arena of [`Node`]s under a synthetic root.
///
/// Removal is tombstone-based (detached nodes stay in the arena but are
/// unreachable), so `NodeId`s remain stable across mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Creates an empty document (just the root node).
    pub fn new() -> Self {
        Self { nodes: vec![Node { kind: NodeKind::Document, parent: None, children: Vec::new() }] }
    }

    /// The synthetic root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total nodes ever allocated (including detached ones).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Element data of a node, if it is an element.
    pub fn element(&self, id: NodeId) -> Option<&ElementData> {
        match &self.node(id).kind {
            NodeKind::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Mutable element data of a node, if it is an element.
    pub fn element_mut(&mut self, id: NodeId) -> Option<&mut ElementData> {
        match &mut self.node_mut(id).kind {
            NodeKind::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Parent of a node (None for the root or detached nodes).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Children of a node in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Allocates a new element node (detached until appended).
    pub fn create_element(&mut self, name: &str) -> NodeId {
        self.push_node(NodeKind::Element(ElementData::new(name)))
    }

    /// Allocates a new element with attributes (detached until appended).
    pub fn create_element_with_attrs(
        &mut self,
        name: &str,
        attrs: Vec<(String, String)>,
    ) -> NodeId {
        self.push_node(NodeKind::Element(ElementData::with_attrs(name, attrs)))
    }

    /// Allocates a new text node (detached until appended).
    pub fn create_text(&mut self, text: &str) -> NodeId {
        self.push_node(NodeKind::Text(text.to_string()))
    }

    /// Allocates a new comment node (detached until appended).
    pub fn create_comment(&mut self, text: &str) -> NodeId {
        self.push_node(NodeKind::Comment(text.to_string()))
    }

    /// Allocates a doctype node (detached until appended).
    pub fn create_doctype(&mut self, text: &str) -> NodeId {
        self.push_node(NodeKind::Doctype(text.to_string()))
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { kind, parent: None, children: Vec::new() });
        id
    }

    /// Appends `child` as the last child of `parent`, detaching it from any
    /// previous parent.
    ///
    /// # Panics
    ///
    /// Panics if the move would create a cycle (`child` is an ancestor of
    /// `parent`) or if `child` is the root.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert_ne!(child, self.root(), "cannot re-parent the root");
        assert!(!self.is_ancestor(child, parent), "append would create a cycle");
        self.detach(child);
        self.node_mut(parent).children.push(child);
        self.node_mut(child).parent = Some(parent);
    }

    /// Inserts `child` before `sibling` under the sibling's parent.
    ///
    /// # Panics
    ///
    /// Panics if `sibling` has no parent or the move would create a cycle.
    pub fn insert_before(&mut self, sibling: NodeId, child: NodeId) {
        let parent = self.parent(sibling).expect("sibling must have a parent");
        assert!(!self.is_ancestor(child, parent), "insert would create a cycle");
        self.detach(child);
        let idx = self
            .node(parent)
            .children
            .iter()
            .position(|&c| c == sibling)
            .expect("sibling is a child of its parent");
        self.node_mut(parent).children.insert(idx, child);
        self.node_mut(child).parent = Some(parent);
    }

    /// Detaches a node from its parent (the node and its subtree remain
    /// valid but unreachable from the root).
    pub fn detach(&mut self, id: NodeId) {
        if let Some(p) = self.node(id).parent {
            self.node_mut(p).children.retain(|&c| c != id);
            self.node_mut(id).parent = None;
        }
    }

    /// Whether `anc` is `node` or one of its ancestors.
    pub fn is_ancestor(&self, anc: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(id) = cur {
            if id == anc {
                return true;
            }
            cur = self.parent(id);
        }
        false
    }

    /// Pre-order traversal of the subtree rooted at `id` (inclusive).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants { doc: self, stack: vec![id] }
    }

    /// All element node ids in document order.
    pub fn elements(&self) -> Vec<NodeId> {
        self.descendants(self.root())
            .filter(|&id| matches!(self.node(id).kind, NodeKind::Element(_)))
            .collect()
    }

    /// First element with the given tag name, in document order.
    pub fn find_tag(&self, name: &str) -> Option<NodeId> {
        self.descendants(self.root())
            .find(|&id| matches!(&self.node(id).kind, NodeKind::Element(e) if e.name == name))
    }

    /// Element with the given `id` attribute.
    pub fn get_element_by_id(&self, dom_id: &str) -> Option<NodeId> {
        self.descendants(self.root()).find(
            |&id| matches!(&self.node(id).kind, NodeKind::Element(e) if e.id() == Some(dom_id)),
        )
    }

    /// All elements matching a selector, in document order.
    pub fn select(&self, selector: &Selector) -> Vec<NodeId> {
        self.elements().into_iter().filter(|&id| selector.matches(self, id)).collect()
    }

    /// First element matching a selector.
    pub fn select_first(&self, selector: &Selector) -> Option<NodeId> {
        self.elements().into_iter().find(|&id| selector.matches(self, id))
    }

    /// Concatenated text of the subtree rooted at `id` (raw, no whitespace
    /// normalization).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let NodeKind::Text(t) = &self.node(n).kind {
                out.push_str(t);
            }
        }
        out
    }

    /// Attribute shortcut: value of `name` on element `id`.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.element(id).and_then(|e| e.attr(name))
    }

    /// Attribute shortcut: sets `name=value` on element `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an element.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        self.element_mut(id).expect("set_attr target must be an element").set_attr(name, value);
    }

    /// Reads a property out of the element's inline `style` attribute.
    pub fn style_property(&self, id: NodeId, prop: &str) -> Option<String> {
        let style = self.attr(id, "style")?;
        for decl in style.split(';') {
            let mut parts = decl.splitn(2, ':');
            let name = parts.next()?.trim();
            if name.eq_ignore_ascii_case(prop) {
                return parts.next().map(|v| v.trim().to_string());
            }
        }
        None
    }

    /// Sets (or replaces) a property in the element's inline `style`
    /// attribute, preserving other declarations.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an element.
    pub fn set_style_property(&mut self, id: NodeId, prop: &str, value: &str) {
        let existing = self.attr(id, "style").unwrap_or("").to_string();
        let mut decls: Vec<String> = existing
            .split(';')
            .map(str::trim)
            .filter(|d| !d.is_empty())
            .filter(|d| {
                d.split(':').next().map(|n| !n.trim().eq_ignore_ascii_case(prop)).unwrap_or(true)
            })
            .map(str::to_string)
            .collect();
        decls.push(format!("{prop}: {value}"));
        let style = decls.join("; ");
        self.set_attr(id, "style", &style);
    }

    /// Number of nodes reachable from the root.
    pub fn reachable_len(&self) -> usize {
        self.descendants(self.root()).count()
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

/// Pre-order iterator over a subtree; see [`Document::descendants`].
#[derive(Debug)]
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = &self.doc.node(id).children;
        self.stack.extend(children.iter().rev().copied());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let body = d.create_element("body");
        let div = d.create_element("div");
        let p = d.create_element("p");
        let txt = d.create_text("hi");
        let root = d.root();
        d.append_child(root, body);
        d.append_child(body, div);
        d.append_child(div, p);
        d.append_child(p, txt);
        (d, body, div, p)
    }

    #[test]
    fn build_and_traverse() {
        let (d, body, div, p) = tree();
        assert_eq!(d.parent(div), Some(body));
        assert_eq!(d.children(div), &[p]);
        assert_eq!(d.text_content(body), "hi");
        // root, body, div, p, text
        assert_eq!(d.reachable_len(), 5);
    }

    #[test]
    fn descendants_preorder() {
        let (d, body, div, p) = tree();
        let order: Vec<NodeId> = d.descendants(d.root()).collect();
        assert_eq!(&order[..4], &[d.root(), body, div, p]);
    }

    #[test]
    fn detach_subtree() {
        let (mut d, body, div, _) = tree();
        d.detach(div);
        assert_eq!(d.children(body), &[] as &[NodeId]);
        assert_eq!(d.parent(div), None);
        assert_eq!(d.text_content(body), "");
        // The detached subtree still exists in the arena.
        assert_eq!(d.text_content(div), "hi");
    }

    #[test]
    fn insert_before_orders_siblings() {
        let (mut d, body, div, _) = tree();
        let header = d.create_element("header");
        d.insert_before(div, header);
        assert_eq!(d.children(body), &[header, div]);
    }

    #[test]
    fn append_reparents() {
        let (mut d, body, div, p) = tree();
        d.append_child(body, p); // move p from div to body
        assert_eq!(d.children(div), &[] as &[NodeId]);
        assert_eq!(d.children(body), &[div, p]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn append_rejects_cycles() {
        let (mut d, _, div, p) = tree();
        d.append_child(p, div);
    }

    #[test]
    fn attrs_case_insensitive() {
        let mut e = ElementData::new("DIV");
        assert_eq!(e.name, "div");
        e.set_attr("ID", "main");
        assert_eq!(e.attr("id"), Some("main"));
        assert_eq!(e.attr("Id"), Some("main"));
        assert_eq!(e.remove_attr("iD"), Some("main".to_string()));
        assert_eq!(e.attr("id"), None);
    }

    #[test]
    fn has_class_splits_whitespace() {
        let mut e = ElementData::new("div");
        e.set_attr("class", "a  b\tc");
        assert!(e.has_class("a"));
        assert!(e.has_class("b"));
        assert!(e.has_class("c"));
        assert!(!e.has_class("d"));
        assert!(!e.has_class("ab"));
    }

    #[test]
    fn get_element_by_id() {
        let (mut d, _, div, _) = tree();
        d.set_attr(div, "id", "content");
        assert_eq!(d.get_element_by_id("content"), Some(div));
        assert_eq!(d.get_element_by_id("nope"), None);
    }

    #[test]
    fn style_property_roundtrip() {
        let (mut d, _, div, _) = tree();
        d.set_style_property(div, "font-size", "12pt");
        d.set_style_property(div, "color", "red");
        assert_eq!(d.style_property(div, "font-size").as_deref(), Some("12pt"));
        assert_eq!(d.style_property(div, "color").as_deref(), Some("red"));
        // Replacement keeps the other property.
        d.set_style_property(div, "font-size", "18pt");
        assert_eq!(d.style_property(div, "font-size").as_deref(), Some("18pt"));
        assert_eq!(d.style_property(div, "color").as_deref(), Some("red"));
    }

    #[test]
    fn style_property_parses_existing_attribute() {
        let (mut d, _, div, _) = tree();
        d.set_attr(div, "style", "display:none; margin: 0 auto");
        assert_eq!(d.style_property(div, "display").as_deref(), Some("none"));
        assert_eq!(d.style_property(div, "margin").as_deref(), Some("0 auto"));
        assert_eq!(d.style_property(div, "padding"), None);
    }

    #[test]
    fn find_tag_document_order() {
        let (d, body, _, _) = tree();
        assert_eq!(d.find_tag("body"), Some(body));
        assert_eq!(d.find_tag("table"), None);
    }
}
