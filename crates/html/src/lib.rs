//! HTML substrate for the Kaleidoscope reproduction: tokenizer, arena DOM,
//! forgiving parser, CSS selector engine, and serializer.
//!
//! The paper's aggregator rewrites saved webpages (font-size variants,
//! reveal-script injection, iframe composition) and its browser extension
//! schedules DOM visibility by CSS locator (`"#main": 1000`). Both need a
//! real DOM with selector support; this crate provides one, built from
//! scratch.
//!
//! # Example
//!
//! ```
//! use kscope_html::{parse_document, Selector};
//!
//! let mut doc = parse_document("<div id=main><p class=lead>Hello</p></div>");
//! let sel: Selector = "#main > p.lead".parse()?;
//! let hits = doc.select(&sel);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(doc.text_content(hits[0]), "Hello");
//!
//! doc.set_attr(hits[0], "style", "font-size: 14pt");
//! assert!(doc.to_html().contains("font-size: 14pt"));
//! # Ok::<(), kscope_html::SelectorParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod parser;
pub mod rewriter;
pub mod selector;
pub mod serialize;
pub mod style;
pub mod tokenizer;

pub use dom::{Document, ElementData, Node, NodeId, NodeKind};
pub use parser::parse_document;
pub use rewriter::{rewrite_start_tags, Action, Fragment, StartTag};
pub use selector::{Selector, SelectorParseError};
pub use style::{computed_property, document_stylesheets, Stylesheet};
pub use tokenizer::{tokenize, tokenize_spans, Token};

/// Elements that never have children or end tags (HTML void elements).
pub(crate) const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Elements whose content is raw text (no nested markup).
pub(crate) const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style"];

pub(crate) fn is_void(name: &str) -> bool {
    VOID_ELEMENTS.contains(&name)
}

pub(crate) fn is_raw_text(name: &str) -> bool {
    RAW_TEXT_ELEMENTS.contains(&name)
}
