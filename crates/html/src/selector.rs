//! CSS selector parsing and matching.
//!
//! Supports the selector grammar Kaleidoscope's page-load locators and
//! aggregator rewrites use: type/`*`, `#id`, `.class`, `[attr]`,
//! `[attr=v]`, `[attr^=v]`, `[attr$=v]`, `[attr*=v]`, `[attr~=v]`,
//! compound selectors, descendant and child (`>`) combinators, and
//! comma-separated selector lists.

use crate::dom::{Document, NodeId};
use std::fmt;
use std::str::FromStr;

/// Error produced when a selector string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorParseError {
    message: String,
}

impl SelectorParseError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for SelectorParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid selector: {}", self.message)
    }
}

impl std::error::Error for SelectorParseError {}

/// Attribute match operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttrOp {
    /// `[attr=v]`
    Equals,
    /// `[attr*=v]`
    Contains,
    /// `[attr^=v]`
    StartsWith,
    /// `[attr$=v]`
    EndsWith,
    /// `[attr~=v]` — whitespace-separated word match.
    Word,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct AttrSelector {
    name: String,
    op: Option<(AttrOp, String)>,
}

/// One compound selector: everything between combinators.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Compound {
    tag: Option<String>,
    id: Option<String>,
    classes: Vec<String>,
    attrs: Vec<AttrSelector>,
    /// `:nth-child(n)` — 1-based position among element siblings.
    nth_child: Option<usize>,
}

impl Compound {
    fn is_empty(&self) -> bool {
        self.tag.is_none()
            && self.id.is_none()
            && self.classes.is_empty()
            && self.attrs.is_empty()
            && self.nth_child.is_none()
    }

    fn matches(&self, doc: &Document, id: NodeId) -> bool {
        let el = match doc.element(id) {
            Some(e) => e,
            None => return false,
        };
        if let Some(tag) = &self.tag {
            if tag != "*" && el.name != *tag {
                return false;
            }
        }
        if let Some(want) = &self.id {
            if el.id() != Some(want.as_str()) {
                return false;
            }
        }
        for class in &self.classes {
            if !el.has_class(class) {
                return false;
            }
        }
        if let Some(n) = self.nth_child {
            let position = doc
                .parent(id)
                .map(|p| {
                    doc.children(p)
                        .iter()
                        .filter(|&&c| doc.element(c).is_some())
                        .position(|&c| c == id)
                        .map(|i| i + 1)
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            if position != n {
                return false;
            }
        }
        for a in &self.attrs {
            let value = el.attr(&a.name);
            match (&a.op, value) {
                (None, Some(_)) => {}
                (None, None) => return false,
                (Some(_), None) => return false,
                (Some((op, want)), Some(v)) => {
                    let ok = match op {
                        AttrOp::Equals => v == want,
                        AttrOp::Contains => v.contains(want.as_str()),
                        AttrOp::StartsWith => v.starts_with(want.as_str()),
                        AttrOp::EndsWith => v.ends_with(want.as_str()),
                        AttrOp::Word => v.split_ascii_whitespace().any(|w| w == want),
                    };
                    if !ok {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// How a compound relates to the one on its right.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Combinator {
    Descendant,
    Child,
}

/// A single complex selector (no commas).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Complex {
    /// Compounds left-to-right; `combinators[i]` sits between
    /// `compounds[i]` and `compounds[i+1]`.
    compounds: Vec<Compound>,
    combinators: Vec<Combinator>,
}

impl Complex {
    /// Right-to-left matching against ancestors.
    fn matches(&self, doc: &Document, id: NodeId) -> bool {
        let last = self.compounds.len() - 1;
        if !self.compounds[last].matches(doc, id) {
            return false;
        }
        self.match_prefix(doc, id, last)
    }

    fn match_prefix(&self, doc: &Document, id: NodeId, idx: usize) -> bool {
        if idx == 0 {
            return true;
        }
        let comb = self.combinators[idx - 1];
        let target = &self.compounds[idx - 1];
        match comb {
            Combinator::Child => match doc.parent(id) {
                Some(p) => target.matches(doc, p) && self.match_prefix(doc, p, idx - 1),
                None => false,
            },
            Combinator::Descendant => {
                let mut cur = doc.parent(id);
                while let Some(p) = cur {
                    if target.matches(doc, p) && self.match_prefix(doc, p, idx - 1) {
                        return true;
                    }
                    cur = doc.parent(p);
                }
                false
            }
        }
    }
}

/// A parsed CSS selector (possibly a comma-separated list).
///
/// ```
/// use kscope_html::{parse_document, Selector};
/// let doc = parse_document(r#"<div class="nav"><a href="/x">x</a></div>"#);
/// let sel: Selector = ".nav a[href^='/']".parse()?;
/// assert_eq!(doc.select(&sel).len(), 1);
/// # Ok::<(), kscope_html::SelectorParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    complexes: Vec<Complex>,
    source: String,
}

impl Selector {
    /// Parses a selector string.
    ///
    /// # Errors
    ///
    /// Returns [`SelectorParseError`] on empty input or malformed syntax.
    pub fn parse(input: &str) -> Result<Self, SelectorParseError> {
        let source = input.trim().to_string();
        if source.is_empty() {
            return Err(SelectorParseError::new("empty selector"));
        }
        let mut complexes = Vec::new();
        for part in split_top_level_commas(&source) {
            complexes.push(parse_complex(part.trim())?);
        }
        Ok(Self { complexes, source })
    }

    /// Whether element `id` of `doc` matches this selector.
    pub fn matches(&self, doc: &Document, id: NodeId) -> bool {
        self.complexes.iter().any(|c| c.matches(doc, id))
    }

    /// The original selector text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// CSS specificity, encoded as `ids * 10_000 + (classes + attributes) *
    /// 100 + tags`. For selector lists, the most specific member counts
    /// (an approximation of per-complex matching that is exact whenever a
    /// list's members target disjoint elements, as in practice they do).
    pub fn specificity(&self) -> u32 {
        self.complexes.iter().map(complex_specificity).max().unwrap_or(0)
    }
}

fn complex_specificity(c: &Complex) -> u32 {
    let mut ids = 0u32;
    let mut classes = 0u32;
    let mut tags = 0u32;
    for comp in &c.compounds {
        if comp.id.is_some() {
            ids += 1;
        }
        classes += comp.classes.len() as u32
            + comp.attrs.len() as u32
            + u32::from(comp.nth_child.is_some());
        if comp.tag.as_deref().is_some_and(|t| t != "*") {
            tags += 1;
        }
    }
    ids * 10_000 + classes * 100 + tags
}

impl FromStr for Selector {
    type Err = SelectorParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Selector::parse(s)
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

/// Splits on commas that are not inside `[...]` brackets or quotes.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut quote: Option<char> = None;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match (quote, c) {
            (Some(q), _) if c == q => quote = None,
            (Some(_), _) => {}
            (None, '\'' | '"') => quote = Some(c),
            (None, '[') => depth += 1,
            (None, ']') => depth = depth.saturating_sub(1),
            (None, ',') if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_complex(input: &str) -> Result<Complex, SelectorParseError> {
    if input.is_empty() {
        return Err(SelectorParseError::new("empty complex selector"));
    }
    let mut compounds = Vec::new();
    let mut combinators = Vec::new();
    let mut chars = input.chars().peekable();
    loop {
        // Skip leading whitespace; a '>' here is a child combinator marker
        // already consumed below.
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let compound = parse_compound(&mut chars)?;
        if compound.is_empty() {
            return Err(SelectorParseError::new(format!("dangling combinator in '{input}'")));
        }
        compounds.push(compound);
        // Determine the combinator to the next compound, if any.
        let mut saw_space = false;
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            saw_space = true;
            chars.next();
        }
        match chars.peek() {
            None => break,
            Some('>') => {
                chars.next();
                combinators.push(Combinator::Child);
            }
            Some(_) if saw_space => combinators.push(Combinator::Descendant),
            Some(c) => {
                return Err(SelectorParseError::new(format!("unexpected character '{c}'")));
            }
        }
    }
    if compounds.is_empty() {
        return Err(SelectorParseError::new("no compound selectors"));
    }
    if combinators.len() != compounds.len() - 1 {
        return Err(SelectorParseError::new(format!("dangling combinator in '{input}'")));
    }
    Ok(Complex { compounds, combinators })
}

fn parse_compound(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<Compound, SelectorParseError> {
    let mut compound = Compound::default();
    loop {
        match chars.peek().copied() {
            Some('*') => {
                chars.next();
                compound.tag = Some("*".to_string());
            }
            Some('#') => {
                chars.next();
                let name = take_ident(chars);
                if name.is_empty() {
                    return Err(SelectorParseError::new("'#' without an id"));
                }
                compound.id = Some(name);
            }
            Some('.') => {
                chars.next();
                let name = take_ident(chars);
                if name.is_empty() {
                    return Err(SelectorParseError::new("'.' without a class"));
                }
                compound.classes.push(name);
            }
            Some('[') => {
                chars.next();
                compound.attrs.push(parse_attr_selector(chars)?);
            }
            Some(':') => {
                chars.next();
                let name = take_ident(chars);
                if name != "nth-child" {
                    return Err(SelectorParseError::new(format!(
                        "unsupported pseudo-class ':{name}'"
                    )));
                }
                if chars.next() != Some('(') {
                    return Err(SelectorParseError::new(":nth-child needs an argument"));
                }
                let mut digits = String::new();
                loop {
                    match chars.next() {
                        Some(')') => break,
                        Some(c) if c.is_ascii_digit() => digits.push(c),
                        _ => {
                            return Err(SelectorParseError::new(
                                ":nth-child takes a positive integer",
                            ))
                        }
                    }
                }
                let n: usize = digits
                    .parse()
                    .map_err(|_| SelectorParseError::new(":nth-child takes a positive integer"))?;
                if n == 0 {
                    return Err(SelectorParseError::new(":nth-child is 1-based"));
                }
                compound.nth_child = Some(n);
            }
            Some(c) if c.is_ascii_alphanumeric() || c == '-' || c == '_' => {
                let name = take_ident(chars).to_ascii_lowercase();
                if compound.tag.is_some() {
                    return Err(SelectorParseError::new("two tag names in one compound"));
                }
                compound.tag = Some(name);
            }
            _ => break,
        }
    }
    Ok(compound)
}

fn take_ident(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
    let mut out = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
            out.push(c);
            chars.next();
        } else {
            break;
        }
    }
    out
}

fn parse_attr_selector(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<AttrSelector, SelectorParseError> {
    // Inside '[', up to ']'.
    let mut body = String::new();
    let mut quote: Option<char> = None;
    loop {
        match chars.next() {
            None => return Err(SelectorParseError::new("unterminated attribute selector")),
            Some(c) => match (quote, c) {
                (Some(q), _) if c == q => {
                    quote = None;
                    body.push(c);
                }
                (Some(_), _) => body.push(c),
                (None, '\'' | '"') => {
                    quote = Some(c);
                    body.push(c);
                }
                (None, ']') => break,
                (None, _) => body.push(c),
            },
        }
    }
    let body = body.trim();
    if body.is_empty() {
        return Err(SelectorParseError::new("empty attribute selector"));
    }
    // Find the operator.
    for (needle, op) in [
        ("^=", AttrOp::StartsWith),
        ("$=", AttrOp::EndsWith),
        ("*=", AttrOp::Contains),
        ("~=", AttrOp::Word),
        ("=", AttrOp::Equals),
    ] {
        if let Some(pos) = body.find(needle) {
            let name = body[..pos].trim().to_ascii_lowercase();
            if name.is_empty() {
                return Err(SelectorParseError::new("attribute selector without a name"));
            }
            let raw = body[pos + needle.len()..].trim();
            let value = strip_quotes(raw).to_string();
            return Ok(AttrSelector { name, op: Some((op, value)) });
        }
    }
    Ok(AttrSelector { name: body.to_ascii_lowercase(), op: None })
}

fn strip_quotes(s: &str) -> &str {
    let b = s.as_bytes();
    if b.len() >= 2 && (b[0] == b'"' || b[0] == b'\'') && b[b.len() - 1] == b[0] {
        &s[1..s.len() - 1]
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    fn sel(s: &str) -> Selector {
        s.parse().unwrap()
    }

    fn count(doc_src: &str, selector: &str) -> usize {
        let doc = parse_document(doc_src);
        doc.select(&sel(selector)).len()
    }

    const PAGE: &str = r#"
        <div id="main" class="content wide">
          <p class="lead">first</p>
          <p>second</p>
          <section>
            <p class="lead note">third</p>
            <a href="https://example.com/page">link</a>
          </section>
        </div>
        <div id="aside"><p>fourth</p></div>
    "#;

    #[test]
    fn tag_selector() {
        assert_eq!(count(PAGE, "p"), 4);
        assert_eq!(count(PAGE, "section"), 1);
        assert_eq!(count(PAGE, "table"), 0);
    }

    #[test]
    fn universal_selector() {
        let doc = parse_document("<div><p>x</p></div>");
        assert_eq!(doc.select(&sel("*")).len(), 2);
    }

    #[test]
    fn id_selector() {
        assert_eq!(count(PAGE, "#main"), 1);
        assert_eq!(count(PAGE, "#nope"), 0);
        assert_eq!(count(PAGE, "div#aside"), 1);
    }

    #[test]
    fn class_selectors() {
        assert_eq!(count(PAGE, ".lead"), 2);
        assert_eq!(count(PAGE, ".lead.note"), 1);
        assert_eq!(count(PAGE, "p.lead"), 2);
        assert_eq!(count(PAGE, ".content"), 1);
    }

    #[test]
    fn descendant_combinator() {
        assert_eq!(count(PAGE, "#main p"), 3);
        assert_eq!(count(PAGE, "#main section p"), 1);
        assert_eq!(count(PAGE, "#aside p"), 1);
    }

    #[test]
    fn child_combinator() {
        assert_eq!(count(PAGE, "#main > p"), 2);
        assert_eq!(count(PAGE, "#main > section > p"), 1);
        assert_eq!(count(PAGE, "#main > a"), 0);
    }

    #[test]
    fn attribute_selectors() {
        assert_eq!(count(PAGE, "[href]"), 1);
        assert_eq!(count(PAGE, "a[href^='https://']"), 1);
        assert_eq!(count(PAGE, "a[href$='page']"), 1);
        assert_eq!(count(PAGE, "a[href*='example']"), 1);
        assert_eq!(count(PAGE, "a[href='https://example.com/page']"), 1);
        assert_eq!(count(PAGE, "a[href='nope']"), 0);
        assert_eq!(count(PAGE, "div[class~='wide']"), 1);
        assert_eq!(count(PAGE, "div[class~='wid']"), 0);
    }

    #[test]
    fn selector_lists() {
        assert_eq!(count(PAGE, "#main, #aside"), 2);
        assert_eq!(count(PAGE, "a, section"), 2);
    }

    #[test]
    fn comma_inside_attr_value_not_a_list() {
        let doc = parse_document(r#"<div data-x="a,b">t</div>"#);
        assert_eq!(doc.select(&sel(r#"[data-x="a,b"]"#)).len(), 1);
    }

    #[test]
    fn whitespace_tolerance() {
        assert_eq!(count(PAGE, "  #main   >    p "), 2);
        assert_eq!(count(PAGE, "#main>p"), 2);
    }

    #[test]
    fn tag_case_insensitive() {
        assert_eq!(count(PAGE, "DIV"), 2);
        assert_eq!(count(PAGE, "P"), 4);
    }

    #[test]
    fn parse_errors() {
        assert!(Selector::parse("").is_err());
        assert!(Selector::parse("#").is_err());
        assert!(Selector::parse(".").is_err());
        assert!(Selector::parse("div >").is_err());
        assert!(Selector::parse("> div").is_err());
        assert!(Selector::parse("[unclosed").is_err());
        assert!(Selector::parse("div div2 div3 !").is_err());
    }

    #[test]
    fn nth_child_selector() {
        let doc = parse_document("<ul><li>a</li><li>b</li><li>c</li></ul><ol><li>x</li></ol>");
        assert_eq!(doc.select(&sel("ul > li:nth-child(2)")).len(), 1);
        let hit = doc.select(&sel("ul > li:nth-child(2)"))[0];
        assert_eq!(doc.text_content(hit), "b");
        // Text nodes do not count as children.
        let doc2 = parse_document("<div>text<p>first</p><p>second</p></div>");
        let hits = doc2.select(&sel("p:nth-child(1)"));
        assert_eq!(hits.len(), 1);
        assert_eq!(doc2.text_content(hits[0]), "first");
        // Out-of-range positions match nothing.
        assert!(doc.select(&sel("li:nth-child(9)")).is_empty());
    }

    #[test]
    fn nth_child_parse_errors() {
        assert!(Selector::parse("p:nth-child(0)").is_err());
        assert!(Selector::parse("p:nth-child()").is_err());
        assert!(Selector::parse("p:nth-child(abc)").is_err());
        assert!(Selector::parse("p:nth-child(2").is_err());
        assert!(Selector::parse("p:hover").is_err());
    }

    #[test]
    fn specificity_ordering() {
        let spec = |s: &str| Selector::parse(s).unwrap().specificity();
        assert!(spec("#a") > spec(".a"));
        assert!(spec(".a") > spec("div"));
        assert!(spec("div.a") > spec(".a"));
        assert!(spec("#a .b") > spec("#a"));
        assert!(spec("[href]") == spec(".x"));
        assert_eq!(spec("*"), 0);
        // Lists take the most specific member.
        assert_eq!(spec("div, #a"), spec("#a"));
    }

    #[test]
    fn display_roundtrip() {
        let s = sel("#main > p.lead");
        assert_eq!(s.to_string(), "#main > p.lead");
        assert_eq!(s.source(), "#main > p.lead");
    }

    #[test]
    fn select_first_document_order() {
        let doc = parse_document(PAGE);
        let first = doc.select_first(&sel("p")).unwrap();
        assert_eq!(doc.text_content(first), "first");
    }

    #[test]
    fn descendant_backtracking() {
        // `div p` where the direct parent div does not complete the match
        // but a higher div does: <div id=a><section><div><p> — selector
        // "#a > section p" must match via backtracking.
        let src = "<div id='a'><section><div><p>x</p></div></section></div>";
        assert_eq!(count(src, "#a > section p"), 1);
        assert_eq!(count(src, "#a > div p"), 0);
    }
}
