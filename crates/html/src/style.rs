//! A small CSS cascade: parse `<style>` rules and compute effective
//! property values with specificity and inheritance.
//!
//! Real test webpages set their typography in stylesheets, not inline
//! `style` attributes; the aggregator's variants and the virtual browser's
//! stimulus extraction therefore need an actual cascade: inline styles win,
//! then the most specific matching rule (ids > classes/attributes > tags,
//! later rules break ties), then inheritance from the parent for inherited
//! properties like `font-size`.

use crate::dom::{Document, NodeId, NodeKind};
use crate::selector::Selector;

/// One parsed rule: selector, declarations, and source order.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The rule's selector (may be a selector list).
    pub selector: Selector,
    /// `(property, value)` pairs, lowercased property names.
    pub declarations: Vec<(String, String)>,
    order: usize,
}

/// A parsed stylesheet.
#[derive(Debug, Clone, Default)]
pub struct Stylesheet {
    rules: Vec<Rule>,
}

impl Stylesheet {
    /// Parses CSS text, tolerantly: unparseable selectors or declarations
    /// are skipped (never an error), at-rules (`@media`, `@import`) are
    /// ignored, comments are stripped.
    pub fn parse(css: &str) -> Self {
        let css = strip_comments(css);
        let mut rules = Vec::new();
        let mut order = 0;
        for block in split_blocks(&css) {
            let (selector_text, body) = (block.0.trim(), block.1);
            if selector_text.is_empty() || selector_text.starts_with('@') {
                continue;
            }
            let selector: Selector = match selector_text.parse() {
                Ok(s) => s,
                Err(_) => continue,
            };
            let declarations: Vec<(String, String)> = body
                .split(';')
                .filter_map(|decl| {
                    let (prop, value) = decl.split_once(':')?;
                    let prop = prop.trim().to_ascii_lowercase();
                    let value = value.trim().trim_end_matches("!important").trim();
                    if prop.is_empty() || value.is_empty() {
                        None
                    } else {
                        Some((prop, value.to_string()))
                    }
                })
                .collect();
            if declarations.is_empty() {
                continue;
            }
            rules.push(Rule { selector, declarations, order });
            order += 1;
        }
        Self { rules }
    }

    /// All rules in source order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the sheet has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Collects and parses every `<style>` element of a document, in document
/// order.
pub fn document_stylesheets(doc: &Document) -> Vec<Stylesheet> {
    doc.elements()
        .into_iter()
        .filter(|&id| doc.element(id).map(|e| e.name == "style").unwrap_or(false))
        .map(|id| Stylesheet::parse(&doc.text_content(id)))
        .collect()
}

/// Properties that inherit down the tree (the subset the pipeline uses).
fn is_inherited(prop: &str) -> bool {
    matches!(
        prop,
        "font-size"
            | "font-family"
            | "font-weight"
            | "color"
            | "line-height"
            | "letter-spacing"
            | "text-align"
    )
}

/// Computes the effective value of `prop` on `node`: inline `style` wins,
/// then the highest-specificity matching rule across `sheets` (later rules
/// break ties), then — for inherited properties — the parent's computed
/// value.
pub fn computed_property(
    doc: &Document,
    sheets: &[Stylesheet],
    node: NodeId,
    prop: &str,
) -> Option<String> {
    let mut cur = Some(node);
    while let Some(id) = cur {
        if matches!(doc.node(id).kind, NodeKind::Element(_)) {
            if let Some(v) = own_property(doc, sheets, id, prop) {
                return Some(v);
            }
            if !is_inherited(prop) {
                return None;
            }
        }
        cur = doc.parent(id);
    }
    None
}

/// The value `prop` takes on `node` from its own declarations (inline or
/// matched rules), ignoring inheritance.
fn own_property(doc: &Document, sheets: &[Stylesheet], node: NodeId, prop: &str) -> Option<String> {
    if let Some(v) = doc.style_property(node, prop) {
        return Some(v);
    }
    let mut best: Option<(u32, usize, usize, String)> = None; // (spec, sheet, order, value)
    for (sheet_idx, sheet) in sheets.iter().enumerate() {
        for rule in &sheet.rules {
            if !rule.selector.matches(doc, node) {
                continue;
            }
            let spec = rule.selector.specificity();
            for (p, v) in &rule.declarations {
                if p == prop {
                    let candidate = (spec, sheet_idx, rule.order, v.clone());
                    let better = match &best {
                        None => true,
                        Some((bs, bsi, bo, _)) => {
                            (candidate.0, candidate.1, candidate.2) >= (*bs, *bsi, *bo)
                        }
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
        }
    }
    best.map(|(_, _, _, v)| v)
}

fn strip_comments(css: &str) -> String {
    let mut out = String::with_capacity(css.len());
    let mut rest = css;
    while let Some(start) = rest.find("/*") {
        out.push_str(&rest[..start]);
        match rest[start..].find("*/") {
            Some(end) => rest = &rest[start + end + 2..],
            None => return out,
        }
    }
    out.push_str(rest);
    out
}

/// Splits CSS into `(selector, body)` blocks with brace-depth tracking, so
/// nested at-rule bodies (`@media … { rule { … } }`) are consumed as one
/// block (and later skipped by the `@` check) instead of desynchronizing
/// the scan.
fn split_blocks(css: &str) -> Vec<(&str, &str)> {
    let mut out = Vec::new();
    let bytes = css.as_bytes();
    let mut i = 0;
    let mut sel_start = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            let selector = &css[sel_start..i];
            let body_start = i + 1;
            let mut depth = 1usize;
            let mut j = body_start;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let body_end = if depth == 0 { j - 1 } else { j };
            out.push((selector, &css[body_start..body_end]));
            sel_start = j;
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    const PAGE: &str = r#"<html><head><style>
        p { font-size: 10pt; color: black }
        .lead { font-size: 14pt }
        #hero { font-size: 20pt }
        div { margin: 4px }
    </style></head><body>
        <div id="box"><p>plain</p><p class="lead">lead</p>
        <p class="lead" id="hero">hero</p>
        <p style="font-size: 30pt">inline</p>
        <span>span inherits</span></div>
    </body></html>"#;

    fn setup() -> (Document, Vec<Stylesheet>) {
        let doc = parse_document(PAGE);
        let sheets = document_stylesheets(&doc);
        (doc, sheets)
    }

    fn font_of(doc: &Document, sheets: &[Stylesheet], text: &str) -> Option<String> {
        let node = doc
            .elements()
            .into_iter()
            .find(|&id| doc.text_content(id) == text && doc.children(id).len() == 1)
            .unwrap_or_else(|| panic!("no element with text {text}"));
        computed_property(doc, sheets, node, "font-size")
    }

    #[test]
    fn parses_document_stylesheets() {
        let (_, sheets) = setup();
        assert_eq!(sheets.len(), 1);
        assert_eq!(sheets[0].len(), 4);
    }

    #[test]
    fn tag_rule_applies() {
        let (doc, sheets) = setup();
        assert_eq!(font_of(&doc, &sheets, "plain").as_deref(), Some("10pt"));
    }

    #[test]
    fn class_beats_tag() {
        let (doc, sheets) = setup();
        assert_eq!(font_of(&doc, &sheets, "lead").as_deref(), Some("14pt"));
    }

    #[test]
    fn id_beats_class() {
        let (doc, sheets) = setup();
        assert_eq!(font_of(&doc, &sheets, "hero").as_deref(), Some("20pt"));
    }

    #[test]
    fn inline_beats_everything() {
        let (doc, sheets) = setup();
        assert_eq!(font_of(&doc, &sheets, "inline").as_deref(), Some("30pt"));
    }

    #[test]
    fn later_rule_breaks_specificity_ties() {
        let doc =
            parse_document("<style>p { font-size: 10pt } p { font-size: 12pt }</style><p>x</p>");
        let sheets = document_stylesheets(&doc);
        let p = doc.find_tag("p").unwrap();
        assert_eq!(computed_property(&doc, &sheets, p, "font-size").as_deref(), Some("12pt"));
    }

    #[test]
    fn inherited_property_flows_down() {
        let doc = parse_document(
            "<style>#box { font-size: 18pt }</style><div id='box'><span><b>deep</b></span></div>",
        );
        let sheets = document_stylesheets(&doc);
        let b = doc.find_tag("b").unwrap();
        assert_eq!(computed_property(&doc, &sheets, b, "font-size").as_deref(), Some("18pt"));
    }

    #[test]
    fn non_inherited_property_does_not_flow() {
        let (doc, sheets) = setup();
        let span = doc.find_tag("span").unwrap();
        // margin set on div must not inherit to the span...
        assert_eq!(computed_property(&doc, &sheets, span, "margin"), None);
        // ...but font-size (from the p rule? no — span isn't a p; inherits
        // nothing here since body/div set no font-size).
        assert_eq!(computed_property(&doc, &sheets, span, "font-size"), None);
    }

    #[test]
    fn comments_and_at_rules_ignored() {
        let sheet = Stylesheet::parse(
            "/* c1 */ @media screen { ignored {} } p { /* c2 */ font-size: 11pt }",
        );
        // The @media block's inner braces confuse no one fatally: the outer
        // "@media…{" block is skipped; the p rule survives.
        assert!(sheet
            .rules()
            .iter()
            .any(|r| r.declarations.iter().any(|(p, v)| p == "font-size" && v == "11pt")));
    }

    #[test]
    fn important_marker_stripped() {
        let sheet = Stylesheet::parse("p { color: red !important }");
        assert_eq!(sheet.rules()[0].declarations[0].1, "red");
    }

    #[test]
    fn malformed_css_is_skipped_not_fatal() {
        let sheet = Stylesheet::parse("]]garbage{{ p { font-size }; q { : nothing } x {}");
        // Nothing usable, nothing panicking.
        assert!(sheet.is_empty() || sheet.len() <= 1);
    }

    #[test]
    fn selector_lists_apply_to_all_members() {
        let doc = parse_document("<style>h1, h2 { color: blue }</style><h1>a</h1><h2>b</h2>");
        let sheets = document_stylesheets(&doc);
        for tag in ["h1", "h2"] {
            let n = doc.find_tag(tag).unwrap();
            assert_eq!(
                computed_property(&doc, &sheets, n, "color").as_deref(),
                Some("blue"),
                "{tag}"
            );
        }
    }
}
