//! Tree construction: token stream → [`Document`].
//!
//! Forgiving, stack-based construction in the spirit of the WHATWG
//! algorithm but much smaller: void elements never push, raw-text elements
//! swallow their contents, mismatched end tags pop to the nearest open
//! match (or are dropped), and a handful of implied-end-tag rules keep
//! `<p>`/`<li>` soup from nesting absurdly.

use crate::dom::{Document, NodeId};
use crate::tokenizer::{tokenize, Token};
use crate::{is_raw_text, is_void};

/// Maximum open-element depth: deeper start tags are treated as siblings
/// rather than children, which keeps pathological inputs (e.g. a hundred
/// thousand nested `<div>`s) from producing trees whose recursive
/// serialization would overflow the stack. Browsers apply the same kind of
/// cap (WebKit: 512).
const MAX_DEPTH: usize = 256;

/// Tags that implicitly close an open `<p>` when they start.
const CLOSES_P: &[&str] = &[
    "address",
    "article",
    "aside",
    "blockquote",
    "div",
    "dl",
    "fieldset",
    "footer",
    "form",
    "h1",
    "h2",
    "h3",
    "h4",
    "h5",
    "h6",
    "header",
    "hr",
    "main",
    "nav",
    "ol",
    "p",
    "pre",
    "section",
    "table",
    "ul",
];

/// Parses an HTML string into a [`Document`]. Never fails; malformed input
/// produces a best-effort tree, like a browser.
///
/// ```
/// let doc = kscope_html::parse_document("<ul><li>a<li>b</ul>");
/// let lis = doc.elements().into_iter()
///     .filter(|&id| doc.element(id).map(|e| e.name == "li").unwrap_or(false))
///     .count();
/// assert_eq!(lis, 2);
/// ```
pub fn parse_document(input: &str) -> Document {
    let mut doc = Document::new();
    let root = doc.root();
    let mut stack: Vec<(String, NodeId)> = vec![("#root".to_string(), root)];
    // Start tags beyond MAX_DEPTH are recorded here (names only) so their
    // matching end tags are consumed instead of popping real ancestors.
    let mut overflow: Vec<String> = Vec::new();

    for token in tokenize(input) {
        match token {
            Token::Doctype(text) => {
                let node = doc.create_doctype(&text);
                doc.append_child(root, node);
            }
            Token::Comment(text) => {
                let node = doc.create_comment(&text);
                let parent = stack.last().expect("stack never empties").1;
                doc.append_child(parent, node);
            }
            Token::Text(text) => {
                if text.is_empty() {
                    continue;
                }
                let parent = stack.last().expect("stack never empties").1;
                let node = doc.create_text(&text);
                doc.append_child(parent, node);
            }
            Token::StartTag { name, attrs, self_closing } => {
                apply_implied_end_tags(&mut stack, &name);
                let parent = stack.last().expect("stack never empties").1;
                let node = doc.create_element_with_attrs(&name, attrs);
                doc.append_child(parent, node);
                let leaf = self_closing || is_void(&name);
                let below_cap = stack.len() < MAX_DEPTH;
                if !leaf && !is_raw_text(&name) {
                    if below_cap {
                        stack.push((name, node));
                    } else {
                        // At the cap the element is kept but stays
                        // childless: subsequent content becomes its
                        // sibling, and its end tag must be swallowed.
                        overflow.push(name);
                    }
                } else if is_raw_text(&name) && !self_closing && below_cap {
                    // Raw-text content arrives as a single Text token next;
                    // push so it lands inside the element.
                    stack.push((name, node));
                }
            }
            Token::EndTag { name } => {
                // End tags of over-cap elements are consumed here so they
                // cannot pop real ancestors.
                if let Some(pos) = overflow.iter().rposition(|n| *n == name) {
                    overflow.truncate(pos);
                } else if let Some(pos) = stack.iter().rposition(|(n, _)| *n == name) {
                    if pos > 0 {
                        stack.truncate(pos);
                        overflow.clear();
                    }
                }
                // Unmatched end tags are silently dropped.
            }
        }
    }
    doc
}

fn apply_implied_end_tags(stack: &mut Vec<(String, NodeId)>, incoming: &str) {
    let top = match stack.last() {
        Some((name, _)) => name.as_str(),
        None => return,
    };
    let close = match top {
        "p" => CLOSES_P.contains(&incoming),
        "li" => incoming == "li",
        "dt" | "dd" => incoming == "dt" || incoming == "dd",
        "tr" => incoming == "tr",
        "td" | "th" => matches!(incoming, "td" | "th" | "tr"),
        "option" => incoming == "option",
        _ => false,
    };
    if close && stack.len() > 1 {
        stack.pop();
        // `td`/`th` under a closing `tr` needs a second pop.
        if incoming == "tr" {
            if let Some((name, _)) = stack.last() {
                if name == "tr" && stack.len() > 1 {
                    stack.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::NodeKind;

    fn tag_of(doc: &Document, id: NodeId) -> String {
        doc.element(id).map(|e| e.name.clone()).unwrap_or_default()
    }

    #[test]
    fn nested_structure() {
        let doc = parse_document("<html><body><div><p>x</p></div></body></html>");
        let html = doc.children(doc.root())[0];
        assert_eq!(tag_of(&doc, html), "html");
        let body = doc.children(html)[0];
        assert_eq!(tag_of(&doc, body), "body");
        let div = doc.children(body)[0];
        let p = doc.children(div)[0];
        assert_eq!(tag_of(&doc, p), "p");
        assert_eq!(doc.text_content(p), "x");
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse_document("<div><br><img src=x><span>y</span></div>");
        let div = doc.find_tag("div").unwrap();
        let kids: Vec<String> = doc.children(div).iter().map(|&c| tag_of(&doc, c)).collect();
        assert_eq!(kids, vec!["br", "img", "span"]);
    }

    #[test]
    fn implied_li_end_tags() {
        let doc = parse_document("<ul><li>a<li>b<li>c</ul>");
        let ul = doc.find_tag("ul").unwrap();
        assert_eq!(doc.children(ul).len(), 3);
        for &li in doc.children(ul) {
            assert_eq!(tag_of(&doc, li), "li");
        }
    }

    #[test]
    fn implied_p_end_tags() {
        let doc = parse_document("<p>one<p>two<div>three</div>");
        let body_level: Vec<String> =
            doc.children(doc.root()).iter().map(|&c| tag_of(&doc, c)).collect();
        assert_eq!(body_level, vec!["p", "p", "div"]);
    }

    #[test]
    fn table_row_and_cell_implied_ends() {
        let doc = parse_document("<table><tr><td>a<td>b<tr><td>c</table>");
        let table = doc.find_tag("table").unwrap();
        let rows: Vec<NodeId> = doc.children(table).to_vec();
        assert_eq!(rows.len(), 2);
        assert_eq!(doc.children(rows[0]).len(), 2);
        assert_eq!(doc.children(rows[1]).len(), 1);
    }

    #[test]
    fn unmatched_end_tag_is_ignored() {
        let doc = parse_document("<div>a</span>b</div>");
        let div = doc.find_tag("div").unwrap();
        assert_eq!(doc.text_content(div), "ab");
    }

    #[test]
    fn stray_end_tag_does_not_pop_everything() {
        let doc = parse_document("<div><p>a</div></p>");
        // After </div>, the trailing </p> has no open <p>; it must not panic
        // or corrupt the tree.
        assert_eq!(doc.text_content(doc.root()), "a");
    }

    #[test]
    fn script_content_is_one_text_node() {
        let doc = parse_document("<script>var a = '<div>not a tag</div>';</script>");
        let script = doc.find_tag("script").unwrap();
        let kids = doc.children(script);
        assert_eq!(kids.len(), 1);
        assert!(matches!(
            &doc.node(kids[0]).kind,
            NodeKind::Text(t) if t.contains("<div>not a tag</div>")
        ));
    }

    #[test]
    fn doctype_preserved() {
        let doc = parse_document("<!DOCTYPE html><html></html>");
        assert!(matches!(
            &doc.node(doc.children(doc.root())[0]).kind,
            NodeKind::Doctype(t) if t.contains("html")
        ));
    }

    #[test]
    fn comments_preserved_in_place() {
        let doc = parse_document("<div><!-- hello --></div>");
        let div = doc.find_tag("div").unwrap();
        assert!(matches!(
            &doc.node(doc.children(div)[0]).kind,
            NodeKind::Comment(t) if t.trim() == "hello"
        ));
    }

    #[test]
    fn deeply_nested_does_not_overflow() {
        // 100k nested divs: the depth cap keeps the tree shallow enough for
        // the recursive serializer, and no content is lost.
        let depth = 100_000;
        let mut s = String::with_capacity(depth * 5 + 1);
        for _ in 0..depth {
            s.push_str("<div>");
        }
        s.push('x');
        let doc = parse_document(&s);
        assert_eq!(doc.text_content(doc.root()), "x");
        // Serialization must not overflow either.
        let html = doc.to_html();
        assert!(html.contains("x"), "content must survive serialization");
        // The reparse of the serialization is stable.
        let again = parse_document(&html).to_html();
        assert_eq!(html, again);
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert_eq!(parse_document("").reachable_len(), 1);
        let doc = parse_document("   \n  ");
        assert_eq!(doc.text_content(doc.root()), "   \n  ");
    }

    #[test]
    fn self_closing_foreign_style() {
        let doc = parse_document("<div/><span>x</span>");
        // A self-closed div takes no children; span is a sibling.
        let top: Vec<String> = doc.children(doc.root()).iter().map(|&c| tag_of(&doc, c)).collect();
        assert_eq!(top, vec!["div", "span"]);
    }
}
