//! A forgiving HTML tokenizer.
//!
//! Produces a flat stream of [`Token`]s from HTML text. It follows the parts
//! of the WHATWG tokenizer the Kaleidoscope pipeline needs: tags with
//! quoted/unquoted/bare attributes, comments, doctype, character references
//! in text and attribute values, and raw-text handling for `<script>` /
//! `<style>` so CSS braces and JS comparisons never confuse the tag scanner.

use crate::is_raw_text;

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<!DOCTYPE ...>` with the raw contents after `<!`.
    Doctype(String),
    /// An opening tag, e.g. `<div id="x">`. Attribute names are lowercased.
    StartTag {
        /// Lowercased tag name.
        name: String,
        /// Attributes in document order; values are entity-decoded.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// A closing tag, e.g. `</div>`.
    EndTag {
        /// Lowercased tag name.
        name: String,
    },
    /// A run of character data (entity-decoded).
    Text(String),
    /// `<!-- ... -->` contents.
    Comment(String),
}

/// Tokenizes an HTML string. Never fails: malformed markup degrades into
/// text, matching browser behaviour.
///
/// ```
/// use kscope_html::tokenize;
/// let toks = tokenize("<p>hi</p>");
/// assert_eq!(toks.len(), 3);
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer::new(input).run().into_iter().map(|(tok, _)| tok).collect()
}

/// Tokenizes an HTML string, pairing every token with the byte range of the
/// input it was lexed from.
///
/// Spans are non-overlapping and monotonically increasing, but not
/// necessarily contiguous: bytes the tokenizer consumes without emitting a
/// token (e.g. an empty raw-text body) fall in the gaps between spans. The
/// streaming rewriter relies on this to copy untouched input verbatim —
/// gap bytes plus unmodified token spans reproduce the input byte-for-byte.
pub fn tokenize_spans(input: &str) -> Vec<(Token, std::ops::Range<usize>)> {
    Tokenizer::new(input).run()
}

struct Tokenizer<'a> {
    input: &'a [u8],
    pos: usize,
    tokens: Vec<(Token, std::ops::Range<usize>)>,
    /// When inside `<script>`/`<style>`, the element name we must see closed.
    raw_text_until: Option<String>,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Self { input: input.as_bytes(), pos: 0, tokens: Vec::new(), raw_text_until: None }
    }

    fn run(mut self) -> Vec<(Token, std::ops::Range<usize>)> {
        while self.pos < self.input.len() {
            let start = self.pos;
            let emitted = self.tokens.len();
            if let Some(name) = self.raw_text_until.take() {
                self.consume_raw_text(&name);
            } else if self.peek() == Some(b'<') {
                self.consume_markup();
            } else {
                self.consume_text();
            }
            // Each consume_* pushes at most one token; stamp whatever was
            // emitted with the byte range this dispatch consumed.
            for slot in &mut self.tokens[emitted..] {
                slot.1 = start..self.pos;
            }
        }
        self.tokens
    }

    fn push(&mut self, token: Token) {
        // Placeholder span; run() stamps the real range after each dispatch.
        self.tokens.push((token, 0..0));
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.input.get(self.pos + off).copied()
    }

    fn rest(&self) -> &[u8] {
        &self.input[self.pos..]
    }

    fn starts_with_ci(&self, prefix: &str) -> bool {
        let rest = self.rest();
        rest.len() >= prefix.len() && rest[..prefix.len()].eq_ignore_ascii_case(prefix.as_bytes())
    }

    fn consume_text(&mut self) {
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos]).unwrap_or_default();
        if !raw.is_empty() {
            self.push(Token::Text(decode_entities(raw)));
        }
    }

    /// Consumes raw text until `</name` (case-insensitive), emitting it
    /// verbatim (no entity decoding, as in browser raw-text states).
    fn consume_raw_text(&mut self, name: &str) {
        let close = format!("</{name}");
        let start = self.pos;
        loop {
            if self.pos >= self.input.len() {
                break;
            }
            if self.input[self.pos] == b'<' && self.starts_with_ci(&close) {
                break;
            }
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos]).unwrap_or_default();
        if !raw.is_empty() {
            self.push(Token::Text(raw.to_string()));
        }
        // The closing tag (if present) is handled by the main loop.
    }

    fn consume_markup(&mut self) {
        debug_assert_eq!(self.peek(), Some(b'<'));
        match self.peek_at(1) {
            Some(b'!') => {
                if self.starts_with_ci("<!--") {
                    self.consume_comment();
                } else {
                    self.consume_doctype_or_bogus();
                }
            }
            Some(b'/') => self.consume_end_tag(),
            Some(c) if c.is_ascii_alphabetic() => self.consume_start_tag(),
            _ => {
                // A lone '<' is text.
                self.push(Token::Text("<".to_string()));
                self.pos += 1;
            }
        }
    }

    fn consume_comment(&mut self) {
        self.pos += 4; // past "<!--"
        let start = self.pos;
        while self.pos < self.input.len() {
            if self.input[self.pos] == b'-' && self.rest().starts_with(b"-->") {
                break;
            }
            self.pos += 1;
        }
        let body = std::str::from_utf8(&self.input[start..self.pos]).unwrap_or_default();
        self.push(Token::Comment(body.to_string()));
        self.pos = (self.pos + 3).min(self.input.len());
    }

    fn consume_doctype_or_bogus(&mut self) {
        self.pos += 2; // past "<!"
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != b'>' {
            self.pos += 1;
        }
        let body = std::str::from_utf8(&self.input[start..self.pos]).unwrap_or_default();
        self.push(Token::Doctype(body.trim().to_string()));
        self.pos = (self.pos + 1).min(self.input.len());
    }

    fn consume_end_tag(&mut self) {
        self.pos += 2; // past "</"
        let name = self.consume_tag_name();
        // Skip anything up to '>'.
        while self.pos < self.input.len() && self.input[self.pos] != b'>' {
            self.pos += 1;
        }
        self.pos = (self.pos + 1).min(self.input.len());
        if !name.is_empty() {
            self.push(Token::EndTag { name });
        }
    }

    fn consume_start_tag(&mut self) {
        self.pos += 1; // past "<"
        let name = self.consume_tag_name();
        let mut attrs: Vec<(String, String)> = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_whitespace();
            match self.peek() {
                None => break,
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                }
                Some(_) => {
                    if let Some(attr) = self.consume_attribute() {
                        // First occurrence wins, as in browsers.
                        if !attrs.iter().any(|(n, _)| *n == attr.0) {
                            attrs.push(attr);
                        }
                    }
                }
            }
        }
        if is_raw_text(&name) && !self_closing {
            self.raw_text_until = Some(name.clone());
        }
        self.push(Token::StartTag { name, attrs, self_closing });
    }

    fn consume_tag_name(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.input[self.pos];
            if c.is_ascii_alphanumeric() || c == b'-' || c == b'_' || c == b':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.input[start..self.pos]).unwrap_or_default().to_ascii_lowercase()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn consume_attribute(&mut self) -> Option<(String, String)> {
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.input[self.pos];
            if c.is_ascii_whitespace() || c == b'=' || c == b'>' || c == b'/' {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            // Not a valid attribute start; skip one byte to make progress.
            self.pos += 1;
            return None;
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .unwrap_or_default()
            .to_ascii_lowercase();
        self.skip_whitespace();
        if self.peek() != Some(b'=') {
            return Some((name, String::new()));
        }
        self.pos += 1; // past '='
        self.skip_whitespace();
        let value = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let vstart = self.pos;
                while self.pos < self.input.len() && self.input[self.pos] != q {
                    self.pos += 1;
                }
                let v = std::str::from_utf8(&self.input[vstart..self.pos]).unwrap_or_default();
                self.pos = (self.pos + 1).min(self.input.len());
                v.to_string()
            }
            _ => {
                let vstart = self.pos;
                while self.pos < self.input.len() {
                    let c = self.input[self.pos];
                    if c.is_ascii_whitespace() || c == b'>' {
                        break;
                    }
                    self.pos += 1;
                }
                std::str::from_utf8(&self.input[vstart..self.pos]).unwrap_or_default().to_string()
            }
        };
        Some((name, decode_entities(&value)))
    }
}

/// Decodes the named character references the pipeline encounters plus
/// decimal/hex numeric references. Unknown entities pass through verbatim.
pub fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some(semi) = s[i..].find(';').map(|k| i + k) {
                let entity = &s[i + 1..semi];
                if let Some(decoded) = decode_one_entity(entity) {
                    out.push_str(&decoded);
                    i = semi + 1;
                    continue;
                }
            }
        }
        let ch_len = utf8_len(bytes[i]);
        out.push_str(&s[i..i + ch_len]);
        i += ch_len;
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn decode_one_entity(entity: &str) -> Option<String> {
    // Bail on absurdly long candidates — real entities are short.
    if entity.len() > 10 {
        return None;
    }
    match entity {
        "amp" => Some("&".into()),
        "lt" => Some("<".into()),
        "gt" => Some(">".into()),
        "quot" => Some("\"".into()),
        "apos" => Some("'".into()),
        "nbsp" => Some("\u{a0}".into()),
        "copy" => Some("\u{a9}".into()),
        "mdash" => Some("\u{2014}".into()),
        "ndash" => Some("\u{2013}".into()),
        "hellip" => Some("\u{2026}".into()),
        _ => {
            let code = if let Some(hex) = entity.strip_prefix("#x").or(entity.strip_prefix("#X")) {
                u32::from_str_radix(hex, 16).ok()?
            } else if let Some(dec) = entity.strip_prefix('#') {
                dec.parse::<u32>().ok()?
            } else {
                return None;
            };
            char::from_u32(code).map(|c| c.to_string())
        }
    }
}

/// Escapes text for safe inclusion as HTML character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_text_into(s, &mut out);
    out
}

/// Appends `s` to `out`, escaping `&`, `<` and `>`.
///
/// Copies maximal clean runs with bulk `push_str` instead of pushing one
/// char at a time — on MB-scale text (inlined `data:` URIs dominate the
/// aggregation hot path) the common case is "nothing to escape", which
/// degenerates to a single scan plus one memcpy.
pub fn escape_text_into(s: &str, out: &mut String) {
    let bytes = s.as_bytes();
    let mut last = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let rep = match b {
            b'&' => "&amp;",
            b'<' => "&lt;",
            b'>' => "&gt;",
            _ => continue,
        };
        out.push_str(&s[last..i]);
        out.push_str(rep);
        last = i + 1;
    }
    out.push_str(&s[last..]);
}

/// Escapes a string for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_attr_into(s, &mut out);
    out
}

/// Appends `s` to `out`, escaping `&`, `"` and `<` (double-quoted attribute
/// context). Bulk-copies clean runs; see [`escape_text_into`].
pub fn escape_attr_into(s: &str, out: &mut String) {
    let bytes = s.as_bytes();
    let mut last = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let rep = match b {
            b'&' => "&amp;",
            b'"' => "&quot;",
            b'<' => "&lt;",
            _ => continue,
        };
        out.push_str(&s[last..i]);
        out.push_str(rep);
        last = i + 1;
    }
    out.push_str(&s[last..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_paragraph() {
        let t = tokenize("<p>hi</p>");
        assert_eq!(
            t,
            vec![
                Token::StartTag { name: "p".into(), attrs: vec![], self_closing: false },
                Token::Text("hi".into()),
                Token::EndTag { name: "p".into() },
            ]
        );
    }

    #[test]
    fn attributes_all_quote_styles() {
        let t = tokenize(r#"<a href="x" title='y' id=z disabled>"#);
        match &t[0] {
            Token::StartTag { name, attrs, .. } => {
                assert_eq!(name, "a");
                assert_eq!(
                    attrs,
                    &vec![
                        ("href".to_string(), "x".to_string()),
                        ("title".to_string(), "y".to_string()),
                        ("id".to_string(), "z".to_string()),
                        ("disabled".to_string(), String::new()),
                    ]
                );
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn duplicate_attributes_first_wins() {
        let t = tokenize(r#"<div class="a" class="b">"#);
        match &t[0] {
            Token::StartTag { attrs, .. } => {
                assert_eq!(attrs, &vec![("class".to_string(), "a".to_string())]);
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn tag_names_lowercased() {
        let t = tokenize("<DIV Id=A></DIV>");
        assert!(matches!(&t[0], Token::StartTag { name, .. } if name == "div"));
        assert!(matches!(&t[1], Token::EndTag { name } if name == "div"));
    }

    #[test]
    fn self_closing_tag() {
        let t = tokenize("<br/>");
        assert!(matches!(&t[0], Token::StartTag { self_closing: true, .. }));
    }

    #[test]
    fn comment_and_doctype() {
        let t = tokenize("<!DOCTYPE html><!-- note -->");
        assert_eq!(t[0], Token::Doctype("DOCTYPE html".into()));
        assert_eq!(t[1], Token::Comment(" note ".into()));
    }

    #[test]
    fn unterminated_comment_does_not_hang() {
        let t = tokenize("<!-- open forever");
        assert_eq!(t, vec![Token::Comment(" open forever".into())]);
    }

    #[test]
    fn script_raw_text_keeps_angle_brackets() {
        let src = "<script>if (a < b && c > d) { x(); }</script><p>after</p>";
        let t = tokenize(src);
        assert!(matches!(&t[0], Token::StartTag { name, .. } if name == "script"));
        assert_eq!(t[1], Token::Text("if (a < b && c > d) { x(); }".into()));
        assert_eq!(t[2], Token::EndTag { name: "script".into() });
        assert!(matches!(&t[3], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn style_raw_text() {
        let t = tokenize("<style>p > a { color: red }</style>");
        assert_eq!(t[1], Token::Text("p > a { color: red }".into()));
    }

    #[test]
    fn case_insensitive_raw_text_close() {
        let t = tokenize("<script>x</SCRIPT>");
        assert_eq!(t[1], Token::Text("x".into()));
        assert_eq!(t[2], Token::EndTag { name: "script".into() });
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let t = tokenize(r#"<a title="a &amp; b">x &lt; y &#65; &#x42;</a>"#);
        match &t[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs[0].1, "a & b"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t[1], Token::Text("x < y A B".into()));
    }

    #[test]
    fn unknown_entity_passes_through() {
        let t = tokenize("a &bogus; b");
        assert_eq!(t, vec![Token::Text("a &bogus; b".into())]);
    }

    #[test]
    fn lone_angle_bracket_is_text() {
        let t = tokenize("1 < 2");
        let text: String = t
            .iter()
            .map(|tok| match tok {
                Token::Text(s) => s.clone(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(text, "1 < 2");
    }

    #[test]
    fn multibyte_text_survives() {
        let t = tokenize("<p>岩狸 – rock hyrax &mdash; Προκόβια</p>");
        assert_eq!(t[1], Token::Text("岩狸 – rock hyrax \u{2014} Προκόβια".into()));
    }

    #[test]
    fn escape_roundtrip() {
        let original = "a < b & \"c\" > d";
        let escaped = escape_text(original);
        assert_eq!(decode_entities(&escaped), original);
    }

    #[test]
    fn escape_attr_protects_quotes() {
        assert_eq!(escape_attr(r#"say "hi" & go"#), "say &quot;hi&quot; &amp; go");
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn spans_slice_back_to_the_source_text() {
        let src = r#"<p class=x>hi &amp; bye</p>"#;
        let spans = tokenize_spans(src);
        assert_eq!(&src[spans[0].1.clone()], "<p class=x>");
        assert_eq!(&src[spans[1].1.clone()], "hi &amp; bye");
        assert_eq!(&src[spans[2].1.clone()], "</p>");
    }

    #[test]
    fn spans_are_monotonic_and_in_bounds() {
        let src = "<!DOCTYPE html><script>1<2</script><!-- c --><br/>tail";
        let mut last = 0;
        for (_, span) in tokenize_spans(src) {
            assert!(span.start >= last, "span {span:?} overlaps previous end {last}");
            assert!(span.end <= src.len());
            last = span.end;
        }
        assert_eq!(last, src.len());
    }

    #[test]
    fn spans_agree_with_plain_tokenize() {
        let src = r#"<div a="1" b>text<script>x<y</script><!--c--><img/></div>"#;
        let with_spans: Vec<Token> = tokenize_spans(src).into_iter().map(|(t, _)| t).collect();
        assert_eq!(with_spans, tokenize(src));
    }

    #[test]
    fn bulk_escape_matches_per_char_semantics() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(escape_text("no escapes at all"), "no escapes at all");
        assert_eq!(escape_attr(r#"m&"q<"#), "m&amp;&quot;q&lt;");
        let mut out = String::from("pre:");
        escape_text_into("<x>", &mut out);
        assert_eq!(out, "pre:&lt;x&gt;");
    }
}
