//! DOM → HTML text serialization.

use crate::dom::{Document, NodeId, NodeKind};
use crate::tokenizer::{escape_attr_into, escape_text_into};
use crate::{is_raw_text, is_void};

impl Document {
    /// Serializes the whole document back to HTML text.
    ///
    /// Raw-text elements (`script`, `style`) emit their contents verbatim;
    /// other text is entity-escaped, so `parse → serialize → parse` is
    /// structure-preserving.
    pub fn to_html(&self) -> String {
        let mut out = String::new();
        self.to_html_into(&mut out);
        out
    }

    /// Serializes the whole document into a caller-provided buffer.
    ///
    /// Lets hot paths (the aggregator emits one MB-scale page per version)
    /// pre-size the output with a capacity hint instead of growing through
    /// repeated reallocation.
    pub fn to_html_into(&self, out: &mut String) {
        for &child in self.children(self.root()) {
            self.write_node(child, out);
        }
    }

    /// Serializes the subtree rooted at `id` (including `id` itself).
    pub fn outer_html(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_node(id, &mut out);
        out
    }

    /// Serializes the children of `id` (excluding `id` itself).
    pub fn inner_html(&self, id: NodeId) -> String {
        let mut out = String::new();
        let raw = matches!(&self.node(id).kind, NodeKind::Element(e) if is_raw_text(&e.name));
        for &child in self.children(id) {
            if raw {
                self.write_raw(child, &mut out);
            } else {
                self.write_node(child, &mut out);
            }
        }
        out
    }

    fn write_node(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Document => {
                for &child in self.children(id) {
                    self.write_node(child, out);
                }
            }
            NodeKind::Doctype(text) => {
                out.push_str("<!");
                out.push_str(text);
                out.push('>');
            }
            NodeKind::Comment(text) => {
                out.push_str("<!--");
                out.push_str(text);
                out.push_str("-->");
            }
            NodeKind::Text(text) => escape_text_into(text, out),
            NodeKind::Element(el) => {
                out.push('<');
                out.push_str(&el.name);
                for (name, value) in el.attrs() {
                    out.push(' ');
                    out.push_str(name);
                    if !value.is_empty() {
                        out.push_str("=\"");
                        escape_attr_into(value, out);
                        out.push('"');
                    }
                }
                out.push('>');
                if is_void(&el.name) {
                    return;
                }
                if is_raw_text(&el.name) {
                    for &child in self.children(id) {
                        self.write_raw(child, out);
                    }
                } else {
                    for &child in self.children(id) {
                        self.write_node(child, out);
                    }
                }
                out.push_str("</");
                out.push_str(&el.name);
                out.push('>');
            }
        }
    }

    fn write_raw(&self, id: NodeId, out: &mut String) {
        if let NodeKind::Text(text) = &self.node(id).kind {
            out.push_str(text);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_document;

    #[test]
    fn roundtrip_simple() {
        let src = r#"<!DOCTYPE html><html><body><p id="x">hi</p></body></html>"#;
        let doc = parse_document(src);
        assert_eq!(doc.to_html(), src);
    }

    #[test]
    fn roundtrip_is_stable() {
        // Serialize → parse → serialize must be a fixed point.
        let src = "<div class=a data-x='1'><p>a &amp; b</p><br><img src=pic.png></div>";
        let once = parse_document(src).to_html();
        let twice = parse_document(&once).to_html();
        assert_eq!(once, twice);
    }

    #[test]
    fn void_elements_not_closed() {
        let html = parse_document("<br><hr><img src=x>").to_html();
        assert_eq!(html, r#"<br><hr><img src="x">"#);
        assert!(!html.contains("</br>"));
    }

    #[test]
    fn text_is_escaped() {
        let mut doc = parse_document("<p></p>");
        let p = doc.find_tag("p").unwrap();
        let t = doc.create_text("a < b & c");
        doc.append_child(p, t);
        assert_eq!(doc.to_html(), "<p>a &lt; b &amp; c</p>");
    }

    #[test]
    fn attr_quotes_escaped() {
        let mut doc = parse_document("<div></div>");
        let d = doc.find_tag("div").unwrap();
        doc.set_attr(d, "title", r#"say "hi""#);
        assert_eq!(doc.to_html(), r#"<div title="say &quot;hi&quot;">x</div>"#.replace("x", ""));
    }

    #[test]
    fn script_contents_verbatim() {
        let src = "<script>if (a < b) { go(); }</script>";
        let doc = parse_document(src);
        assert_eq!(doc.to_html(), src);
    }

    #[test]
    fn style_contents_verbatim() {
        let src = "<style>p > a { color: #fff }</style>";
        assert_eq!(parse_document(src).to_html(), src);
    }

    #[test]
    fn outer_and_inner_html() {
        let doc = parse_document("<div><p>a</p><p>b</p></div>");
        let div = doc.find_tag("div").unwrap();
        assert_eq!(doc.outer_html(div), "<div><p>a</p><p>b</p></div>");
        assert_eq!(doc.inner_html(div), "<p>a</p><p>b</p>");
    }

    #[test]
    fn boolean_attribute_serialization() {
        let doc = parse_document("<input disabled>");
        assert_eq!(doc.to_html(), "<input disabled>");
    }

    #[test]
    fn comments_roundtrip() {
        let src = "<div><!-- keep me --></div>";
        assert_eq!(parse_document(src).to_html(), src);
    }
}
