//! Property tests: the parser and selector engine must be total (never
//! panic) and structurally stable on arbitrary input.

use kscope_html::{parse_document, tokenize, Selector};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tokenizer accepts any string without panicking.
    #[test]
    fn tokenizer_is_total(input in ".{0,300}") {
        let _ = tokenize(&input);
    }

    /// The parser accepts any string without panicking, and serialization
    /// of the result reparses to the same serialization (fixed point).
    #[test]
    fn parser_is_total_and_stable(input in ".{0,300}") {
        let doc = parse_document(&input);
        let once = doc.to_html();
        let twice = parse_document(&once).to_html();
        prop_assert_eq!(once, twice);
    }

    /// Angle-bracket soup in particular must not break framing.
    #[test]
    fn tag_soup_stable(input in "[<>a-z/\"'= ]{0,120}") {
        let once = parse_document(&input).to_html();
        let twice = parse_document(&once).to_html();
        prop_assert_eq!(once, twice);
    }

    /// Selector parsing never panics; parsed selectors never panic when
    /// matched against a document.
    #[test]
    fn selector_parse_total(input in "[#.a-z0-9 >,\\[\\]='\"*~^$-]{0,60}") {
        if let Ok(sel) = input.parse::<Selector>() {
            let doc = parse_document("<div id='a' class='b c'><p data-x='1'>t</p></div>");
            let _ = doc.select(&sel);
        }
    }

    /// Entity escaping round-trips arbitrary text content exactly.
    #[test]
    fn text_content_roundtrip(text in "[^<&]{0,80}") {
        let mut doc = parse_document("<p></p>");
        let p = doc.find_tag("p").unwrap();
        let t = doc.create_text(&text);
        doc.append_child(p, t);
        let reparsed = parse_document(&doc.to_html());
        let p2 = reparsed.find_tag("p").unwrap();
        prop_assert_eq!(reparsed.text_content(p2), text);
    }

    /// Attribute values round-trip through escaping (quotes and all).
    #[test]
    fn attr_value_roundtrip(value in "[a-zA-Z0-9 '\"&<>]{0,40}") {
        let mut doc = parse_document("<div></div>");
        let d = doc.find_tag("div").unwrap();
        doc.set_attr(d, "title", &value);
        let reparsed = parse_document(&doc.to_html());
        let d2 = reparsed.find_tag("div").unwrap();
        prop_assert_eq!(reparsed.attr(d2, "title"), Some(value.as_str()));
    }
}
