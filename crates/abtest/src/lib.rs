//! Live-site A/B testing — the baseline Kaleidoscope is compared against.
//!
//! §IV-B: the authors ran a classic A/B test on their research group's
//! landing page — every visitor was served version "A" (original) or "B"
//! (redesigned "Expand" button) with equal probability, and only the click
//! on the "Expand" button was recorded. It took 12 days to accumulate 100
//! visitors (51 A / 3 clicks vs 49 B / 6 clicks), and the resulting
//! significance was p = 0.133: not conclusive. Kaleidoscope answered the
//! same question in under a day with p < 1e-6.
//!
//! This crate simulates that setting: Poisson visitor arrivals over days,
//! 50/50 variant assignment, per-variant click models, day-by-day accrual,
//! and the one-tailed two-proportion significance analysis the VWO
//! calculator performs.
//!
//! # Example
//!
//! ```
//! use kscope_abtest::{AbTest, Variant};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let test = AbTest::new(
//!     Variant::new("A", 0.059),
//!     Variant::new("B", 0.122),
//!     8.3, // visitors per day
//! );
//! let mut rng = StdRng::seed_from_u64(7);
//! let run = test.run_until_visitors(100, &mut rng);
//! assert_eq!(run.total_visitors(), 100);
//! assert!(run.days_elapsed() > 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kscope_stats::tests::{two_proportion_z_test, Tail, TestResult};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Milliseconds per day.
pub const MS_PER_DAY: u64 = 86_400_000;

/// One version of the page under test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variant {
    /// Display name ("A", "B").
    pub name: String,
    /// Probability that a visitor performs the measured action (e.g.
    /// clicking the "Expand" button).
    pub click_prob: f64,
}

impl Variant {
    /// Creates a variant.
    ///
    /// # Panics
    ///
    /// Panics if `click_prob` is outside `[0, 1]`.
    pub fn new(name: &str, click_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&click_prob), "click_prob must be a probability");
        Self { name: name.to_string(), click_prob }
    }
}

/// One visit to the live site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Visit {
    /// Arrival time, milliseconds since the test started.
    pub t_ms: u64,
    /// Which variant was served: `0` = control, `1` = variation.
    pub variant: u8,
    /// Whether the visitor clicked.
    pub clicked: bool,
}

/// An A/B test configuration over a live site.
#[derive(Debug, Clone, PartialEq)]
pub struct AbTest {
    control: Variant,
    variation: Variant,
    visitors_per_day: f64,
}

impl AbTest {
    /// Creates an A/B test.
    ///
    /// # Panics
    ///
    /// Panics if `visitors_per_day` is not positive.
    pub fn new(control: Variant, variation: Variant, visitors_per_day: f64) -> Self {
        assert!(visitors_per_day > 0.0, "need positive traffic");
        Self { control, variation, visitors_per_day }
    }

    /// The control variant.
    pub fn control(&self) -> &Variant {
        &self.control
    }

    /// The variation.
    pub fn variation(&self) -> &Variant {
        &self.variation
    }

    /// Runs the test until `n` visitors have been served. Inter-arrival
    /// times are exponential; "at each visit, A and B versions are served
    /// with equal probability randomly" (§IV-B).
    pub fn run_until_visitors<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> AbTestRun {
        let rate_per_ms = self.visitors_per_day / MS_PER_DAY as f64;
        let mut t = 0.0f64;
        let visits = (0..n)
            .map(|_| {
                t += kscope_stats::dist::exponential_sample(rng, rate_per_ms);
                let variant = u8::from(rng.random_bool(0.5));
                let p =
                    if variant == 0 { self.control.click_prob } else { self.variation.click_prob };
                Visit { t_ms: t.round() as u64, variant, clicked: rng.random_bool(p) }
            })
            .collect();
        AbTestRun { control: self.control.clone(), variation: self.variation.clone(), visits }
    }

    /// Runs day-by-day until the one-tailed significance drops below
    /// `alpha` or `max_days` elapse. Returns the run and whether it
    /// reached significance — the "only 1 out of 8 A/B tests produce
    /// statistically significant results" phenomenon in miniature.
    pub fn run_until_significant<R: Rng + ?Sized>(
        &self,
        alpha: f64,
        max_days: f64,
        rng: &mut R,
    ) -> (AbTestRun, bool) {
        let rate_per_ms = self.visitors_per_day / MS_PER_DAY as f64;
        let horizon_ms = (max_days * MS_PER_DAY as f64) as u64;
        let mut t = 0.0f64;
        let mut visits: Vec<Visit> = Vec::new();
        let mut next_check_ms = MS_PER_DAY;
        loop {
            t += kscope_stats::dist::exponential_sample(rng, rate_per_ms);
            let t_ms = t.round() as u64;
            if t_ms > horizon_ms {
                break;
            }
            let variant = u8::from(rng.random_bool(0.5));
            let p = if variant == 0 { self.control.click_prob } else { self.variation.click_prob };
            visits.push(Visit { t_ms, variant, clicked: rng.random_bool(p) });
            if t_ms >= next_check_ms {
                next_check_ms += MS_PER_DAY;
                let run = AbTestRun {
                    control: self.control.clone(),
                    variation: self.variation.clone(),
                    visits: visits.clone(),
                };
                if run.has_both_arms() && run.significance().p_value < alpha {
                    return (run, true);
                }
            }
        }
        let run =
            AbTestRun { control: self.control.clone(), variation: self.variation.clone(), visits };
        let significant = run.has_both_arms() && run.significance().p_value < alpha;
        (run, significant)
    }
}

/// Per-variant tallies of a finished (or in-flight) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmCounts {
    /// Visitors served this variant.
    pub visitors: u64,
    /// Clicks observed.
    pub clicks: u64,
}

impl ArmCounts {
    /// Click-through rate (0 when no visitors).
    pub fn conversion(&self) -> f64 {
        if self.visitors == 0 {
            0.0
        } else {
            self.clicks as f64 / self.visitors as f64
        }
    }
}

/// The outcome of an A/B run: the ordered visit log plus analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct AbTestRun {
    control: Variant,
    variation: Variant,
    visits: Vec<Visit>,
}

impl AbTestRun {
    /// The raw visit log in arrival order.
    pub fn visits(&self) -> &[Visit] {
        &self.visits
    }

    /// Total visitors.
    pub fn total_visitors(&self) -> usize {
        self.visits.len()
    }

    /// Days from start to the last visit.
    pub fn days_elapsed(&self) -> f64 {
        self.visits.last().map(|v| v.t_ms as f64 / MS_PER_DAY as f64).unwrap_or(0.0)
    }

    /// Tallies for the control arm.
    pub fn control_counts(&self) -> ArmCounts {
        self.arm_counts(0)
    }

    /// Tallies for the variation arm.
    pub fn variation_counts(&self) -> ArmCounts {
        self.arm_counts(1)
    }

    fn arm_counts(&self, variant: u8) -> ArmCounts {
        let mut c = ArmCounts { visitors: 0, clicks: 0 };
        for v in &self.visits {
            if v.variant == variant {
                c.visitors += 1;
                c.clicks += u64::from(v.clicked);
            }
        }
        c
    }

    /// Whether both arms have at least one visitor (needed for the z-test).
    pub fn has_both_arms(&self) -> bool {
        self.control_counts().visitors > 0 && self.variation_counts().visitors > 0
    }

    /// One-tailed two-proportion z-test that the variation converts better
    /// — the VWO-calculator analysis the paper applies.
    ///
    /// # Panics
    ///
    /// Panics if either arm has no visitors.
    pub fn significance(&self) -> TestResult {
        let a = self.control_counts();
        let b = self.variation_counts();
        two_proportion_z_test(a.clicks, a.visitors, b.clicks, b.visitors, Tail::OneSidedGreater)
    }

    /// Cumulative visitors per arm over time: `(t_ms, control_so_far,
    /// variation_so_far)` — Fig. 7(b)'s x-axis data.
    pub fn cumulative_by_arm(&self) -> Vec<(u64, u64, u64)> {
        let mut a = 0;
        let mut b = 0;
        self.visits
            .iter()
            .map(|v| {
                if v.variant == 0 {
                    a += 1;
                } else {
                    b += 1;
                }
                (v.t_ms, a, b)
            })
            .collect()
    }

    /// Cumulative clicks per arm over cumulative visitors — the Fig. 7(b)
    /// series (`(total visitors so far, clicks A, clicks B)`).
    pub fn click_curve(&self) -> Vec<(usize, u64, u64)> {
        let mut a = 0;
        let mut b = 0;
        self.visits
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if v.clicked {
                    if v.variant == 0 {
                        a += 1;
                    } else {
                        b += 1;
                    }
                }
                (i + 1, a, b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// The paper's setting: ~8.3 visitors/day, click probabilities matching
    /// the observed 3/51 and 6/49.
    fn paper_test() -> AbTest {
        AbTest::new(Variant::new("A", 0.059), Variant::new("B", 0.122), 100.0 / 12.0)
    }

    #[test]
    fn hundred_visitors_takes_about_twelve_days() {
        let mut total_days = 0.0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            total_days += paper_test().run_until_visitors(100, &mut rng).days_elapsed();
        }
        let mean = total_days / 20.0;
        assert!((10.0..14.5).contains(&mean), "mean days = {mean}");
    }

    #[test]
    fn arms_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let run = paper_test().run_until_visitors(1000, &mut rng);
        let a = run.control_counts().visitors as f64;
        let b = run.variation_counts().visitors as f64;
        assert!((a - b).abs() < 120.0, "arms {a} vs {b}");
        assert_eq!(a as u64 + b as u64, 1000);
    }

    #[test]
    fn conversion_tracks_click_prob() {
        let mut rng = StdRng::seed_from_u64(2);
        let run = paper_test().run_until_visitors(20_000, &mut rng);
        assert!((run.control_counts().conversion() - 0.059).abs() < 0.01);
        assert!((run.variation_counts().conversion() - 0.122).abs() < 0.01);
    }

    #[test]
    fn paper_sized_run_is_rarely_significant() {
        // With n = 100 the paper's effect is underpowered: most runs stay
        // above alpha = 0.05 (p = 0.133 in the paper's own run).
        let mut significant = 0;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let run = paper_test().run_until_visitors(100, &mut rng);
            if run.has_both_arms() && run.significance().significant_at(0.05) {
                significant += 1;
            }
        }
        assert!(significant < 20, "only a minority should reach p<0.05, got {significant}/40");
    }

    #[test]
    fn large_run_is_significant() {
        let mut rng = StdRng::seed_from_u64(3);
        let run = paper_test().run_until_visitors(4000, &mut rng);
        assert!(run.significance().significant_at(0.01));
    }

    #[test]
    fn run_until_significant_stops_at_horizon() {
        // No true effect: must run to the horizon and stay insignificant
        // (up to alpha false-positive rate — seed chosen accordingly).
        let test = AbTest::new(Variant::new("A", 0.1), Variant::new("B", 0.1), 50.0);
        let mut rng = StdRng::seed_from_u64(4);
        let (run, significant) = test.run_until_significant(0.001, 5.0, &mut rng);
        assert!(!significant);
        assert!(run.days_elapsed() <= 5.0 + 1e-9);
    }

    #[test]
    fn run_until_significant_detects_strong_effect() {
        let test = AbTest::new(Variant::new("A", 0.05), Variant::new("B", 0.5), 200.0);
        let mut rng = StdRng::seed_from_u64(5);
        let (run, significant) = test.run_until_significant(0.01, 60.0, &mut rng);
        assert!(significant);
        assert!(run.days_elapsed() < 10.0, "strong effects resolve fast");
    }

    #[test]
    fn curves_are_monotone() {
        let mut rng = StdRng::seed_from_u64(6);
        let run = paper_test().run_until_visitors(200, &mut rng);
        let arms = run.cumulative_by_arm();
        assert!(arms.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(arms.last().unwrap().1 + arms.last().unwrap().2, 200);
        let clicks = run.click_curve();
        assert!(clicks.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].2 <= w[1].2));
    }

    #[test]
    fn empty_run_edge_cases() {
        let run = AbTestRun {
            control: Variant::new("A", 0.1),
            variation: Variant::new("B", 0.1),
            visits: vec![],
        };
        assert_eq!(run.days_elapsed(), 0.0);
        assert!(!run.has_both_arms());
        assert_eq!(run.control_counts().conversion(), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn variant_rejects_bad_probability() {
        let _ = Variant::new("X", 1.5);
    }
}
