//! Property tests: A/B run invariants.

use kscope_abtest::{AbTest, Variant};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arms partition the visitors exactly; conversions stay in [0,1];
    /// arrivals are sorted.
    #[test]
    fn run_invariants(n in 1usize..400, pa in 0.0f64..1.0, pb in 0.0f64..1.0, seed in 0u64..500) {
        let test = AbTest::new(Variant::new("A", pa), Variant::new("B", pb), 50.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let run = test.run_until_visitors(n, &mut rng);
        let a = run.control_counts();
        let b = run.variation_counts();
        prop_assert_eq!((a.visitors + b.visitors) as usize, n);
        prop_assert!(a.clicks <= a.visitors);
        prop_assert!(b.clicks <= b.visitors);
        prop_assert!((0.0..=1.0).contains(&a.conversion()));
        prop_assert!(run.visits().windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
        // Cumulative curves end at the totals.
        if let Some(&(_, ca, cb)) = run.cumulative_by_arm().last() {
            prop_assert_eq!(ca, a.visitors);
            prop_assert_eq!(cb, b.visitors);
        }
        if let Some(&(total, clicks_a, clicks_b)) = run.click_curve().last() {
            prop_assert_eq!(total, n);
            prop_assert_eq!(clicks_a, a.clicks);
            prop_assert_eq!(clicks_b, b.clicks);
        }
    }

    /// Extreme click probabilities produce extreme counts.
    #[test]
    fn degenerate_click_probabilities(n in 10usize..100, seed in 0u64..200) {
        let all = AbTest::new(Variant::new("A", 1.0), Variant::new("B", 1.0), 10.0);
        let none = AbTest::new(Variant::new("A", 0.0), Variant::new("B", 0.0), 10.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let r_all = all.run_until_visitors(n, &mut rng);
        prop_assert_eq!(
            r_all.control_counts().clicks + r_all.variation_counts().clicks,
            n as u64
        );
        let r_none = none.run_until_visitors(n, &mut rng);
        prop_assert_eq!(r_none.control_counts().clicks + r_none.variation_counts().clicks, 0);
    }

    /// Doubling traffic roughly halves elapsed time.
    #[test]
    fn traffic_scales_duration(rate in 5.0f64..100.0, seed in 0u64..100) {
        let slow = AbTest::new(Variant::new("A", 0.1), Variant::new("B", 0.1), rate);
        let fast = AbTest::new(Variant::new("A", 0.1), Variant::new("B", 0.1), rate * 4.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let d_slow = slow.run_until_visitors(200, &mut rng).days_elapsed();
        let d_fast = fast.run_until_visitors(200, &mut rng).days_elapsed();
        // 4x traffic: expect roughly 4x faster; allow wide slack for noise.
        prop_assert!(d_fast < d_slow / 2.0, "{d_fast} vs {d_slow}");
    }
}
