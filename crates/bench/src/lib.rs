//! Experiment harness: shared runners behind the figure binaries and the
//! Criterion benches.
//!
//! Every table and figure of the paper's evaluation maps to one binary in
//! `src/bin/` (see DESIGN.md §4); the runners here set up the corpora,
//! aggregate the tests, recruit the simulated crowds, and hand back the
//! campaign outcomes the binaries print.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod crash;

use kscope_core::corpus;
use kscope_core::{Aggregator, Campaign, CampaignOutcome, QuestionKind, TestParams};
use kscope_crowd::platform::{Channel, InLabRecruiter, JobSpec, Platform, Recruitment};
use kscope_store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

/// Who performs the test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cohort {
    /// Paid crowd workers from the given channel at the given reward.
    Crowd {
        /// Recruitment channel.
        channel: Channel,
        /// Reward per participant, USD.
        reward_usd: f64,
    },
    /// Trusted in-lab participants recruited over `days`.
    InLab {
        /// Recruitment window in days.
        days: f64,
    },
}

impl Cohort {
    /// The paper's FigureEight setting: historically trustworthy, $0.11.
    pub fn paper_crowd() -> Self {
        Cohort::Crowd { channel: Channel::HistoricallyTrustworthy, reward_usd: 0.11 }
    }

    /// The paper's in-lab setting: one week of recruiting.
    pub fn paper_lab() -> Self {
        Cohort::InLab { days: 7.0 }
    }
}

/// A fully-run study: parameters, recruitment, and campaign outcome.
#[derive(Debug)]
pub struct Study {
    /// The test parameters used.
    pub params: TestParams,
    /// The recruitment that supplied the participants.
    pub recruitment: Recruitment,
    /// The campaign outcome (sessions, QC, analyses).
    pub outcome: CampaignOutcome,
}

fn run_study(
    build: impl FnOnce(usize) -> (kscope_singlefile::ResourceStore, TestParams),
    questions: &[(&str, QuestionKind)],
    participants: usize,
    cohort: Cohort,
    seed: u64,
) -> Study {
    let (store, params) = build(participants);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let prepared = Aggregator::new(db.clone(), grid.clone())
        .prepare(&params, &store, &mut rng)
        .expect("corpus pages always prepare");
    let recruitment = match cohort {
        Cohort::Crowd { channel, reward_usd } => Platform
            .post_job(&JobSpec::new(&params.test_id, reward_usd, participants, channel), &mut rng),
        Cohort::InLab { days } => InLabRecruiter::new(participants, days).recruit(&mut rng),
    };
    let mut campaign = Campaign::new(db, grid);
    for (q, kind) in questions {
        campaign = campaign.with_question(q, *kind);
    }
    if matches!(cohort, Cohort::InLab { .. }) {
        campaign = campaign.in_lab();
    }
    let outcome = campaign
        .run(&params, &prepared, &recruitment, &mut rng)
        .expect("campaign over prepared test");
    Study { params, recruitment, outcome }
}

/// Runs the §IV-A font-size study (5 Wikipedia versions, 10–22 pt).
pub fn run_font_study(participants: usize, cohort: Cohort, seed: u64) -> Study {
    run_study(
        corpus::font_size_study,
        &[(
            "Which webpage's font size is more suitable (easier) for reading?",
            QuestionKind::FontReadability,
        )],
        participants,
        cohort,
        seed,
    )
}

/// Runs the §IV-B expand-button study (A/B group page, three questions).
pub fn run_expand_study(participants: usize, cohort: Cohort, seed: u64) -> Study {
    run_study(
        corpus::expand_button_study,
        &[
            ("Which webpage is graphically more appealing?", QuestionKind::Appeal),
            ("Which version of the 'Expand' button looks better?", QuestionKind::StyleBetter),
            ("Which version of the 'Expand' button is more visible?", QuestionKind::Visibility),
        ],
        participants,
        cohort,
        seed,
    )
}

/// Runs the §IV-C uPLT case study (nav-first vs text-first loading).
pub fn run_uplt_study(participants: usize, cohort: Cohort, seed: u64) -> Study {
    run_study(
        corpus::uplt_case_study,
        &[("Which version of the webpage seems ready to use first?", QuestionKind::ReadyToUse)],
        participants,
        cohort,
        seed,
    )
}

/// The standard question text of the font study.
pub const FONT_QUESTION: &str = "Which webpage's font size is more suitable (easier) for reading?";
/// The three §IV-B questions, A/B/C in paper order.
pub const EXPAND_QUESTIONS: [&str; 3] = [
    "Which webpage is graphically more appealing?",
    "Which version of the 'Expand' button looks better?",
    "Which version of the 'Expand' button is more visible?",
];
/// The §IV-C question.
pub const UPLT_QUESTION: &str = "Which version of the webpage seems ready to use first?";

/// Pretty-prints a two-column series.
pub fn print_series(title: &str, header: (&str, &str), rows: &[(String, String)]) {
    println!("\n== {title} ==");
    println!("{:<28} {}", header.0, header.1);
    for (x, y) in rows {
        println!("{x:<28} {y}");
    }
}

/// Formats a millisecond duration as hours or days.
pub fn human_duration(ms: u64) -> String {
    let hours = ms as f64 / 3_600_000.0;
    if hours < 48.0 {
        format!("{hours:.1} h")
    } else {
        format!("{:.1} days", hours / 24.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn font_study_runs_end_to_end() {
        let study = run_font_study(12, Cohort::paper_crowd(), 1);
        assert_eq!(study.outcome.sessions.len(), 12);
        assert!(!study.outcome.quality.kept.is_empty());
    }

    #[test]
    fn expand_study_runs_all_three_questions() {
        let study = run_expand_study(12, Cohort::paper_crowd(), 2);
        for q in EXPAND_QUESTIONS {
            let qa = study.outcome.question_analysis(q, true);
            assert!(qa.two_version_votes().is_some(), "missing votes for {q}");
        }
    }

    #[test]
    fn uplt_study_runs() {
        let study = run_uplt_study(12, Cohort::paper_lab(), 3);
        let qa = study.outcome.question_analysis(UPLT_QUESTION, false);
        assert_eq!(qa.two_version_votes().unwrap().total(), 12);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(human_duration(3_600_000), "1.0 h");
        assert_eq!(human_duration(3 * 86_400_000), "3.0 days");
    }
}
