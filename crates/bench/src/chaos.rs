//! Deterministic network-fault chaos harness (DESIGN.md §15).
//!
//! [`FaultTransport`] wraps the client socket layer with a seeded
//! [`NetFaultModel`]: connection refusals, injected delays, torn request
//! writes, mid-body connection resets, and duplicate deliveries — every
//! fault drawn from one `StdRng`, so a `(campaign seed, net seed)` pair
//! replays the exact same disturbance schedule. [`run_chaos_campaign`]
//! drives a full supervised campaign's worth of uploads through it
//! against a real loopback server and checks that every acknowledged
//! response is stored exactly once, while [`run_outage_probe`] verifies
//! the client discipline — retry budget and circuit breaker — under a
//! total outage.

use kscope_browser::ExtensionClient;
use kscope_core::corpus;
use kscope_core::supervisor::{CampaignSupervisor, SupervisorConfig};
use kscope_core::{Aggregator, Campaign, QuestionKind};
use kscope_crowd::faults::{FaultModel, NetFault, NetFaultModel};
use kscope_crowd::platform::{Channel, JobSpec};
use kscope_server::api::{summarize_responses, CoreServerApi};
use kscope_server::client::{self, SessionConfig, TcpTransport, Transport, Wire};
use kscope_server::http::{Method, Request};
use kscope_server::overload::{epoch_ms, DEADLINE_HEADER};
use kscope_server::{HttpServer, Session};
use kscope_store::{Database, GridStore};
use kscope_telemetry::Registry;
use rand::{rngs::StdRng, SeedableRng};
use serde_json::{json, Value};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The font study's comparison question (the soak campaign's subject).
pub const FONT_QUESTION: &str = "Which webpage's font size is more suitable (easier) for reading?";

fn reset_err() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::ConnectionReset, "injected connection reset")
}

/// Tally of injected faults, by kind.
#[derive(Debug, Default)]
pub struct FaultCounts {
    refused: AtomicU64,
    delayed: AtomicU64,
    torn: AtomicU64,
    reset: AtomicU64,
    duplicated: AtomicU64,
}

/// A point-in-time copy of [`FaultCounts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTally {
    /// Connection attempts refused.
    pub refused: u64,
    /// Requests delivered late.
    pub delayed: u64,
    /// Request writes torn mid-frame.
    pub torn: u64,
    /// Connections reset mid-response.
    pub reset: u64,
    /// Requests delivered twice.
    pub duplicated: u64,
}

impl FaultCounts {
    fn snapshot(&self) -> FaultTally {
        FaultTally {
            refused: self.refused.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
            reset: self.reset.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
        }
    }
}

impl FaultTally {
    /// Total faults of every kind.
    pub fn total(&self) -> u64 {
        self.refused + self.delayed + self.torn + self.reset + self.duplicated
    }

    fn to_json(self) -> Value {
        json!({
            "refused": self.refused,
            "delayed": self.delayed,
            "torn_writes": self.torn,
            "mid_body_resets": self.reset,
            "duplicate_deliveries": self.duplicated,
            "total": self.total(),
        })
    }
}

/// A [`Transport`] that interposes a seeded [`NetFaultModel`] between the
/// client and the real TCP socket. All sessions sharing one transport
/// draw faults from the same RNG stream, so a single seed fixes the
/// whole disturbance schedule.
pub struct FaultTransport {
    model: NetFaultModel,
    rng: Arc<Mutex<StdRng>>,
    counts: Arc<FaultCounts>,
}

impl FaultTransport {
    /// A transport injecting `model`'s faults from `seed`.
    pub fn new(model: NetFaultModel, seed: u64) -> Self {
        Self {
            model,
            rng: Arc::new(Mutex::new(StdRng::seed_from_u64(seed))),
            counts: Arc::new(FaultCounts::default()),
        }
    }

    /// Injected-fault tallies so far.
    pub fn tally(&self) -> FaultTally {
        self.counts.snapshot()
    }
}

impl Transport for FaultTransport {
    fn connect(&self, addr: SocketAddr, timeout: Duration) -> std::io::Result<Box<dyn Wire>> {
        let refused = {
            let mut rng = self.rng.lock().expect("fault rng poisoned");
            self.model.sample_connect(&mut *rng)
        };
        if refused {
            self.counts.refused.fetch_add(1, Ordering::Relaxed);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "injected connection refusal",
            ));
        }
        let inner = TcpTransport.connect(addr, timeout)?;
        Ok(Box::new(FaultWire {
            inner,
            model: self.model,
            rng: Arc::clone(&self.rng),
            counts: Arc::clone(&self.counts),
            buf: Vec::new(),
            write_poisoned: false,
            read_allowance: None,
        }))
    }
}

/// One faulty connection: buffers each outgoing request and applies a
/// single sampled [`NetFault`] at delivery time (the first read or flush
/// after the writes).
struct FaultWire {
    inner: Box<dyn Wire>,
    model: NetFaultModel,
    rng: Arc<Mutex<StdRng>>,
    counts: Arc<FaultCounts>,
    /// Request bytes written but not yet delivered.
    buf: Vec<u8>,
    /// A torn write or duplicate delivery killed this socket for further
    /// requests; the next delivery fails with a reset so the session
    /// reconnects instead of desynchronizing on stale bytes.
    write_poisoned: bool,
    /// Armed by [`NetFault::MidBodyReset`]: response bytes the client may
    /// still read before the connection resets.
    read_allowance: Option<usize>,
}

impl FaultWire {
    fn deliver_pending(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.write_poisoned {
            self.buf.clear();
            return Err(reset_err());
        }
        let frame = std::mem::take(&mut self.buf);
        let fault = {
            let mut rng = self.rng.lock().expect("fault rng poisoned");
            self.model.sample_request(&mut *rng, frame.len())
        };
        match fault {
            NetFault::None => self.inner.write_all(&frame)?,
            NetFault::Delay { ms } => {
                self.counts.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.write_all(&frame)?;
            }
            NetFault::TornWrite { keep } => {
                self.counts.torn.fetch_add(1, Ordering::Relaxed);
                let keep = keep.min(frame.len());
                self.inner.write_all(&frame[..keep])?;
                let _ = self.inner.flush();
                self.write_poisoned = true;
                return Err(reset_err());
            }
            NetFault::MidBodyReset { after } => {
                self.counts.reset.fetch_add(1, Ordering::Relaxed);
                self.inner.write_all(&frame)?;
                self.read_allowance = Some(after);
            }
            NetFault::DuplicateDelivery => {
                // The server sees the request twice back-to-back (a
                // retransmit-style duplicate its idempotent intake must
                // collapse). The second response would desynchronize
                // this keep-alive socket, so the wire dies on the next
                // delivery and the session reconnects.
                self.counts.duplicated.fetch_add(1, Ordering::Relaxed);
                self.inner.write_all(&frame)?;
                self.inner.write_all(&frame)?;
                self.write_poisoned = true;
            }
        }
        self.inner.flush()
    }
}

impl std::io::Write for FaultWire {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.deliver_pending()
    }
}

impl std::io::Read for FaultWire {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        self.deliver_pending()?;
        match self.read_allowance {
            Some(0) => Err(reset_err()),
            Some(n) => {
                let take = out.len().min(n);
                let got = self.inner.read(&mut out[..take])?;
                self.read_allowance = Some(n - got);
                Ok(got)
            }
            None => self.inner.read(out),
        }
    }
}

impl Wire for FaultWire {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }
}

/// Knobs for [`run_chaos_campaign`].
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// QC-surviving sessions the supervisor must reach.
    pub target_kept: usize,
    /// Initial recruitment quota.
    pub quota: usize,
    /// Campaign seed: corpus prep, population, session faults.
    pub seed: u64,
    /// Network seed: the fault transport's RNG.
    pub net_seed: u64,
    /// Tester-level fault model for the supervised campaign.
    pub session_faults: FaultModel,
    /// Network-level fault model for the upload replay.
    pub net: NetFaultModel,
}

impl ChaosConfig {
    /// The standard soak: the fault-matrix campaign shape (target 20,
    /// quota 30) with a flaky population, replayed through a lossy
    /// network disturbing `net_rate` of exchanges.
    pub fn soak(seed: u64, net_seed: u64, net_rate: f64) -> Self {
        Self {
            target_kept: 20,
            quota: 30,
            seed,
            net_seed,
            session_faults: FaultModel {
                abandon_mid_page: 0.25 * 0.45,
                abandon_mid_questionnaire: 0.25 * 0.35,
                straggler: 0.25 * 0.20,
                skip_question: 0.02,
                disconnect_retry: 0.15,
                duplicate_upload: 1.0,
            },
            net: NetFaultModel::lossy(net_rate),
        }
    }

    /// A smaller, faster soak for `--quick` runs.
    pub fn quick(seed: u64, net_seed: u64, net_rate: f64) -> Self {
        Self { target_kept: 10, quota: 15, ..Self::soak(seed, net_seed, net_rate) }
    }
}

/// Everything [`run_chaos_campaign`] measured and verified.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Workers recruited by the supervised campaign.
    pub recruited: usize,
    /// Sessions that completed cleanly.
    pub completed: usize,
    /// Sessions whose duplicate upload was suppressed.
    pub deduped: usize,
    /// Sessions reclaimed without a stored response.
    pub abandoned: usize,
    /// Whether `completed + deduped + abandoned == recruited`.
    pub accounted: bool,
    /// Response rows in the in-process campaign database.
    pub rows_source: usize,
    /// Response rows stored by the server after the faulty replay.
    pub rows_server: usize,
    /// Uploads acknowledged by the server (200 or 201).
    pub acked: usize,
    /// Fresh clients started after a session exhausted its retry budget.
    pub restarts: u64,
    /// GET requests (test info) attempted through the faulty network.
    pub get_probes: u64,
    /// Whether the server's `(contributor, submission)` key set equals
    /// the source set exactly — no lost ack stored twice, none missing.
    pub keys_match: bool,
    /// Whether server-side result aggregation equals the in-process one.
    pub summaries_match: bool,
    /// Borda ranking from the supervised campaign (filtered sessions).
    pub ranking: Vec<usize>,
    /// Injected network faults, by kind.
    pub faults: FaultTally,
    /// `client.*` counters accumulated across all replay sessions.
    pub client_attempts: u64,
    /// `client.retries_total`.
    pub client_retries: u64,
    /// `client.retry_budget_spent_total`.
    pub client_budget_spent: u64,
    /// `client.retry_budget_denied_total`.
    pub client_budget_denied: u64,
    /// `client.breaker_open_total`.
    pub client_breaker_opens: u64,
    /// `server.shed_total`.
    pub server_shed: u64,
    /// `server.expired_admission_total`.
    pub server_expired_admission: u64,
    /// `server.expired_dequeued_total`.
    pub server_expired_dequeued: u64,
    /// `server.expired_handler_total`.
    pub server_expired_handler: u64,
    /// `server.responses_deduped_total`.
    pub server_deduped: u64,
    /// Status of the expired-deadline probe (must be 504).
    pub expired_probe_status: u16,
    /// `Retry-After` seconds carried by the expired-deadline probe.
    pub expired_probe_retry_after_secs: Option<u64>,
}

impl ChaosReport {
    /// The report as a JSON document (the shape `BENCH_chaos.json` uses).
    pub fn to_json(&self) -> Value {
        json!({
            "health": {
                "recruited": self.recruited,
                "completed": self.completed,
                "deduped": self.deduped,
                "abandoned": self.abandoned,
                "accounted": self.accounted,
            },
            "replay": {
                "rows_source": self.rows_source,
                "rows_server": self.rows_server,
                "acked": self.acked,
                "restarts": self.restarts,
                "get_probes": self.get_probes,
                "keys_match": self.keys_match,
                "summaries_match": self.summaries_match,
            },
            "ranking": self.ranking.iter().map(|r| *r as u64).collect::<Vec<u64>>(),
            "faults": self.faults.to_json(),
            "client": {
                "attempts": self.client_attempts,
                "retries": self.client_retries,
                "budget_spent": self.client_budget_spent,
                "budget_denied": self.client_budget_denied,
                "breaker_opens": self.client_breaker_opens,
            },
            "server": {
                "shed": self.server_shed,
                "expired_admission": self.server_expired_admission,
                "expired_dequeued": self.server_expired_dequeued,
                "expired_handler": self.server_expired_handler,
                "deduped": self.server_deduped,
            },
            "expired_probe": {
                "status": self.expired_probe_status,
                "retry_after_secs": self.expired_probe_retry_after_secs,
            },
        })
    }
}

/// The replay session tuning: fast, deterministic backoff, no hedging
/// (hedge timing is wall-clock-dependent), short breaker cooldown so an
/// unlucky fault burst stalls a session for milliseconds, not minutes.
fn replay_config(jitter_seed: u64) -> SessionConfig {
    SessionConfig {
        timeout: Duration::from_secs(5),
        retries: 2,
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(50),
        jitter_seed,
        breaker_cooldown: Duration::from_millis(10),
        hedge_gets: false,
        ..SessionConfig::default()
    }
}

fn row_key(row: &Value) -> String {
    format!(
        "{}|{}",
        row["contributor_id"].as_str().unwrap_or(""),
        row["submission_id"].as_str().unwrap_or("")
    )
}

/// Runs a supervised font campaign in process, then replays every stored
/// response through a real loopback server over a [`FaultTransport`],
/// and cross-checks the two stores: every acknowledged upload must be
/// stored exactly once, and the server-side aggregation must equal the
/// in-process one.
///
/// # Panics
///
/// Panics if the campaign itself errors or a row cannot be delivered
/// after 50 fresh-client restarts (with any fault rate below 1.0 the
/// retry discipline converges long before that).
pub fn run_chaos_campaign(config: &ChaosConfig) -> ChaosReport {
    // 1. The ground truth: a supervised campaign with tester-level
    // faults, entirely in process (the PR 4 fault-matrix shape).
    let (store, params) = corpus::font_size_study(config.quota);
    let db_source = Database::new();
    let grid_source = GridStore::new();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let prepared = Aggregator::new(db_source.clone(), grid_source.clone())
        .prepare(&params, &store, &mut rng)
        .expect("corpus pages always prepare");
    let campaign = Campaign::new(db_source.clone(), grid_source)
        .with_question(params.question[0].text(), QuestionKind::FontReadability);
    let spec = JobSpec::new(&params.test_id, 0.11, config.quota, Channel::Open);
    let outcome = CampaignSupervisor::new(&campaign, SupervisorConfig::new(config.target_kept))
        .with_faults(config.session_faults)
        .run(&params, &prepared, &spec, &mut rng)
        .expect("a faulty population must not error the supervisor");

    // 2. A second, pristine server-side store prepared from the same
    // corpus and seed, behind a real loopback HTTP server.
    let db_server = Database::new();
    let grid_server = GridStore::new();
    let mut server_rng = StdRng::seed_from_u64(config.seed);
    Aggregator::new(db_server.clone(), grid_server.clone())
        .prepare(&params, &store, &mut server_rng)
        .expect("server-side prepare");
    let registry = Arc::new(Registry::new());
    let api =
        CoreServerApi::new(db_server.clone(), grid_server).with_telemetry(Arc::clone(&registry));
    let server = HttpServer::bind_with_telemetry(
        "127.0.0.1:0",
        api.into_router(),
        4,
        Some(Arc::clone(&registry)),
    )
    .expect("bind chaos server");
    let addr = server.local_addr();

    // 3. Replay every stored response through the faulty network, one
    // extension client per tester session, each stamping its session
    // lease's wall-clock deadline onto every request.
    let transport = Arc::new(FaultTransport::new(config.net, config.net_seed));
    let rows = db_source.collection("responses").all();
    let now_ms = epoch_ms();
    let mut acked = 0usize;
    let mut restarts = 0u64;
    let mut get_probes = 0u64;
    for (i, row) in rows.iter().enumerate() {
        let mut body = row.clone();
        if let Some(obj) = body.as_object_mut() {
            obj.remove("_id");
        }
        let contributor = row["contributor_id"].as_str().unwrap_or("");
        let deadline = outcome
            .leases
            .iter()
            .find(|l| l.contributor_id == contributor)
            .map_or(now_ms + 120_000, |l| l.wall_deadline_ms(now_ms));
        let mut delivered = false;
        for restart in 0..50u32 {
            if restart > 0 {
                restarts += 1;
            }
            let jitter_seed = config.net_seed ^ ((i as u64) << 8) ^ u64::from(restart);
            let mut ext = ExtensionClient::with_transport(
                addr,
                replay_config(jitter_seed),
                Arc::clone(&transport) as Arc<dyn Transport>,
            );
            ext.set_telemetry(&registry);
            ext.set_deadline_ms(Some(deadline));
            if restart == 0 && i % 5 == 0 {
                // Some GET traffic under faults: fetch the test metadata
                // the way a starting extension session would.
                get_probes += 1;
                let _ = ext.test_info(&prepared.test_id);
            }
            if ext
                .upload_json_with_retry(&prepared.test_id, &body, 4, Duration::from_millis(1))
                .is_ok()
            {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "row {i} undeliverable after 50 fresh-client restarts");
        acked += 1;
    }

    // 4. The deadline-propagation probe: a request stamped with an
    // already-expired deadline must be refused at admission with a 504
    // carrying Retry-After, before any handler runs.
    let mut expired_req =
        Request::new(Method::Post, &format!("/api/tests/{}/responses", prepared.test_id))
            .with_body(b"{}".to_vec());
    expired_req
        .headers
        .insert(DEADLINE_HEADER.into(), epoch_ms().saturating_sub(5_000).to_string());
    let expired_resp = client::request(addr, expired_req).expect("expired probe transmits");
    let expired_probe_status = expired_resp.status.0;
    let expired_probe_retry_after_secs = expired_resp.retry_after().map(|d| d.as_secs());

    // 5. Cross-check the stores: exactly-once delivery and identical
    // aggregation.
    let server_rows = db_server.collection("responses").all();
    let mut source_keys: Vec<String> = rows.iter().map(row_key).collect();
    let mut server_keys: Vec<String> = server_rows.iter().map(row_key).collect();
    source_keys.sort();
    server_keys.sort();
    let keys_match = source_keys == server_keys;
    let summaries_match = summarize_responses(&prepared.test_id, &rows)
        == summarize_responses(&prepared.test_id, &server_rows);

    let counter = |name: &str| registry.counter_value(name, &[]).unwrap_or(0);
    let report = ChaosReport {
        recruited: outcome.health.recruited,
        completed: outcome.health.completed,
        deduped: outcome.health.deduped,
        abandoned: outcome.health.abandoned,
        accounted: outcome.health.accounted(),
        rows_source: rows.len(),
        rows_server: server_rows.len(),
        acked,
        restarts,
        get_probes,
        keys_match,
        summaries_match,
        ranking: outcome.outcome.question_analysis(FONT_QUESTION, true).ranking(),
        faults: transport.tally(),
        client_attempts: counter("client.attempts_total"),
        client_retries: counter("client.retries_total"),
        client_budget_spent: counter("client.retry_budget_spent_total"),
        client_budget_denied: counter("client.retry_budget_denied_total"),
        client_breaker_opens: counter("client.breaker_open_total"),
        server_shed: counter("server.shed_total"),
        server_expired_admission: counter("server.expired_admission_total"),
        server_expired_dequeued: counter("server.expired_dequeued_total"),
        server_expired_handler: counter("server.expired_handler_total"),
        server_deduped: counter("server.responses_deduped_total"),
        expired_probe_status,
        expired_probe_retry_after_secs,
    };
    server.shutdown();
    report
}

/// What [`run_outage_probe`] measured.
#[derive(Debug, Clone, Copy)]
pub struct OutageReport {
    /// Requests the caller issued.
    pub requests: u64,
    /// Network attempts actually made (`client.attempts_total`).
    pub attempts: u64,
    /// The retry-budget bound: requests + banked budget.
    pub bound: u64,
    /// Whether `attempts <= bound` — the budget held.
    pub within_budget: bool,
    /// Retries denied by the empty budget.
    pub budget_denied: u64,
    /// Times the circuit breaker opened.
    pub breaker_opens: u64,
    /// Final `client.breaker_state` gauge (0 closed / 1 open / 2 half-open).
    pub breaker_state: i64,
}

impl OutageReport {
    /// The report as a JSON document.
    pub fn to_json(&self) -> Value {
        json!({
            "requests": self.requests,
            "attempts": self.attempts,
            "bound": self.bound,
            "within_budget": self.within_budget,
            "budget_denied": self.budget_denied,
            "breaker_opens": self.breaker_opens,
            "breaker_state": self.breaker_state,
        })
    }
}

/// Issues `requests` GETs into a total outage (every connect refused) and
/// reports, from telemetry alone, whether the client discipline held:
/// total network attempts bounded by the retry budget, and the circuit
/// breaker open at the end.
pub fn run_outage_probe(requests: u64, seed: u64) -> OutageReport {
    let registry = Arc::new(Registry::new());
    let transport = Arc::new(FaultTransport::new(NetFaultModel::outage(), seed));
    // A long cooldown keeps the breaker open for the whole probe — no
    // half-open probes sneak extra attempts in. The threshold is raised
    // past the banked retry budget so the probe exercises the layering:
    // the budget runs dry first (retries denied), then the accumulating
    // failures trip the breaker, and the remaining requests never touch
    // the network at all.
    let config = SessionConfig {
        breaker_threshold: 20,
        breaker_cooldown: Duration::from_secs(60),
        ..replay_config(seed)
    };
    let addr: SocketAddr = "127.0.0.1:1".parse().expect("static addr");
    let mut session = Session::with_transport(addr, config.clone(), transport);
    session.set_telemetry(&registry);
    for _ in 0..requests {
        let _ = session.get("/ping");
    }
    let attempts = registry.counter_value("client.attempts_total", &[]).unwrap_or(0);
    let bound = requests + config.retry_budget_cap.ceil() as u64;
    OutageReport {
        requests,
        attempts,
        bound,
        within_budget: attempts <= bound,
        budget_denied: registry.counter_value("client.retry_budget_denied_total", &[]).unwrap_or(0),
        breaker_opens: registry.counter_value("client.breaker_open_total", &[]).unwrap_or(0),
        breaker_state: registry.gauge_value("client.breaker_state", &[]).unwrap_or(-1),
    }
}
