//! Figure 4 — Kaleidoscope vs in-lab testing: font-size ranking
//! distributions.
//!
//! Panels: (a) Kaleidoscope raw, (b) Kaleidoscope with quality control,
//! (c) in-lab testing. Each prints, per ranking level A–E, the percentage
//! of participants assigning that rank to each font size.
//!
//! Paper shape to reproduce: most participants vote 12 pt as rank "A" in
//! all three panels; the runner-up at rank A is 10 pt in the raw panel but
//! 14 pt once quality control is applied (and in-lab), because AlwaysLeft
//! spammers systematically favour the smaller font shown in the left pane.

use kscope_bench::{run_font_study, Cohort, FONT_QUESTION};
use kscope_core::analysis::RankDistribution;
use kscope_core::corpus::FONT_STUDY_SIZES;

fn print_panel(title: &str, dist: &RankDistribution) {
    println!("\n-- {title} --");
    print!("{:<8}", "rank");
    for pt in FONT_STUDY_SIZES {
        print!("{:>8}", format!("{pt:.0}pt"));
    }
    println!();
    let labels = ["A", "B", "C", "D", "E"];
    for (rank, label) in labels.iter().enumerate() {
        print!("{label:<8}");
        for version in 0..FONT_STUDY_SIZES.len() {
            print!("{:>7.1}%", dist.percentage(version, rank));
        }
        println!();
    }
    let modal = dist.modal_version_at_rank(0);
    let order = dist.order_by_top_votes();
    println!(
        "rank-A winner: {:.0}pt; rank-A order: {:?}",
        FONT_STUDY_SIZES[modal],
        order.iter().map(|&v| format!("{:.0}pt", FONT_STUDY_SIZES[v])).collect::<Vec<_>>()
    );
}

fn main() {
    println!("Figure 4: Kaleidoscope vs in-lab testing — question feedback");
    println!("Paper: 100 FigureEight testers ($0.11 each, ~12 h) vs 50 in-lab (1 week).");

    let crowd = run_font_study(100, Cohort::paper_crowd(), 52);
    let lab = run_font_study(50, Cohort::paper_lab(), 53);

    let raw = crowd.outcome.rank_distribution(FONT_QUESTION, false);
    let filtered = crowd.outcome.rank_distribution(FONT_QUESTION, true);
    let lab_dist = lab.outcome.rank_distribution(FONT_QUESTION, true);

    print_panel("(a) Kaleidoscope (raw)", &raw);
    print_panel("(b) Kaleidoscope (quality control)", &filtered);
    print_panel("(c) In-lab testing", &lab_dist);

    println!(
        "\nquality control kept {}/{} crowd sessions ({:?} dropped)",
        crowd.outcome.quality.kept.len(),
        crowd.outcome.sessions.len(),
        crowd.outcome.quality.dropped.len(),
    );
    let qa = crowd.outcome.question_analysis(FONT_QUESTION, true);
    println!(
        "aggregate Borda ranking (QC): {:?}",
        qa.ranking().iter().map(|&v| format!("{:.0}pt", FONT_STUDY_SIZES[v])).collect::<Vec<_>>()
    );
    let kappa = |o: &kscope_core::CampaignOutcome, filtered: bool| {
        o.question_analysis(FONT_QUESTION, filtered)
            .agreement_kappa()
            .map(|k| format!("{k:.2}"))
            .unwrap_or_else(|| "n/a".to_string())
    };
    println!(
        "inter-rater agreement (Fleiss kappa): raw {} -> QC {} | in-lab {}",
        kappa(&crowd.outcome, false),
        kappa(&crowd.outcome, true),
        kappa(&lab.outcome, true),
    );
    println!("\nPaper check: 12pt modal at rank A in all panels; raw runner-up 10pt,");
    println!("QC/in-lab runner-up 14pt; QC panel closer to in-lab than raw.");
}
