//! Network-profile ablation: the same page replayed under different
//! simulated connections (§III-A's "network profiles").
//!
//! The waterfall simulator converts the page's resource sizes into a
//! per-selector reveal schedule; the visual metrics then show how each
//! connection class experiences the same page.

use kscope_core::corpus;
use kscope_html::parse_document;
use kscope_pageload::metrics::UpltWeights;
use kscope_pageload::network::{article_resources, NetworkProfile, Waterfall};
use kscope_pageload::{Layout, PaintTimeline, RevealPlan, Viewport, VisualMetrics};
use kscope_singlefile::{Inliner, ResourceStore};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // Build the corpus article and measure its real resource sizes.
    let mut store = ResourceStore::new();
    corpus::write_wikipedia_article(&mut store, "w", 12.0);
    // Give the images realistic weights.
    store.insert("w/img/hyrax.jpg", "image/jpeg", vec![0xaa; 180_000]);
    store.insert("w/img/map.png", "image/png", vec![0xbb; 90_000]);
    let html_bytes = store.get("w/index.html").unwrap().data.len();
    let css_bytes = store.get("w/style.css").unwrap().data.len();
    let resources = article_resources(
        html_bytes,
        css_bytes,
        &[("#infobox img".to_string(), 180_000), ("#infobox table".to_string(), 90_000)],
    );

    let single = Inliner::new(&store).inline("w/index.html").unwrap();
    let doc = parse_document(&single.html);
    let layout = Layout::compute(&doc, Viewport::desktop());
    let weights = UpltWeights::reader_defaults();

    println!("Same page, five connections (waterfall-derived reveal schedules)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "profile", "TTFP", "ATF", "SpeedIndex", "PLT", "uPLT"
    );
    for profile in [
        NetworkProfile::fiber(),
        NetworkProfile::cable(),
        NetworkProfile::lte(),
        NetworkProfile::three_g(),
        NetworkProfile::two_g(),
    ] {
        let waterfall = Waterfall::simulate(&profile, &resources);
        let spec = waterfall.to_load_spec();
        let mut rng = StdRng::seed_from_u64(1);
        let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
        let tl = PaintTimeline::from_plan(&doc, &layout, &plan);
        let m = VisualMetrics::from_timeline(&tl);
        let uplt = weights.uplt_ms(&tl, &layout);
        println!(
            "{:<8} {:>8}ms {:>8}ms {:>10.0}ms {:>8}ms {:>8}ms",
            profile.name, m.ttfp_ms, m.atf_ms, m.speed_index_ms, m.plt_ms, uplt
        );
    }
    println!(
        "\nthis is how Kaleidoscope gives every participant the *same* \
         simulated connection, regardless of their real one: record the \
         waterfall once, replay it as a reveal schedule everywhere."
    );
}
