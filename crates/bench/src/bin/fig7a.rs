//! Figure 7(a) — evolution over time of the total number of testers:
//! Kaleidoscope vs A/B testing.
//!
//! Paper shape: ~1 day to recruit 100 testers via Kaleidoscope, 12 days to
//! collect 100 visitors via A/B on the group page — roughly 12× faster.

use kscope_abtest::{AbTest, Variant, MS_PER_DAY};
use kscope_bench::{human_duration, run_expand_study, Cohort};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    println!("Figure 7(a): cumulative testers over time");

    let study = run_expand_study(100, Cohort::paper_crowd(), 42);
    let kscope_curve = study.outcome.recruitment_curve();

    let ab = AbTest::new(Variant::new("A", 0.059), Variant::new("B", 0.122), 100.0 / 12.0);
    let mut rng = StdRng::seed_from_u64(361);
    let run = ab.run_until_visitors(100, &mut rng);

    println!("\n{:<8} {:>22} {:>22}", "day", "Kaleidoscope testers", "A/B visitors");
    for day in 0..=14u64 {
        let t = day * MS_PER_DAY;
        let k = kscope_curve.iter().filter(|&&(at, _)| at <= t).count();
        let a = run.visits().iter().filter(|v| v.t_ms <= t).count();
        println!("{day:<8} {k:>22} {a:>22}");
    }

    let k_done = kscope_curve.last().map(|&(t, _)| t).unwrap_or(0);
    let ab_done = run.visits().last().map(|v| v.t_ms).unwrap_or(0);
    println!("\ntime to 100 participants:");
    println!("  Kaleidoscope: {}   (paper: ~12 h)", human_duration(k_done));
    println!("  A/B testing:  {}   (paper: ~12 days)", human_duration(ab_done));
    println!("  speedup: {:.1}x   (paper: >12x)", ab_done as f64 / k_done.max(1) as f64);
}
