//! Across-seed variance of the headline results: the single-seed figures
//! are demonstrations; this binary reports how stable each claim is over
//! many simulated replications, with bootstrap confidence intervals.

use kscope_bench::{
    run_expand_study, run_font_study, run_uplt_study, Cohort, EXPAND_QUESTIONS, FONT_QUESTION,
    UPLT_QUESTION,
};
use kscope_stats::bootstrap::bootstrap_ci;
use kscope_stats::Summary;
use rand::{rngs::StdRng, SeedableRng};

const SEEDS: std::ops::Range<u64> = 100..120;

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn report(label: &str, samples: &[f64], paper: &str) {
    let mut rng = StdRng::seed_from_u64(1);
    let ci = bootstrap_ci(samples, 2000, 0.05, &mut rng, mean);
    let s = Summary::of(samples);
    println!(
        "{label:<44} mean {:.1} [{:.1}, {:.1}] (min {:.1}, max {:.1})   paper: {paper}",
        ci.estimate, ci.low, ci.high, s.min, s.max
    );
}

fn main() {
    println!(
        "Across-seed stability of the headline results ({} replications each)\n",
        SEEDS.end - SEEDS.start
    );

    // Fig. 4: share of QC'd participants ranking 12pt best.
    let mut twelve_top = Vec::new();
    let mut winner_is_12_or_14 = 0;
    for seed in SEEDS {
        let s = run_font_study(60, Cohort::paper_crowd(), seed);
        let d = s.outcome.rank_distribution(FONT_QUESTION, true);
        twelve_top.push(d.percentage(1, 0));
        let ranking = s.outcome.question_analysis(FONT_QUESTION, true).ranking();
        if ranking[0] == 1 || ranking[0] == 2 {
            winner_is_12_or_14 += 1;
        }
    }
    report("font study: % ranking 12pt best (QC)", &twelve_top, "~55-60%");
    println!(
        "{:<44} {}/{}   paper: always",
        "font study: winner in CHI band (12/14pt)",
        winner_is_12_or_14,
        SEEDS.end - SEEDS.start
    );

    // Fig. 7(c)/8: question-C B share and significance rate.
    let mut b_share = Vec::new();
    let mut significant = 0;
    for seed in SEEDS {
        let s = run_expand_study(100, Cohort::paper_crowd(), seed);
        let v = s
            .outcome
            .question_analysis(EXPAND_QUESTIONS[2], false)
            .two_version_votes()
            .expect("two versions");
        b_share.push(100.0 * v.right as f64 / v.total() as f64);
        if v.significance().significant_at(0.01) {
            significant += 1;
        }
    }
    report("question C: % preferring the variant (raw)", &b_share, "46%");
    println!(
        "{:<44} {}/{}   paper: significant once",
        "question C: significant at 0.01",
        significant,
        SEEDS.end - SEEDS.start
    );

    // Fig. 9: uPLT B share after QC.
    let mut uplt_b = Vec::new();
    for seed in SEEDS {
        let s = run_uplt_study(100, Cohort::paper_crowd(), seed);
        let v = s
            .outcome
            .question_analysis(UPLT_QUESTION, true)
            .two_version_votes()
            .expect("two versions");
        uplt_b.push(100.0 * v.right as f64 / v.total() as f64);
    }
    report("uPLT study: % preferring text-first (QC)", &uplt_b, "54%");

    println!(
        "\nreading: single-figure seeds are representative; the qualitative \
         claims hold across every replication, with quantitative spread \
         typical of n = 60-100 crowds."
    );
}
