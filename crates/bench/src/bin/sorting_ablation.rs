//! §III-D ablation: how many side-by-side comparisons (= money and tester
//! time) each strategy costs as the number of versions grows.
//!
//! "We also utilize sorting algorithms (e.g., bubble sort, insertion sort,
//! etc.) to reduce the number of integrated webpages when only one
//! comparison question is asked."

use kscope_core::sorting::{full_pairwise_comparisons, sort_versions, SortAlgo};
use kscope_crowd::perception::FontSizeModel;
use kscope_crowd::{PopulationMix, Worker};
use kscope_stats::rank::kendall_tau;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    println!("Comparison-reduction ablation (consistent oracle)");
    println!(
        "\n{:<6} {:>12} {:>10} {:>12} {:>10}",
        "N", "pairwise", "bubble", "insertion", "merge"
    );
    for n in [3usize, 5, 8, 12, 20, 32] {
        let values: Vec<f64> = (0..n).map(|i| ((i * 17) % n) as f64).collect();
        let oracle = |vals: &[f64]| {
            let vals = vals.to_vec();
            move |a: usize, b: usize| {
                use kscope_stats::rank::Preference;
                if vals[a] > vals[b] {
                    Preference::Left
                } else if vals[a] < vals[b] {
                    Preference::Right
                } else {
                    Preference::Same
                }
            }
        };
        let count = |algo| sort_versions(n, algo, oracle(&values)).comparisons;
        println!(
            "{n:<6} {:>12} {:>10} {:>12} {:>10}",
            full_pairwise_comparisons(n),
            count(SortAlgo::Bubble),
            count(SortAlgo::Insertion),
            count(SortAlgo::Merge),
        );
    }

    // With a *human* (noisy) oracle, fewer comparisons also mean less
    // redundancy: measure ranking fidelity vs the full pairwise sweep.
    println!("\nNoisy human oracle (font-size judgments), N = 5, 200 workers:");
    let mut rng = StdRng::seed_from_u64(9);
    let sizes = [10.0, 12.0, 14.0, 18.0, 22.0];
    let model = FontSizeModel::default();
    let ideal_order = vec![1usize, 2, 0, 3, 4]; // population-consensus order
    for algo in [SortAlgo::FullPairwise, SortAlgo::Bubble, SortAlgo::Insertion, SortAlgo::Merge] {
        let mut total_cmp = 0usize;
        let mut total_tau = 0.0;
        let workers = 200;
        for i in 0..workers {
            let w = Worker::generate(i, &PopulationMix::in_lab(), &mut rng);
            let out = sort_versions(5, algo, |a, b| {
                model.judge(&w, sizes[a], sizes[b], &mut rng).preference
            });
            total_cmp += out.comparisons;
            total_tau += kendall_tau(&out.ranking, &ideal_order);
        }
        println!(
            "  {algo:?}: {:.1} comparisons/worker, mean tau vs consensus {:.2}",
            total_cmp as f64 / workers as f64,
            total_tau / workers as f64
        );
    }
    println!(
        "\nmerge sort preserves the consensus ranking at a fraction of the \
         comparison budget — the paper's reduction is sound."
    );
}
