//! §IV-B speedup-levers ablation: "Kaleidoscope speedup via higher rewards
//! and/or via additional crowdsourcing websites and parallel campaigns."
//!
//! Sweeps the reward and the number of parallel campaigns and reports time
//! to recruit 100 participants.

use kscope_bench::human_duration;
use kscope_crowd::platform::{Channel, JobSpec, Platform};
use kscope_crowd::targeting::DemographicTarget;
use kscope_crowd::worker::AgeRange;
use rand::{rngs::StdRng, SeedableRng};

const SEEDS: u64 = 10;

fn mean_completion(spec: &JobSpec, campaigns: usize) -> u64 {
    let mut total = 0u64;
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        total += Platform.post_job_parallel(spec, campaigns, &mut rng).completion_ms();
    }
    total / SEEDS
}

fn main() {
    println!("Recruitment levers: time to 100 participants (mean of {SEEDS} seeds)\n");

    println!("{:<12} {:>14} {:>14} {:>14}", "reward", "1 campaign", "2 campaigns", "4 campaigns");
    for reward in [0.05, 0.11, 0.25, 0.50] {
        let spec = JobSpec::new("t", reward, 100, Channel::HistoricallyTrustworthy);
        print!("${reward:<11.2}");
        for campaigns in [1usize, 2, 4] {
            print!("{:>14}", human_duration(mean_completion(&spec, campaigns)));
        }
        println!();
    }

    println!("\nchannels at $0.11, single campaign:");
    for channel in [Channel::HistoricallyTrustworthy, Channel::Open] {
        let spec = JobSpec::new("t", 0.11, 100, channel);
        println!("  {channel:?}: {}", human_duration(mean_completion(&spec, 1)));
    }

    println!("\ndemographic targeting at $0.11 (trustworthy channel):");
    let base = JobSpec::new("t", 0.11, 100, Channel::HistoricallyTrustworthy);
    println!("  untargeted: {}", human_duration(mean_completion(&base, 1)));
    let under25 = base
        .clone()
        .with_target(DemographicTarget { ages: vec![AgeRange::Under25], ..Default::default() });
    println!("  under-25 only: {}", human_duration(mean_completion(&under25, 1)));
    let senior_experts = base.with_target(DemographicTarget {
        ages: vec![AgeRange::Age50Plus],
        min_tech_ability: 4,
        ..Default::default()
    });
    println!(
        "  50+ with tech ability >= 4: {}",
        human_duration(mean_completion(&senior_experts, 1))
    );

    println!(
        "\ntakeaway: reward scales recruitment by ~sqrt(pay); parallel campaigns \
         scale nearly linearly; narrow demographics cost proportional slowdown."
    );
}
