//! Channel ablation: the §IV-A remark that FigureEight's "historically
//! trustworthy feature does well in recruiting trusted participants",
//! quantified — what happens to quality control and result fidelity when
//! the same study runs on the open channel instead?

use kscope_core::corpus::{self, FONT_STUDY_SIZES};
use kscope_core::{Aggregator, Campaign, QuestionKind};
use kscope_crowd::platform::{Channel, JobSpec, Platform};
use kscope_crowd::WorkerProfile;
use kscope_store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

const QUESTION: &str = "Which webpage's font size is more suitable (easier) for reading?";

fn run(channel: Channel, seed: u64) -> (kscope_core::CampaignOutcome, f64) {
    let (store, params) = corpus::font_size_study(100);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let prepared =
        Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
    let recruitment =
        Platform.post_job(&JobSpec::new(&params.test_id, 0.11, 100, channel), &mut rng);
    let spam_share = recruitment
        .assignments
        .iter()
        .filter(|a| matches!(a.worker.profile, WorkerProfile::Spammer(_)))
        .count() as f64
        / 100.0;
    let outcome = Campaign::new(db, grid)
        .with_question(QUESTION, QuestionKind::FontReadability)
        .run(&params, &prepared, &recruitment, &mut rng)
        .unwrap();
    (outcome, spam_share)
}

fn main() {
    println!("Same font study, two recruitment channels (100 testers each)\n");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10} {:>22}",
        "channel", "spam in", "kept", "kappa raw", "kappa QC", "QC rank-A order"
    );
    for (label, channel, seed) in [
        ("historically trustworthy", Channel::HistoricallyTrustworthy, 52),
        ("open channel", Channel::Open, 52),
    ] {
        let (outcome, spam_share) = run(channel, seed);
        let kappa = |filtered: bool| {
            outcome
                .question_analysis(QUESTION, filtered)
                .agreement_kappa()
                .map(|k| format!("{k:.2}"))
                .unwrap_or_else(|| "n/a".into())
        };
        let dist = outcome.rank_distribution(QUESTION, true);
        let order: Vec<String> = dist
            .order_by_top_votes()
            .iter()
            .take(3)
            .map(|&v| format!("{:.0}pt", FONT_STUDY_SIZES[v]))
            .collect();
        println!(
            "{label:<26} {:>9.0}% {:>10} {:>10} {:>10} {:>22}",
            spam_share * 100.0,
            outcome.quality.kept.len(),
            kappa(false),
            kappa(true),
            order.join(" "),
        );
    }
    println!(
        "\nthe open channel delivers faster but dirtier: quality control drops far \
         more sessions to reach the same verdict — paying for the vetted pool buys \
         statistical power per recruited participant."
    );
}
