//! Figure 7(c) — Kaleidoscope's answer to question C ("which Expand button
//! is more visible?") as participants accumulate.
//!
//! Paper numbers: of 100 participants, 46 prefer the new design (B), only
//! 14 the original, 40 judge them the same; p = 6.8e-8, so the redesign is
//! more visible at 99% confidence — the same question A/B testing could
//! not settle with the same headcount.

use kscope_bench::{run_expand_study, Cohort, EXPAND_QUESTIONS};
use kscope_core::analysis::parse_preference;
use kscope_stats::rank::Preference;

fn main() {
    println!("Figure 7(c): Kaleidoscope result of question C (100 participants)");
    let study = run_expand_study(100, Cohort::paper_crowd(), 42);
    let question = EXPAND_QUESTIONS[2];

    // Cumulative preference counts in arrival order (raw, as in the figure).
    let mut prefer_a = 0u64;
    let mut prefer_b = 0u64;
    println!("\n{:<22} {:>12} {:>12}", "cumulative testers", "prefer A", "prefer B");
    for (i, session) in study.outcome.sessions.iter().enumerate() {
        for page in &session.record.pages {
            if page.page_name != "integrated-000.html" {
                continue;
            }
            match page.answers.get(question).and_then(|a| parse_preference(a)) {
                Some(Preference::Left) => prefer_a += 1,
                Some(Preference::Right) => prefer_b += 1,
                _ => {}
            }
        }
        if (i + 1) % 10 == 0 {
            println!("{:<22} {prefer_a:>12} {prefer_b:>12}", i + 1);
        }
    }

    let votes = study
        .outcome
        .question_analysis(question, false)
        .two_version_votes()
        .expect("two-version study");
    println!(
        "\nfinal (raw): A {} / Same {} / B {}   (paper: 14 / 40 / 46)",
        votes.left, votes.same, votes.right
    );
    let sig = votes.significance();
    println!(
        "one-tailed two-proportion z = {:.2}, p = {:.2e}   (paper: 6.8e-8)",
        sig.statistic, sig.p_value
    );
    println!("new button more visible at 99% confidence? {}", sig.significant_at(0.01));
}
