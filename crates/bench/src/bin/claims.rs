//! §IV headline claims: speed, cost, and quality-control effectiveness.
//!
//! * "about 12 hours to collect all 100 responses" at "$0.11 for each
//!   participant … $0.01 for each side-by-side comparison".
//! * "Kaleidoscope is much faster (more than 12 times faster in this case)
//!   than A/B testing."
//! * Quality control removes participants with abnormal behaviour while
//!   keeping the vast majority of honest ones.

use kscope_abtest::{AbTest, Variant};
use kscope_bench::{human_duration, run_expand_study, run_font_study, Cohort};
use kscope_crowd::WorkerProfile;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    println!("Headline claims of the paper, re-measured\n");

    // --- speed & cost -----------------------------------------------------
    let study = run_expand_study(100, Cohort::paper_crowd(), 42);
    let duration = study.outcome.duration_ms();
    let cost = study.outcome.cost;
    println!("Kaleidoscope (100 participants, historically trustworthy, $0.11):");
    println!("  wall time to all responses: {}   (paper: ~12 h)", human_duration(duration));
    println!(
        "  worker payments: ${:.2}, platform fee: ${:.2}, total: ${:.2}   (paper: $10-11 + fees)",
        cost.worker_payments_usd,
        cost.platform_fee_usd,
        cost.total_usd()
    );
    println!(
        "  per participant: ${:.3}   (paper: $0.11 before fees)",
        cost.per_participant_usd(study.outcome.sessions.len()),
    );
    // The paper's $0.01-per-comparison figure comes from the font study,
    // where each participant answers ~11-12 side-by-side pages.
    let font_cost = run_font_study(100, Cohort::paper_crowd(), 52);
    let font_comparisons: usize =
        font_cost.outcome.sessions.iter().map(|s| s.record.pages.len()).sum();
    println!(
        "  per side-by-side comparison (font study, {} comparisons): ${:.3}   (paper: ~$0.01)",
        font_comparisons,
        font_cost.outcome.cost.worker_payments_usd / font_comparisons as f64,
    );

    let ab = AbTest::new(Variant::new("A", 0.059), Variant::new("B", 0.122), 100.0 / 12.0);
    let mut rng = StdRng::seed_from_u64(361);
    let run = ab.run_until_visitors(100, &mut rng);
    let ab_ms = run.visits().last().map(|v| v.t_ms).unwrap_or(0);
    println!("\nA/B testing (same 100-person budget): {}", human_duration(ab_ms));
    println!("speedup: {:.1}x   (paper: >12x)", ab_ms as f64 / duration.max(1) as f64);

    // --- quality control effectiveness -------------------------------------
    let font = run_font_study(200, Cohort::paper_crowd(), 7);
    let outcome = &font.outcome;
    let mut spam_total = 0;
    let mut spam_dropped = 0;
    let mut genuine_total = 0;
    let mut genuine_kept = 0;
    for (i, session) in outcome.sessions.iter().enumerate() {
        let kept = outcome.quality.kept.contains(&i);
        if matches!(session.worker.profile, WorkerProfile::Spammer(_)) {
            spam_total += 1;
            if !kept {
                spam_dropped += 1;
            }
        } else {
            genuine_total += 1;
            if kept {
                genuine_kept += 1;
            }
        }
    }
    println!("\nquality control on 200 crowd sessions (font study):");
    println!(
        "  spammers caught: {spam_dropped}/{spam_total} ({:.0}%)",
        100.0 * spam_dropped as f64 / spam_total.max(1) as f64
    );
    println!(
        "  genuine workers kept: {genuine_kept}/{genuine_total} ({:.0}%)",
        100.0 * genuine_kept as f64 / genuine_total.max(1) as f64
    );
    println!("  (the paper validates QC indirectly: filtered results move towards in-lab)");
}
