//! Figure 5 — Kaleidoscope vs in-lab testing: tester behaviour CDFs.
//!
//! Panels: (a) CDF of active tabs, (b) CDF of created tabs, (c) CDF of time
//! on task. Paper shape: the raw crowd has the heaviest tails; quality
//! control truncates them towards the in-lab distribution (longest
//! comparison 3.3 min raw → 2.5 min filtered → 1.9 min in-lab).

use kscope_bench::{run_font_study, Cohort};
use kscope_core::analysis::BehaviorSamples;
use kscope_stats::Ecdf;

fn print_cdf(title: &str, series: &[(&str, Ecdf)]) {
    println!("\n-- {title} --");
    print!("{:<12}", "quantile");
    for (name, _) in series {
        print!("{name:>26}");
    }
    println!();
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.00] {
        print!("p{:<11.0}", q * 100.0);
        for (_, e) in series {
            print!("{:>26.2}", e.quantile(q));
        }
        println!();
    }
}

fn main() {
    println!("Figure 5: Kaleidoscope vs in-lab testing — tester behaviour");

    let crowd = run_font_study(100, Cohort::paper_crowd(), 52);
    let lab = run_font_study(50, Cohort::paper_lab(), 53);

    let raw = crowd.outcome.behavior_samples(false);
    let qc = crowd.outcome.behavior_samples(true);
    let in_lab = lab.outcome.behavior_samples(false);

    let panel = |f: fn(&BehaviorSamples) -> Ecdf| {
        vec![
            ("Kaleidoscope (raw)", f(&raw)),
            ("Kaleidoscope (QC)", f(&qc)),
            ("In-lab testing", f(&in_lab)),
        ]
    };

    print_cdf("(a) number of active tabs", &panel(BehaviorSamples::active_tabs_ecdf));
    print_cdf("(b) number of created tabs", &panel(BehaviorSamples::created_tabs_ecdf));
    print_cdf("(c) time on task (minutes)", &panel(BehaviorSamples::task_ecdf));

    let longest = |b: &BehaviorSamples| b.comparison_minutes.iter().copied().fold(0.0f64, f64::max);
    println!("\nlongest single side-by-side comparison (minutes):");
    println!("  raw      {:.2}   (paper: 3.3)", longest(&raw));
    println!("  filtered {:.2}   (paper: 2.5)", longest(&qc));
    println!("  in-lab   {:.2}   (paper: 1.9)", longest(&in_lab));

    let ks_raw = raw.task_ecdf().ks_distance(&in_lab.task_ecdf());
    let ks_qc = qc.task_ecdf().ks_distance(&in_lab.task_ecdf());
    // The CDF body is dominated by honest workers, so the whole-distribution
    // KS statistic barely moves; the filtering acts on the *tail*, which the
    // longest-comparison line above shows directly.
    let ks_tail_raw = 1.0 - raw.task_ecdf().eval(in_lab.task_ecdf().max());
    let ks_tail_qc = 1.0 - qc.task_ecdf().eval(in_lab.task_ecdf().max());
    println!(
        "\nKS distance of time-on-task CDF to in-lab: raw {ks_raw:.3}, QC {ks_qc:.3}; \
         mass beyond the in-lab maximum: raw {:.1}% -> QC {:.1}%",
        100.0 * ks_tail_raw,
        100.0 * ks_tail_qc
    );
}
