//! Process-chaos benchmark: a crash-only supervised campaign SIGKILLed
//! at seeded beacons and resumed until it concludes (DESIGN.md §16).
//!
//! Emits `BENCH_crash.json` (override with `--out <path>`) with the
//! kill/restart counts, recovery-time and WAL-replay observations, and
//! the zero-loss verdict against an undisturbed run of the same seed.
//! `--quick` shrinks the matrix for CI smoke runs; `--seed` picks the
//! campaign; `--kscope <path>` points at the binary under test (default:
//! a `kscope` sitting next to this benchmark).

use kscope_bench::crash::{run_crash_matrix, CrashConfig, KillPoint};
use serde_json::json;
use std::path::PathBuf;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Every `--kill phase:n` (or `phase-n`) argument, in order; an empty
/// vec means "use the config's default matrix".
fn kill_overrides(args: &[String]) -> Vec<KillPoint> {
    args.windows(2)
        .filter(|w| w[0] == "--kill")
        .map(|w| {
            let (phase, n) = w[1]
                .split_once(':')
                .or_else(|| w[1].split_once('-'))
                .unwrap_or_else(|| panic!("--kill wants phase:n, got '{}'", w[1]));
            KillPoint::at(phase, n.parse().expect("--kill n must be a number"))
        })
        .collect()
}

/// The `kscope` binary built into the same target directory as this
/// benchmark — the default when `--kscope` is not given.
fn sibling_kscope() -> PathBuf {
    let mut path = std::env::current_exe().expect("benchmark has a path");
    path.set_file_name("kscope");
    path
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_crash.json".to_string());
    let kscope = flag_value(&args, "--kscope").map(PathBuf::from).unwrap_or_else(sibling_kscope);
    assert!(
        kscope.exists(),
        "kscope binary not found at {} — build it first or pass --kscope <path>",
        kscope.display()
    );
    let scratch = std::env::temp_dir().join(format!("kscope-bench-crash-{}", std::process::id()));

    let mut config = if quick {
        CrashConfig::quick(kscope, scratch.clone(), seed)
    } else {
        CrashConfig::matrix(kscope, scratch.clone(), seed)
    };
    let overrides = kill_overrides(&args);
    if !overrides.is_empty() {
        config.kills = overrides;
    }
    let report = run_crash_matrix(&config).expect("crash matrix runs");
    let _ = std::fs::remove_dir_all(&scratch);

    let doc = json!({
        "bench": "crash",
        "seed": seed,
        "quick": quick,
        "participants": config.participants,
        "kills": config.kills.iter().map(|k| format!("{}:{}", k.phase, k.n)).collect::<Vec<_>>(),
        "matrix": report.to_json(),
    });
    println!(
        "{} kills across {} incarnations (ledger counted {} resumes): report_match={} \
         keys_match={} spend {}¢ vs {}¢ undisturbed; recovery {:?} ms, WAL replays {:?}",
        report.kills_fired,
        report.incarnations,
        report.resumed_count,
        report.report_match,
        report.keys_match,
        report.budget_cents_disturbed,
        report.budget_cents_undisturbed,
        report.recovery_ms,
        report.replayed_records,
    );
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write crash report");
    println!("wrote {out_path}");

    assert!(report.kills_fired >= 1, "at least one SIGKILL must land");
    assert!(report.zero_loss(), "kill -9 must not change the campaign outcome");
}
