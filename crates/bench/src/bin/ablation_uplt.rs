//! uPLT-weighting ablation: how the perceived-readiness verdict of the
//! Fig. 9 pair depends on the attention model.
//!
//! The paper's commenters disagree about what "ready to use" means ("the
//! main text was available to read first" vs "browsing and moving are done
//! with the same degree"). This sweep makes that disagreement precise: as
//! the main-text weight grows, the text-first version's uPLT advantage
//! appears and widens; a pure visual-change metric (area weighting) sees no
//! difference at all.

use kscope_core::corpus;
use kscope_html::parse_document;
use kscope_pageload::metrics::UpltWeights;
use kscope_pageload::{ContentClass, Layout, PaintTimeline, RevealPlan, Viewport};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;

fn version_timelines() -> Vec<(Layout, PaintTimeline)> {
    let (store, params) = corpus::uplt_case_study(1);
    params
        .webpages
        .iter()
        .map(|spec| {
            let html = store.get_text(&spec.main_file_path()).expect("corpus page");
            let doc = parse_document(&html);
            let layout = Layout::compute(&doc, Viewport::desktop());
            let mut rng = StdRng::seed_from_u64(0);
            let plan = RevealPlan::build(&doc, &layout, &spec.load_spec().unwrap(), &mut rng);
            let tl = PaintTimeline::from_plan(&doc, &layout, &plan);
            (layout, tl)
        })
        .collect()
}

fn main() {
    let versions = version_timelines();
    println!("uPLT of the Fig. 9 pair as the main-text attention weight varies\n");
    println!(
        "{:<14} {:>16} {:>16} {:>12}",
        "text weight", "A (nav first)", "B (text first)", "B advantage"
    );
    for text_w in [0.05, 0.2, 0.4, 0.6, 0.8, 0.95] {
        let mut w = HashMap::new();
        w.insert(ContentClass::MainText, text_w);
        w.insert(ContentClass::Navigation, (1.0 - text_w) * 0.4);
        w.insert(ContentClass::Media, (1.0 - text_w) * 0.4);
        w.insert(ContentClass::Auxiliary, (1.0 - text_w) * 0.2);
        let weights = UpltWeights::new(w, 0.8);
        let uplt_a = weights.uplt_ms(&versions[0].1, &versions[0].0);
        let uplt_b = weights.uplt_ms(&versions[1].1, &versions[1].0);
        println!(
            "{text_w:<14.2} {uplt_a:>14}ms {uplt_b:>14}ms {:>10}ms",
            uplt_a as i64 - uplt_b as i64
        );
    }

    let area = UpltWeights::area_uniform();
    let a = area.uplt_ms(&versions[0].1, &versions[0].0);
    let b = area.uplt_ms(&versions[1].1, &versions[1].0);
    println!("\npure visual-change weighting (the ATF/SpeedIndex world view):");
    println!("  A {a} ms vs B {b} ms — the versions are indistinguishable,");
    println!("  which is exactly why the paper argues uPLT needs content weights.");
}
