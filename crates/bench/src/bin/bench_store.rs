//! Store scale-out benchmark: secondary-index point lookups vs fallback
//! scans, and multi-writer intake throughput with WAL group commit on
//! vs off.
//!
//! Two measurements, both over response-shaped documents:
//!
//! 1. **Lookup**: 10k documents, point lookups on the intake idempotency
//!    triple `(test_id, contributor_id, submission_id)` through the
//!    unique index vs the same filter on an unindexed twin collection
//!    (cross-shard fallback scan). The CI gate asserts the index answers
//!    ≥10× faster.
//! 2. **Intake**: a durable database with the server's index
//!    declarations; 1/4/16 writer threads hammer `insert_if_absent`
//!    (each insert is one WAL commit), with the group-commit window off
//!    and armed at 250µs.
//!
//! Emits `BENCH_store.json` (override with `--out <path>`). `--quick`
//! shrinks doc counts and op counts for CI smoke runs.

use kscope_server::api::declare_indexes;
use kscope_store::{Collection, Database};
use kscope_telemetry::Registry;
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic 64-bit LCG so both collections hold identical docs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn gen_doc(rng: &mut Lcg, i: usize) -> Value {
    json!({
        "test_id": format!("t-{}", rng.next() % 8),
        "contributor_id": format!("w-{}", rng.next() % 512),
        "submission_id": format!("s-{i:06}"),
        "answers": {"q": if rng.next().is_multiple_of(2) { "Left" } else { "Right" }},
        "deadline_ms": 1_700_000_000_000u64 + rng.next() % 1_000_000,
    })
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kscope-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Point-lookup vs fallback-scan comparison over `docs` documents.
fn bench_lookup(docs: usize, indexed_probes: usize, scan_probes: usize) -> Value {
    let indexed = Collection::new();
    indexed.ensure_index("by_submission", &["test_id", "contributor_id", "submission_id"], true);
    let unindexed = Collection::new();
    let mut rng = Lcg(7);
    let mut keys: Vec<(String, String, String)> = Vec::with_capacity(docs);
    for i in 0..docs {
        let doc = gen_doc(&mut rng, i);
        keys.push((
            doc["test_id"].as_str().unwrap().to_string(),
            doc["contributor_id"].as_str().unwrap().to_string(),
            doc["submission_id"].as_str().unwrap().to_string(),
        ));
        indexed.insert_one(doc.clone());
        unindexed.insert_one(doc);
    }

    let probe = |coll: &Collection, probes: usize| -> (Duration, usize) {
        let mut rng = Lcg(99);
        let mut found = 0usize;
        let start = Instant::now();
        for _ in 0..probes {
            let (t, w, s) = &keys[(rng.next() as usize) % keys.len()];
            let hits = coll.find(&json!({
                "test_id": t, "contributor_id": w, "submission_id": s,
            }));
            found += hits.len();
        }
        (start.elapsed(), found)
    };

    let (indexed_time, indexed_found) = probe(&indexed, indexed_probes);
    let (scan_time, scan_found) = probe(&unindexed, scan_probes);
    assert!(indexed_found >= indexed_probes, "every probed key exists");
    assert!(scan_found >= scan_probes, "every probed key exists");

    let indexed_ns = indexed_time.as_nanos() as f64 / indexed_probes as f64;
    let scan_ns = scan_time.as_nanos() as f64 / scan_probes as f64;
    let speedup = scan_ns / indexed_ns.max(1.0);
    println!(
        "lookup @ {docs} docs: index {indexed_ns:.0} ns/lookup, \
         fallback scan {scan_ns:.0} ns/lookup — {speedup:.1}x"
    );
    json!({
        "docs": docs,
        "indexed_probes": indexed_probes,
        "scan_probes": scan_probes,
        "point_lookup_ns": indexed_ns,
        "fallback_scan_ns": scan_ns,
        "speedup": speedup,
    })
}

/// Multi-writer intake run: `threads` writers × `ops_per_thread`
/// `insert_if_absent` commits against a durable database.
fn bench_intake(threads: usize, ops_per_thread: usize, group_commit_us: u64) -> Value {
    let dir = tempdir(&format!("intake-{threads}-{group_commit_us}"));
    let registry = Arc::new(Registry::new());
    let (db, _) = Database::open_durable(&dir).expect("open durable bench db");
    let db = db.with_telemetry(&registry);
    declare_indexes(&db);
    if group_commit_us > 0 {
        assert!(db.set_group_commit_window(Duration::from_micros(group_commit_us)));
    }

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            s.spawn(move || {
                let responses = db.collection("responses");
                for i in 0..ops_per_thread {
                    let key = json!({
                        "test_id": "t-bench",
                        "contributor_id": format!("w-{t}"),
                        "submission_id": format!("s-{t}-{i:06}"),
                    });
                    let mut doc = key.clone();
                    doc.as_object_mut().unwrap().insert("answers".into(), json!({"q": "Left"}));
                    responses.insert_if_absent(&key, doc).expect("unique key admits");
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let ops = threads * ops_per_thread;
    assert_eq!(db.collection("responses").len(), ops, "every intake landed");
    let throughput = ops as f64 / elapsed.as_secs_f64();
    let batches = registry.counter_value("store.group_commit_batches", &[]).unwrap_or(0);
    let group_ops = registry.counter_value("store.group_commit_ops", &[]).unwrap_or(0);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "intake: {threads:>2} writers, group commit {}: {ops} ops in {:.2}s \
         ({throughput:.0} ops/s, {batches} fsync batches)",
        if group_commit_us > 0 { format!("{group_commit_us}us") } else { "off".to_string() },
        elapsed.as_secs_f64(),
    );
    json!({
        "threads": threads,
        "group_commit_us": group_commit_us,
        "ops": ops,
        "duration_ms": elapsed.as_millis() as u64,
        "throughput_ops_s": throughput,
        "group_commit_batches": batches,
        "group_commit_ops": group_ops,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_store.json".to_string());
    let docs: usize = flag_value(&args, "--docs").and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let ops_per_thread: usize = flag_value(&args, "--ops-per-thread")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 150 } else { 500 });

    // Lookup probes: the fallback side walks all shards per probe, so it
    // gets fewer probes and both are reported per-lookup.
    let (indexed_probes, scan_probes) = if quick { (2_000, 100) } else { (10_000, 400) };
    let lookup = bench_lookup(docs, indexed_probes, scan_probes);

    let mut intake = Vec::new();
    for threads in [1usize, 4, 16] {
        for group_commit_us in [0u64, 250] {
            intake.push(bench_intake(threads, ops_per_thread, group_commit_us));
        }
    }

    let report = json!({
        "bench": "store",
        "quick": quick,
        "threads_available":
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "lookup": lookup,
        "intake": intake,
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&report).expect("serialize"))
        .expect("write bench report");
    println!("wrote {out_path}");
}
