//! Server load benchmark: an event-driven load generator drives thousands
//! of concurrent keep-alive HTTP sessions against an in-process
//! [`kscope_server::HttpServer`] through the real wire protocol.
//!
//! The generator reuses the server's own readiness [`Poller`] so a single
//! thread sustains every client socket: each session loops send → receive
//! → think, exactly like a fleet of browser-extension testers polling the
//! core server. The point being measured is the reactor's: N sessions are
//! held open concurrently while the handler pool stays two orders of
//! magnitude smaller (`sessions / workers ≥ 100`).
//!
//! Emits `BENCH_server.json` (override with `--out <path>`) with p50/p99
//! request latency, shed rate, peak concurrently-established sessions, and
//! sessions-per-worker. `--quick` shrinks the fleet and duration for CI
//! smoke runs; `--sessions`, `--workers`, `--duration-secs`, `--think-ms`
//! override individual knobs.

use kscope_server::reactor::poller::{new_poller, Event, Interest, Poller};
use kscope_server::{HttpServer, Response, Router, ServerConfig};
use kscope_telemetry::{Histogram, Registry};
use serde_json::json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

const REQUEST: &[u8] = b"GET /ping HTTP/1.1\r\nhost: bench\r\n\r\n";

/// Where one session is in its send → receive → think loop.
enum Phase {
    /// Waiting out the think time (or the ramp stagger) before sending.
    Thinking { until: Instant },
    /// Request partially written.
    Sending { written: usize },
    /// Waiting for (the rest of) the response.
    Receiving,
}

struct Session {
    stream: Option<TcpStream>,
    phase: Phase,
    inbuf: Vec<u8>,
    sent_at: Instant,
    /// Completed requests on the current connection.
    on_conn: u64,
}

struct Totals {
    requests: u64,
    sheds: u64,
    reconnects: u64,
    connects: u64,
    connect_errors: u64,
    io_errors: u64,
    peak_connected: usize,
}

/// A parsed response frame: status and how many bytes it occupied.
fn parse_frame(buf: &[u8]) -> Option<(u16, bool, usize)> {
    let headers_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..headers_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().ok()?;
        }
        if lower.starts_with("connection:") && lower.contains("close") {
            close = true;
        }
    }
    let total = headers_end + content_length;
    (buf.len() >= total).then_some((status, close, total))
}

struct LoadGen {
    poller: Box<dyn Poller>,
    sessions: Vec<Session>,
    addr: SocketAddr,
    latency: Histogram,
    think: Duration,
    totals: Totals,
}

impl LoadGen {
    fn interest_of(phase: &Phase) -> Interest {
        match phase {
            Phase::Thinking { .. } => Interest::NONE,
            Phase::Sending { .. } => Interest::WRITABLE,
            Phase::Receiving => Interest::READABLE,
        }
    }

    fn set_phase(&mut self, token: usize, phase: Phase) {
        let session = &mut self.sessions[token];
        let desired = Self::interest_of(&phase);
        session.phase = phase;
        if let Some(stream) = &session.stream {
            let _ = self.poller.reregister(stream.as_raw_fd(), token as u64, desired);
        }
    }

    /// (Re)connects a session; on failure the session retries after one
    /// think period.
    fn connect(&mut self, token: usize, now: Instant) {
        self.disconnect(token);
        match TcpStream::connect(self.addr) {
            Ok(stream) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    self.totals.connect_errors += 1;
                    return;
                }
                let registered =
                    self.poller.register(stream.as_raw_fd(), token as u64, Interest::NONE).is_ok();
                if !registered {
                    self.totals.connect_errors += 1;
                    return;
                }
                self.totals.connects += 1;
                let session = &mut self.sessions[token];
                session.stream = Some(stream);
                session.on_conn = 0;
                let connected = self.sessions.iter().filter(|s| s.stream.is_some()).count();
                self.totals.peak_connected = self.totals.peak_connected.max(connected);
            }
            Err(_) => {
                self.totals.connect_errors += 1;
                let _ = now;
            }
        }
    }

    fn disconnect(&mut self, token: usize) {
        if let Some(stream) = self.sessions[token].stream.take() {
            let _ = self.poller.deregister(stream.as_raw_fd());
        }
        self.sessions[token].inbuf.clear();
    }

    /// Begins one request, reconnecting first if the keep-alive socket is
    /// gone.
    fn start_request(&mut self, token: usize, now: Instant) {
        if self.sessions[token].stream.is_none() {
            self.connect(token, now);
            if self.sessions[token].stream.is_none() {
                // Connect failed: think again, retry later.
                self.set_phase(token, Phase::Thinking { until: now + self.think });
                return;
            }
        }
        self.sessions[token].sent_at = now;
        self.set_phase(token, Phase::Sending { written: 0 });
        self.drive_send(token, now);
    }

    fn drive_send(&mut self, token: usize, now: Instant) {
        let Phase::Sending { mut written } = self.sessions[token].phase else { return };
        loop {
            let Some(stream) = &mut self.sessions[token].stream else { return };
            match stream.write(&REQUEST[written..]) {
                Ok(n) => {
                    written += n;
                    if written >= REQUEST.len() {
                        self.set_phase(token, Phase::Receiving);
                        self.drive_receive(token, now);
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.set_phase(token, Phase::Sending { written });
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.totals.io_errors += 1;
                    self.totals.reconnects += 1;
                    self.disconnect(token);
                    self.start_request(token, now);
                    return;
                }
            }
        }
    }

    fn drive_receive(&mut self, token: usize, now: Instant) {
        let mut buf = [0u8; 4096];
        loop {
            let Some(stream) = &mut self.sessions[token].stream else { return };
            match stream.read(&mut buf) {
                Ok(0) => {
                    // Server closed (idle timeout, request cap, shed):
                    // reconnect on the next request.
                    self.totals.reconnects += 1;
                    self.disconnect(token);
                    self.set_phase(token, Phase::Thinking { until: now + self.think });
                    return;
                }
                Ok(n) => {
                    self.sessions[token].inbuf.extend_from_slice(&buf[..n]);
                    if let Some((status, close, frame_len)) =
                        parse_frame(&self.sessions[token].inbuf)
                    {
                        let session = &mut self.sessions[token];
                        session.inbuf.drain(..frame_len);
                        session.on_conn += 1;
                        self.totals.requests += 1;
                        let elapsed = now.saturating_duration_since(session.sent_at);
                        self.latency.observe(elapsed.as_micros() as u64);
                        if status == 503 {
                            self.totals.sheds += 1;
                        }
                        if close {
                            self.totals.reconnects += 1;
                            self.disconnect(token);
                        }
                        self.set_phase(token, Phase::Thinking { until: now + self.think });
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.totals.io_errors += 1;
                    self.totals.reconnects += 1;
                    self.disconnect(token);
                    self.set_phase(token, Phase::Thinking { until: now + self.think });
                    return;
                }
            }
        }
    }

    fn on_event(&mut self, event: Event, now: Instant) {
        let token = event.token as usize;
        if token >= self.sessions.len() {
            return;
        }
        match self.sessions[token].phase {
            Phase::Sending { .. } if event.writable => self.drive_send(token, now),
            Phase::Receiving if event.readable => self.drive_receive(token, now),
            _ => {}
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sessions: usize = flag_value(&args, "--sessions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 600 } else { 5_000 });
    let workers: usize = flag_value(&args, "--workers").and_then(|v| v.parse().ok()).unwrap_or(4);
    let duration = Duration::from_secs(
        flag_value(&args, "--duration-secs").and_then(|v| v.parse().ok()).unwrap_or(if quick {
            3
        } else {
            10
        }),
    );
    let think = Duration::from_millis(
        flag_value(&args, "--think-ms").and_then(|v| v.parse().ok()).unwrap_or(1_000),
    );
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_server.json".to_string());

    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let degraded_single_core = available == 1;
    if degraded_single_core {
        eprintln!(
            "WARNING: available_parallelism() == 1 — load generator, reactor shards, and \
             workers share one core; latency numbers are NOT representative."
        );
    }

    let registry = Arc::new(Registry::new());
    let mut router = Router::new();
    router.get("/ping", |_req, _p| Response::json(&json!({ "pong": true })));
    let mut config = ServerConfig::with_workers(workers);
    // Sessions must stay keep-alive for the whole run.
    config.max_requests_per_connection = usize::MAX;
    config.idle_timeout = Duration::from_secs(30);
    let server =
        HttpServer::bind_with_config("127.0.0.1:0", router, config, Some(Arc::clone(&registry)))
            .expect("bind bench server");
    let addr = server.local_addr();

    let start = Instant::now();
    let mut gen = LoadGen {
        poller: new_poller(false),
        sessions: (0..sessions)
            .map(|i| Session {
                stream: None,
                phase: Phase::Thinking {
                    // Stagger first requests uniformly across one think
                    // period so the fleet never phase-locks.
                    until: start + think.mul_f64(i as f64 / sessions.max(1) as f64),
                },
                inbuf: Vec::new(),
                sent_at: start,
                on_conn: 0,
            })
            .collect(),
        addr,
        latency: Histogram::new(),
        think,
        totals: Totals {
            requests: 0,
            sheds: 0,
            reconnects: 0,
            connects: 0,
            connect_errors: 0,
            io_errors: 0,
            peak_connected: 0,
        },
    };
    let poller_name = gen.poller.name();

    // Ramp: establish the whole fleet before the measurement window, paced
    // so the listener backlog never overflows.
    let mut next_to_connect = 0usize;
    while next_to_connect < sessions {
        let batch = (sessions - next_to_connect).min(64);
        for token in next_to_connect..next_to_connect + batch {
            gen.connect(token, Instant::now());
        }
        next_to_connect += batch;
        // Give the server's acceptor a readiness cycle.
        std::thread::sleep(Duration::from_millis(1));
    }
    let ramp = start.elapsed();
    let established = gen.sessions.iter().filter(|s| s.stream.is_some()).count();

    // Measurement loop.
    let bench_start = Instant::now();
    let deadline = bench_start + duration;
    let mut events: Vec<Event> = Vec::with_capacity(1024);
    let mut last_think_scan = bench_start;
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        events.clear();
        let _ = gen.poller.wait(&mut events, Some(Duration::from_millis(2)));
        let now = Instant::now();
        for event in events.drain(..) {
            gen.on_event(event, now);
        }
        // Wake thinkers whose pause has elapsed (scanned at ~1ms
        // granularity; think times are tens of milliseconds and up).
        if now.duration_since(last_think_scan) >= Duration::from_millis(1) {
            last_think_scan = now;
            for token in 0..gen.sessions.len() {
                if let Phase::Thinking { until } = gen.sessions[token].phase {
                    if now >= until {
                        gen.start_request(token, now);
                    }
                }
            }
        }
    }
    let measured = bench_start.elapsed();
    let connected_at_end = gen.sessions.iter().filter(|s| s.stream.is_some()).count();

    let snapshot = gen.latency.snapshot();
    let totals = &gen.totals;
    let shed_rate = totals.sheds as f64 / totals.requests.max(1) as f64;
    let throughput = totals.requests as f64 / measured.as_secs_f64();
    let sessions_per_worker = totals.peak_connected as f64 / workers as f64;

    let report = json!({
        "bench": "server",
        "poller": poller_name,
        "threads_available": available,
        "degraded_single_core": degraded_single_core,
        "sessions": sessions,
        "workers": workers,
        "think_ms": think.as_millis() as u64,
        "ramp_ms": ramp.as_millis() as u64,
        "duration_ms": measured.as_millis() as u64,
        "sessions_established": established,
        "sessions_connected_at_end": connected_at_end,
        "peak_concurrent_sessions": totals.peak_connected,
        "sessions_per_worker": sessions_per_worker,
        "requests_total": totals.requests,
        "throughput_rps": throughput,
        "latency_p50_us": snapshot.p50(),
        "latency_p95_us": snapshot.p95(),
        "latency_p99_us": snapshot.p99(),
        "latency_mean_us": snapshot.mean(),
        "shed_total": totals.sheds,
        "shed_rate": shed_rate,
        "reconnects": totals.reconnects,
        "connects": totals.connects,
        "connect_errors": totals.connect_errors,
        "io_errors": totals.io_errors,
        "server": {
            "reactor_fds": registry.gauge("server.reactor_fds").get(),
            "reactor_ready_peak": registry.gauge("server.reactor_ready_peak").get(),
            "reactor_timer_entries": registry.gauge("server.reactor_timer_entries").get(),
            "accepted_total": registry.counter_value("server.accepted_total", &[]),
            "keepalive_reuses_total": registry.counter_value("server.keepalive_reuses_total", &[]),
            "shed_total": registry.counter_value("server.shed_total", &[]),
        },
    });
    println!(
        "sessions {established}/{sessions} established (peak {peak}), {workers} workers \
         ({sessions_per_worker:.0}x), {requests} requests in {secs:.1}s ({throughput:.0} rps), \
         p50 {p50:.0}us p99 {p99:.0}us, shed rate {shed_rate:.4}, {reconnects} reconnects",
        peak = totals.peak_connected,
        requests = totals.requests,
        secs = measured.as_secs_f64(),
        p50 = snapshot.p50(),
        p99 = snapshot.p99(),
        reconnects = totals.reconnects,
    );
    std::fs::write(&out_path, serde_json::to_string_pretty(&report).expect("serialize"))
        .expect("write bench report");
    println!("wrote {out_path}");

    let report_drain = server.shutdown();
    assert!(report_drain.completed, "bench server must drain cleanly");
}
