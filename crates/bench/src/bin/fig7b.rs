//! Figure 7(b) — the A/B testing result on the group page.
//!
//! Paper numbers: 51 visitors saw the original (A) with 3 "Expand" clicks;
//! 49 saw the variant (B) with 6 clicks; the one-tailed two-proportion
//! p-value is 0.133 — not significant, despite B doubling the click rate.

use kscope_abtest::{AbTest, Variant};
use kscope_stats::tests::required_sample_size;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    println!("Figure 7(b): A/B testing result (100 visitors)");

    let ab = AbTest::new(Variant::new("A", 0.059), Variant::new("B", 0.122), 100.0 / 12.0);
    let mut rng = StdRng::seed_from_u64(361);
    let run = ab.run_until_visitors(100, &mut rng);

    println!("\n{:<22} {:>10} {:>10}", "cumulative visitors", "A clicks", "B clicks");
    for (n, a, b) in run.click_curve().iter().filter(|(n, _, _)| n % 10 == 0) {
        println!("{n:<22} {a:>10} {b:>10}");
    }

    let a = run.control_counts();
    let b = run.variation_counts();
    println!(
        "\nfinal: A {} visitors / {} clicks ({:.1}%), B {} visitors / {} clicks ({:.1}%)",
        a.visitors,
        a.clicks,
        100.0 * a.conversion(),
        b.visitors,
        b.clicks,
        100.0 * b.conversion()
    );
    println!("paper: A 51 / 3 (5.9%), B 49 / 6 (12.2%)");

    let sig = run.significance();
    println!(
        "\none-tailed two-proportion z = {:.2}, p = {:.3}  (paper: p = 0.133)",
        sig.statistic, sig.p_value
    );
    println!(
        "significant at 0.05? {}  — \"we cannot say (yet) that the new button is more visible\"",
        sig.significant_at(0.05)
    );
    let needed = required_sample_size(0.059, 0.122, 0.05, 0.2);
    println!(
        "\nsample size needed per arm for 80% power at this effect: {needed} \
         (the paper's 100 total visitors were far short)"
    );
}
