//! Sequential-significance ablation: how many participants Kaleidoscope
//! actually needs before each question is settled.
//!
//! §IV-B: "Kaleidoscope can reach a more statistically significant result
//! relative to A/B testing." This sweep watches the p-value evolve as
//! responses accumulate and reports the first crossing of alpha = 0.01 —
//! for question C it happens within the first few dozen testers, while the
//! A/B test never gets there at n = 100.

use kscope_abtest::{AbTest, Variant};
use kscope_bench::{run_expand_study, Cohort, EXPAND_QUESTIONS};
use kscope_core::analysis::parse_preference;
use kscope_core::VoteCounts;
use kscope_stats::rank::Preference;
use rand::{rngs::StdRng, SeedableRng};

/// p-value trajectory of one question over arrival order.
fn trajectory(study: &kscope_bench::Study, question: &str) -> Vec<(usize, f64)> {
    let mut votes = VoteCounts::default();
    let mut out = Vec::new();
    for (i, session) in study.outcome.sessions.iter().enumerate() {
        for page in &session.record.pages {
            if page.page_name != "integrated-000.html" {
                continue;
            }
            match page.answers.get(question).and_then(|a| parse_preference(a)) {
                Some(Preference::Left) => votes.left += 1,
                Some(Preference::Right) => votes.right += 1,
                Some(Preference::Same) => votes.same += 1,
                None => {}
            }
        }
        if votes.total() >= 5 {
            out.push((i + 1, votes.significance().p_value));
        }
    }
    out
}

fn main() {
    let study = run_expand_study(100, Cohort::paper_crowd(), 42);
    println!("participants needed to settle each question at alpha = 0.01\n");
    for (label, q) in ["A", "B", "C"].iter().zip(EXPAND_QUESTIONS) {
        let traj = trajectory(&study, q);
        let first = traj.iter().find(|(_, p)| *p < 0.01);
        match first {
            Some((n, p)) => {
                println!("question {label}: significant after {n} participants (p = {p:.1e})")
            }
            None => {
                let last = traj.last().map(|&(_, p)| p).unwrap_or(1.0);
                println!("question {label}: never significant in 100 (final p = {last:.2})")
            }
        }
    }

    // The A/B arm with the same alpha.
    println!("\nA/B baseline (same effect, checked daily, alpha = 0.01):");
    let ab = AbTest::new(Variant::new("A", 0.059), Variant::new("B", 0.122), 100.0 / 12.0);
    let mut significant_runs = 0;
    let runs = 20;
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, significant) = ab.run_until_significant(0.01, 12.0, &mut rng);
        significant_runs += u32::from(significant);
    }
    println!(
        "  reached significance within 12 days in {significant_runs}/{runs} simulated runs \
         — the 'only 1 out of 8 A/B tests produce statistically significant results' \
         phenomenon the paper opens with."
    );
}
