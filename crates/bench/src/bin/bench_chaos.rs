//! Chaos soak benchmark: a full supervised campaign replayed through the
//! seeded network-fault transport (DESIGN.md §15), plus a total-outage
//! probe of the client's retry budget and circuit breaker.
//!
//! Emits `BENCH_chaos.json` (override with `--out <path>`) with the
//! campaign health accounting, exactly-once delivery verdicts, injected
//! fault tallies, and the client/server overload telemetry. `--quick`
//! shrinks the campaign for CI smoke runs; `--seed`, `--net-seed`, and
//! `--fault-rate` pick the disturbance schedule.

use kscope_bench::chaos::{run_chaos_campaign, run_outage_probe, ChaosConfig};
use serde_json::json;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let net_seed: u64 = flag_value(&args, "--net-seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let fault_rate: f64 =
        flag_value(&args, "--fault-rate").and_then(|v| v.parse().ok()).unwrap_or(0.25);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_chaos.json".to_string());

    let config = if quick {
        ChaosConfig::quick(seed, net_seed, fault_rate)
    } else {
        ChaosConfig::soak(seed, net_seed, fault_rate)
    };
    let report = run_chaos_campaign(&config);
    let outage = run_outage_probe(20, net_seed);

    let doc = json!({
        "bench": "chaos",
        "seed": seed,
        "net_seed": net_seed,
        "fault_rate": fault_rate,
        "quick": quick,
        "campaign": report.to_json(),
        "outage": outage.to_json(),
    });
    println!(
        "campaign: {}/{} rows delivered exactly-once={} across {} injected faults \
         ({} torn, {} reset, {} dup, {} refused, {} delayed); \
         outage: {} attempts for {} requests (bound {}), breaker opened {} time(s)",
        report.rows_server,
        report.rows_source,
        report.keys_match && report.summaries_match,
        report.faults.total(),
        report.faults.torn,
        report.faults.reset,
        report.faults.duplicated,
        report.faults.refused,
        report.faults.delayed,
        outage.attempts,
        outage.requests,
        outage.bound,
        outage.breaker_opens,
    );
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write chaos report");
    println!("wrote {out_path}");

    assert!(report.accounted, "campaign accounting must balance");
    assert!(report.keys_match, "exactly-once delivery must hold");
    assert!(report.summaries_match, "server aggregation must match");
    assert!(outage.within_budget, "outage attempts must stay within the retry budget");
    assert!(outage.breaker_opens >= 1, "the breaker must open under a full outage");
}
