//! Figure 9 — the page-load feature case study (§IV-C).
//!
//! Two visually identical Wikipedia versions: A shows the navigation bar at
//! 2 s and the main text at 4 s; B reverses them. Both finish at 4 s (same
//! above-the-fold time). Paper result: participants say the text-first
//! version (B) "seems ready to use first" — 46% raw, 54% after quality
//! control — because the main text dominates user-perceived load time.

use kscope_bench::{run_uplt_study, Cohort, UPLT_QUESTION};
use kscope_core::corpus;
use kscope_html::parse_document;
use kscope_pageload::metrics::UpltWeights;
use kscope_pageload::{Layout, PaintTimeline, RevealPlan, Viewport, VisualMetrics};
use rand::{rngs::StdRng, SeedableRng};

/// Rebuilds the two scheduled versions and returns (ATF, uPLT) per version
/// under the reader-default weights — the setup property the case study
/// hinges on.
fn version_metrics() -> Vec<(u64, u64)> {
    let (store, params) = corpus::uplt_case_study(1);
    let mut out = Vec::new();
    for spec in &params.webpages {
        let html = store.get_text(&spec.main_file_path()).expect("corpus page");
        let doc = parse_document(&html);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let mut rng = StdRng::seed_from_u64(0);
        let plan = RevealPlan::build(&doc, &layout, &spec.load_spec().unwrap(), &mut rng);
        let tl = PaintTimeline::from_plan(&doc, &layout, &plan);
        let metrics = VisualMetrics::from_timeline(&tl);
        let uplt = UpltWeights::reader_defaults().uplt_ms(&tl, &layout);
        out.push((metrics.atf_ms, uplt));
    }
    out
}

fn main() {
    println!("Figure 9: result of the page-load feature (100 participants)");

    let m = version_metrics();
    println!("\nsetup check (visual metrics of the two versions):");
    println!("  version A (nav@2s, text@4s): ATF = {} ms, uPLT = {} ms", m[0].0, m[0].1);
    println!("  version B (text@2s, nav@4s): ATF = {} ms, uPLT = {} ms", m[1].0, m[1].1);
    println!("  same ATF? {}   B feels ready earlier? {}", m[0].0 == m[1].0, m[1].1 < m[0].1);

    let study = run_uplt_study(100, Cohort::paper_crowd(), 52);
    for (filtered, label, paper_b) in [(false, "raw", 46.0), (true, "quality control", 54.0)] {
        let votes = study
            .outcome
            .question_analysis(UPLT_QUESTION, filtered)
            .two_version_votes()
            .expect("two-version study");
        let (a, same, b) = votes.percentages();
        println!(
            "\n[{label}] version A (nav first): {a:.0}%   Same: {same:.0}%   \
             version B (text first): {b:.0}%   (paper B: {paper_b:.0}%)"
        );
        println!("  one-tailed p that B wins: {:.2e}", votes.significance().p_value);
    }

    let raw = study
        .outcome
        .question_analysis(UPLT_QUESTION, false)
        .two_version_votes()
        .expect("two-version study");
    let qc = study
        .outcome
        .question_analysis(UPLT_QUESTION, true)
        .two_version_votes()
        .expect("two-version study");
    let share = |v: kscope_core::VoteCounts| v.right as f64 / v.total() as f64;
    println!(
        "\nshape check: quality control sharpens the B preference: {:.0}% -> {:.0}% ({})",
        100.0 * share(raw),
        100.0 * share(qc),
        share(qc) > share(raw)
    );
    println!(
        "\npaper conclusion reproduced: \"most participants care more about the main \
         text content than other auxiliary content\" — uPLT differs at equal ATF."
    );
}
