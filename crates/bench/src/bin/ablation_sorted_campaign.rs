//! Full-pairwise vs sorting-reduction campaigns on the font study: same
//! crowd, same question — how much cheaper is the §III-D reduction, and
//! does the verdict survive?

use kscope_bench::{run_font_study, Cohort, FONT_QUESTION};
use kscope_core::corpus::{self, FONT_STUDY_SIZES};
use kscope_core::{Aggregator, Campaign, QuestionKind, SortAlgo};
use kscope_crowd::platform::{Channel, JobSpec, Platform};
use kscope_store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

const PER_COMPARISON_USD: f64 = 0.01;

fn main() {
    let participants = 100;
    println!("Full C(N,2) campaign vs sorting reduction ({participants} testers, font study)\n");

    // Full design (the default campaign).
    let full = run_font_study(participants, Cohort::paper_crowd(), 52);
    let full_comparisons: usize = full
        .outcome
        .sessions
        .iter()
        .map(|s| s.record.pages.len().saturating_sub(2)) // exclude controls
        .sum();
    let full_ranking = full.outcome.question_analysis(FONT_QUESTION, true).ranking();
    println!(
        "full pairwise:      {} comparisons (~${:.2} at $0.01 each), ranking {:?}",
        full_comparisons,
        full_comparisons as f64 * PER_COMPARISON_USD,
        pretty(&full_ranking)
    );

    // Sorted designs.
    for algo in [SortAlgo::Insertion, SortAlgo::Merge, SortAlgo::Bubble] {
        let (store, params) = corpus::font_size_study(participants);
        let db = Database::new();
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(52);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let recruitment = Platform.post_job(
            &JobSpec::new(&params.test_id, 0.11, participants, Channel::HistoricallyTrustworthy),
            &mut rng,
        );
        let outcome = Campaign::new(db, grid)
            .with_question(FONT_QUESTION, QuestionKind::FontReadability)
            .run_sorted(&params, &prepared, &recruitment, algo, &mut rng)
            .unwrap();
        println!(
            "{:<19} {} comparisons (~${:.2}), kept {}/{}, ranking {:?}",
            format!("{algo:?}:"),
            outcome.total_comparisons(),
            outcome.total_comparisons() as f64 * PER_COMPARISON_USD,
            outcome.kept().len(),
            outcome.sessions.len(),
            pretty(&outcome.consensus_ranking())
        );
    }
    println!(
        "\nthe reduction preserves the CHI-consensus verdict while cutting the \
         per-participant comparison budget roughly in half at N = 5 — and the \
         saving grows as O(N^2 / N log N) with more versions."
    );
}

fn pretty(ranking: &[usize]) -> Vec<String> {
    ranking.iter().map(|&v| format!("{:.0}pt", FONT_STUDY_SIZES[v])).collect()
}
