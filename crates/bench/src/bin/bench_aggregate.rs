//! Aggregator benchmark: the PR 5 baseline (sequential DOM
//! parse-then-serialize inliner, no asset cache, one WAL commit per page
//! doc) versus the current prepare (streaming single-pass rewrite, SWAR
//! base64, worker fan-out, content-addressed cache, batched insert),
//! cold and warm, over two corpus shapes:
//!
//! * `mb-pages` — N ∈ {2, 8} versions of an article inflated to ~1 MB of
//!   markup each, with ~1.9 MB of images shared across versions (the
//!   "heavy page" shape where per-byte costs dominate);
//! * `many-versions` — dozens of small versions (48 quick / 96 full), so
//!   `C(N,2)` integrated-page composition and per-doc commit overhead
//!   dominate (the "wide campaign" shape).
//!
//! A standalone microbenchmark also reports the SWAR-vs-scalar base64
//! encoder throughput, since the cached pipeline deliberately avoids
//! most encode work and would otherwise hide that win.
//!
//! Emits `BENCH_aggregate.json` (override with `--out <path>`); `--quick`
//! runs one repetition instead of three; `--threads N` sets the parallel
//! worker count (default 4). Also verifies that sequential and parallel
//! prepare produce byte-identical artifacts before reporting.
//!
//! Speedup numbers are only meaningful with real parallelism: when
//! `available_parallelism()` is 1 the report is **not** written to the
//! requested artifact name — it goes to `<out>.degraded.json` (with
//! `"degraded_single_core": true`) so a degraded run can never be
//! committed or asserted on as a healthy measurement.

use kscope_core::{corpus, Aggregator, TestParams, WebpageSpec};
use kscope_html::parse_document;
use kscope_pageload::{Layout, RevealPlan, Viewport};
use kscope_singlefile::base64::{encode, encode_scalar};
use kscope_singlefile::{AssetCache, Inliner, ResourceStore};
use kscope_store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};
use serde_json::{json, Value};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Corpus shape for one benchmark leg.
#[derive(Clone, Copy, PartialEq)]
enum Shape {
    /// Few versions, ~1 MB of markup each plus ~1.9 MB of shared images.
    MbPages,
    /// Many small versions; composition and commit costs dominate.
    ManyVersions,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::MbPages => "mb-pages",
            Shape::ManyVersions => "many-versions",
        }
    }
}

/// Pads the corpus article out to roughly `target_bytes` of markup by
/// repeating filler sections before the footer — deterministic content,
/// real element structure (the reveal planner schedules per element).
fn inflate_article(store: &mut ResourceStore, folder: &str, target_bytes: usize) {
    let path = format!("{folder}/index.html");
    let html = store.get_text(&path).expect("corpus wrote the article");
    if html.len() >= target_bytes {
        return;
    }
    let paragraph = "<p class=\"filler\">The rock hyrax maintains elaborate latrine sites; \
                     sentries whistle from the kopje while the colony suns itself on warm \
                     granite, a behaviour documented across East African populations.</p>";
    let block: String = (0..16).map(|_| paragraph).collect();
    let section = format!("<section class=\"filler-block\">{block}</section>");
    let needed = (target_bytes - html.len()).div_ceil(section.len());
    let filler: String = (0..needed).map(|_| section.as_str()).collect();
    let html = html.replace("<footer", &format!("{filler}<footer"));
    store.insert(&path, "text/html", html.into_bytes());
}

/// Shared-asset corpus: N versions of the Wikipedia article differing only
/// in font size, with images that are byte-identical across versions — the
/// common A/B shape the asset cache targets. The article references one
/// image; real pages carry several, so more shared photos are appended to
/// each version's gallery. `shape` scales page and asset sizes.
fn setup(n: usize, shape: Shape) -> (ResourceStore, TestParams) {
    let (jpeg_kb, png_kb, photo_kb, page_bytes) = match shape {
        Shape::MbPages => (512, 256, 384, 1024 * 1024),
        Shape::ManyVersions => (24, 16, 12, 0),
    };
    let mut store = ResourceStore::new();
    let mut pages = Vec::new();
    let jpeg: Vec<u8> = (0..jpeg_kb * 1024).map(|i| (i % 251) as u8).collect();
    let png: Vec<u8> = (0..png_kb * 1024).map(|i| (i % 241) as u8).collect();
    let photos: Vec<Vec<u8>> = (0..3u8)
        .map(|p| (0..photo_kb * 1024).map(|i| (i % (199 + p as usize)) as u8).collect())
        .collect();
    for i in 0..n {
        let folder = format!("pages/v{i}");
        corpus::write_wikipedia_article(&mut store, &folder, 10.0 + i as f64);
        if page_bytes > 0 {
            inflate_article(&mut store, &folder, page_bytes);
        }
        store.insert(&format!("{folder}/img/hyrax.jpg"), "image/jpeg", jpeg.clone());
        store.insert(&format!("{folder}/img/map.png"), "image/png", png.clone());
        for (p, bytes) in photos.iter().enumerate() {
            store.insert(&format!("{folder}/img/photo-{p}.jpg"), "image/jpeg", bytes.clone());
        }
        let gallery: String = (0..photos.len())
            .map(|p| format!("<img src=\"img/photo-{p}.jpg\" width=\"640\" height=\"480\">"))
            .chain(["<img src=\"img/map.png\" width=\"400\" height=\"300\">".to_string()])
            .collect();
        let html = store
            .get_text(&format!("{folder}/index.html"))
            .expect("corpus wrote the article")
            .replace("<footer", &format!("<div class=\"gallery\">{gallery}</div><footer"));
        store.insert(&format!("{folder}/index.html"), "text/html", html.into_bytes());
        pages.push(WebpageSpec::new(&folder, "index.html", 3000));
    }
    let params = TestParams::new(&format!("bench-{}-n{n}", shape.name()), 10, vec!["q"], pages);
    (store, params)
}

/// The pre-optimization pipeline, reproduced verbatim for an honest
/// baseline: sequential version loop driving the DOM reference inliner
/// (`Inliner::inline_dom`, the PR 5 parse → mutate → serialize path) with
/// no asset cache and a single RNG threaded through, pair composition
/// inline, and one `insert_one` (one WAL commit) per page document.
fn baseline_prepare(db: &Database, grid: &GridStore, params: &TestParams, store: &ResourceStore) {
    let mut rng = StdRng::seed_from_u64(1);
    let test_id = params.test_id.clone();
    let inliner = Inliner::new(store);
    let mut version_files = Vec::new();
    for (i, spec) in params.webpages.iter().enumerate() {
        let out = inliner.inline_dom(&spec.main_file_path()).expect("corpus inlines");
        let mut doc = parse_document(&out.html);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let load = spec.load_spec().expect("valid");
        let plan = RevealPlan::build(&doc, &layout, &load, &mut rng);
        plan.inject(&mut doc);
        let name = format!("version-{i}.html");
        grid.put(&test_id, &name, doc.to_html().into_bytes());
        version_files.push(name);
    }
    let questions: Vec<String> = params.question.iter().map(|q| q.text().to_string()).collect();
    let n = params.webpages.len();
    let mut docs = Vec::new();
    let mut k = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let name = format!("integrated-{k:03}.html");
            let html = kscope_core::aggregator::integrated_html_with_questions(
                &version_files[i],
                &version_files[j],
                &questions,
            );
            grid.put(&test_id, &name, html.into_bytes());
            docs.push(json!({"test_id": test_id, "name": name, "left": i, "right": j}));
            k += 1;
        }
    }
    // Control pages, exactly as the pre-optimization prepare built them.
    grid.put(
        &test_id,
        "control-identical.html",
        kscope_core::aggregator::integrated_html(&version_files[0], &version_files[0]).into_bytes(),
    );
    docs.push(json!({"test_id": test_id, "name": "control-identical.html",
        "left": 0, "right": 0, "control": "identical"}));
    let version0 = grid.get_text(&test_id, &version_files[0]).expect("stored");
    let ruined = kscope_core::aggregator::ruin_version(&version0);
    grid.put(&test_id, "version-ruined.html", ruined.into_bytes());
    grid.put(
        &test_id,
        "control-extreme.html",
        kscope_core::aggregator::integrated_html("version-ruined.html", &version_files[0])
            .into_bytes(),
    );
    docs.push(json!({"test_id": test_id, "name": "control-extreme.html",
        "left": -1, "right": 0, "control": "extreme"}));
    let coll = db.collection("integrated_pages");
    for d in docs.iter() {
        coll.insert_one(d.clone());
    }
    db.collection("tests").insert_one(json!({
        "test_id": test_id,
        "params": serde_json::to_value(params).expect("params serialize"),
        "pages": docs,
    }));
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kscope-bench-agg-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench tempdir");
    dir
}

/// Times `f` over a fresh durable database per repetition (matching the
/// `kscope prepare` deployment, where every WAL commit costs an fsync),
/// returning the best-of-`reps` wall time in milliseconds.
fn time_best(reps: usize, tag: &str, mut f: impl FnMut(&Database, &GridStore)) -> f64 {
    let mut best = f64::INFINITY;
    for r in 0..reps {
        let dir = tempdir(&format!("{tag}-{r}"));
        let (db, _) = Database::open_durable(&dir).expect("durable open");
        let grid = GridStore::new();
        let start = Instant::now();
        f(&db, &grid);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    best
}

/// Byte-compares every artifact of two prepared grids.
fn identical(a: &GridStore, b: &GridStore, test_id: &str) -> bool {
    let files = a.list(test_id);
    files == b.list(test_id) && files.iter().all(|f| a.get(test_id, f) == b.get(test_id, f))
}

/// SWAR-vs-scalar base64 throughput over an 8 MB payload — measured
/// directly because the cached aggregation path deliberately avoids most
/// encode work, which would otherwise hide the encoder win entirely.
fn encode_microbench(reps: usize) -> Value {
    let payload: Vec<u8> =
        (0..8 * 1024 * 1024).map(|i| (i as u32).wrapping_mul(131) as u8).collect();
    let mb = payload.len() as f64 / (1024.0 * 1024.0);
    let mut scalar_best = f64::INFINITY;
    let mut swar_best = f64::INFINITY;
    let mut scalar_out = String::new();
    let mut swar_out = String::new();
    for _ in 0..reps.max(3) {
        let t = Instant::now();
        scalar_out = black_box(encode_scalar(black_box(&payload)));
        scalar_best = scalar_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        swar_out = black_box(encode(black_box(&payload)));
        swar_best = swar_best.min(t.elapsed().as_secs_f64());
    }
    assert_eq!(scalar_out, swar_out, "SWAR encoder must be byte-identical to scalar");
    json!({
        "payload_mb": mb,
        "scalar_mb_s": mb / scalar_best,
        "swar_mb_s": mb / swar_best,
        "speedup_swar_vs_scalar": scalar_best / swar_best,
    })
}

/// `BENCH_aggregate.json` → `BENCH_aggregate.degraded.json`.
fn degraded_artifact_name(out_path: &str) -> String {
    match out_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.degraded.json"),
        None => format!("{out_path}.degraded"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_aggregate.json".to_string());
    let par_threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    assert!(par_threads >= 1, "--threads must be at least 1");
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let degraded_single_core = available == 1;
    if degraded_single_core {
        eprintln!(
            "WARNING: available_parallelism() == 1 — parallel-vs-sequential speedups below \
             measure scheduling overhead, not parallelism; treat this run as degraded."
        );
    }

    let many_versions = if quick { 48 } else { 96 };
    let legs: [(usize, Shape); 3] =
        [(2, Shape::MbPages), (8, Shape::MbPages), (many_versions, Shape::ManyVersions)];

    let mut runs = Vec::new();
    for (n, shape) in legs {
        let (store, params) = setup(n, shape);
        let page_bytes = store
            .get("pages/v0/index.html")
            .map(|r| r.data.len())
            .expect("corpus main page exists");

        let baseline_ms = time_best(reps, &format!("base-n{n}"), |db, grid| {
            baseline_prepare(db, grid, &params, &store)
        });
        let seq_cold_ms = time_best(reps, &format!("seq-n{n}"), |db, grid| {
            Aggregator::new(db.clone(), grid.clone())
                .with_threads(1)
                .prepare(&params, &store, &mut StdRng::seed_from_u64(1))
                .map(|_| ())
                .expect("prepare");
        });
        let mut cache_stats = None;
        let par_cold_ms = time_best(reps, &format!("par-n{n}"), |db, grid| {
            let agg = Aggregator::new(db.clone(), grid.clone()).with_threads(par_threads);
            agg.prepare(&params, &store, &mut StdRng::seed_from_u64(1)).expect("prepare");
            cache_stats = Some(agg.cache().stats());
        });
        // Warm: the shared cache already holds every asset of this corpus.
        let warm_cache = Arc::new(AssetCache::new());
        {
            let dir = tempdir(&format!("warmup-n{n}"));
            let (db, _) = Database::open_durable(&dir).expect("durable open");
            Aggregator::new(db, GridStore::new())
                .with_threads(par_threads)
                .with_shared_cache(Arc::clone(&warm_cache))
                .prepare(&params, &store, &mut StdRng::seed_from_u64(1))
                .expect("warmup prepare");
            let _ = std::fs::remove_dir_all(&dir);
        }
        let par_warm_ms = time_best(reps, &format!("warm-n{n}"), |db, grid| {
            Aggregator::new(db.clone(), grid.clone())
                .with_threads(par_threads)
                .with_shared_cache(Arc::clone(&warm_cache))
                .prepare(&params, &store, &mut StdRng::seed_from_u64(1))
                .map(|_| ())
                .expect("prepare");
        });

        // Determinism check: sequential and parallel bytes must agree.
        let (seq_db, seq_grid) = (Database::new(), GridStore::new());
        let (par_db, par_grid) = (Database::new(), GridStore::new());
        Aggregator::new(seq_db, seq_grid.clone())
            .with_threads(1)
            .prepare(&params, &store, &mut StdRng::seed_from_u64(1))
            .expect("prepare");
        Aggregator::new(par_db, par_grid.clone())
            .with_threads(par_threads.max(available))
            .prepare(&params, &store, &mut StdRng::seed_from_u64(1))
            .expect("prepare");
        let artifacts_identical = identical(&seq_grid, &par_grid, &params.test_id);

        let stats = cache_stats.expect("parallel run recorded stats");
        let run = json!({
            "versions": n,
            "shape": shape.name(),
            "main_page_bytes": page_bytes,
            "corpus_bytes": store.total_bytes(),
            "baseline_seq_uncached_ms": baseline_ms,
            "seq_cold_ms": seq_cold_ms,
            "par_cold_ms": par_cold_ms,
            "par_warm_ms": par_warm_ms,
            "par_threads": par_threads,
            "speedup_par_cold_vs_baseline": baseline_ms / par_cold_ms,
            "speedup_par_warm_vs_baseline": baseline_ms / par_warm_ms,
            "speedup_seq_cached_vs_baseline": baseline_ms / seq_cold_ms,
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "entries": stats.entries,
                "encoded_bytes": stats.encoded_bytes,
                "saved_bytes": stats.saved_bytes,
                "hit_ratio": stats.hit_ratio(),
                // Machine-independent work metric: bytes the baseline
                // encodes divided by bytes the cached path encodes.
                "encode_work_avoided_ratio": (stats.encoded_bytes + stats.saved_bytes) as f64
                    / stats.encoded_bytes.max(1) as f64,
            },
            "artifacts_identical_seq_vs_par": artifacts_identical,
        });
        println!(
            "n={n} [{}]: baseline {baseline_ms:.1} ms, seq {seq_cold_ms:.1} ms ({:.2}x), \
             par({par_threads}) cold {par_cold_ms:.1} ms ({:.2}x), warm {par_warm_ms:.1} ms ({:.2}x), \
             cache {}/{} hits, identical={artifacts_identical}",
            shape.name(),
            baseline_ms / seq_cold_ms,
            baseline_ms / par_cold_ms,
            baseline_ms / par_warm_ms,
            stats.hits,
            stats.hits + stats.misses,
        );
        runs.push(run);
    }

    let encode_stats = encode_microbench(reps);
    println!(
        "base64 encode (8 MB): scalar {:.0} MB/s, SWAR {:.0} MB/s ({:.2}x)",
        encode_stats["scalar_mb_s"].as_f64().unwrap_or(0.0),
        encode_stats["swar_mb_s"].as_f64().unwrap_or(0.0),
        encode_stats["speedup_swar_vs_scalar"].as_f64().unwrap_or(0.0),
    );

    let report = json!({
        "bench": "aggregate",
        "threads_available": available,
        "degraded_single_core": degraded_single_core,
        "par_threads": par_threads,
        "repetitions": reps,
        "encode": encode_stats,
        "runs": Value::Array(runs),
    });
    // A single-core run measures scheduler overhead, not parallelism:
    // never let it occupy the artifact name CI asserts on or the repo
    // commits. It still gets written — under a name that says what it is.
    let effective_out = if degraded_single_core {
        let degraded = degraded_artifact_name(&out_path);
        eprintln!(
            "single-core runner: refusing to write {out_path}; degraded report goes to {degraded}"
        );
        degraded
    } else {
        out_path
    };
    std::fs::write(&effective_out, serde_json::to_string_pretty(&report).expect("serialize"))
        .expect("write bench report");
    println!("wrote {effective_out}");
}
