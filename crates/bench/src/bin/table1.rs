//! Table I — the test parameters, instantiated for each of the paper's
//! three experiments and round-tripped through their JSON form.

use kscope_core::corpus;
use kscope_core::TestParams;

fn show(label: &str, params: &TestParams) {
    println!("\n=== {label} ===");
    let json = params.to_json();
    println!("{json}");
    let back = TestParams::from_json(&json).expect("round-trip");
    assert_eq!(&back, params);
    println!(
        "-- {} webpages, {} integrated pages (C(N,2)), {} question(s), {} participants --",
        params.webpage_num,
        params.integrated_page_count(),
        params.question.len(),
        params.participant_num
    );
}

fn main() {
    println!("Table I: test parameters (JSON), one instance per experiment");
    let (_, font) = corpus::font_size_study(100);
    let (_, expand) = corpus::expand_button_study(100);
    let (_, uplt) = corpus::uplt_case_study(100);
    show("font-size study (§IV-A)", &font);
    show("expand-button study (§IV-B)", &expand);
    show("uPLT case study (§IV-C)", &uplt);
    println!("\nall three validated and JSON-round-tripped successfully");
}
