//! Video-baseline ablation — why Kaleidoscope instead of Eyeorg.
//!
//! §I/§V: video-based platforms (Eyeorg, WebGaze) give every participant a
//! consistent *loading* experience, but "other style parameters (e.g.,
//! font size, etc.) cannot be tested at the same time since the video may
//! change these parameters. The font size could be changed when we change
//! the video size."
//!
//! We make that concrete: a simulated video platform serves each
//! participant a recording scaled to their player width, which rescales
//! the apparent font size by an uncontrolled per-participant factor.
//! Kaleidoscope's in-browser pages render at true size. Same workers, same
//! question — the video arm's font-size consensus collapses.

use kscope_crowd::perception::FontSizeModel;
use kscope_crowd::{PopulationMix, Worker};
use kscope_stats::rank::{borda_ranking, PairwiseMatrix};
use rand::{rngs::StdRng, RngExt, SeedableRng};

const SIZES: [f64; 5] = [10.0, 12.0, 14.0, 18.0, 22.0];

fn run_arm(video: bool, workers: usize, seed: u64) -> (Vec<usize>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = FontSizeModel::default();
    let mut matrix = PairwiseMatrix::new(SIZES.len());
    for i in 0..workers {
        let w = Worker::generate(i as u64, &PopulationMix::in_lab(), &mut rng);
        // Video players vary: phones shrink the recording, desktops may
        // enlarge it. Scale in [0.55, 1.3] per participant.
        let scale = if video { 0.55 + rng.random::<f64>() * 0.75 } else { 1.0 };
        for (a, &size_a) in SIZES.iter().enumerate() {
            for (bo, &size_b) in SIZES.iter().enumerate().skip(a + 1) {
                let judged = model.judge(&w, size_a * scale, size_b * scale, &mut rng);
                matrix.record(a, bo, judged.preference);
            }
        }
    }
    let ranking = borda_ranking(&matrix);
    // Share of decisive answers in which the CHI-consensus winner (12pt)
    // beat 22pt — a stability probe.
    let wins = matrix.wins(1, 4) as f64;
    let total = (matrix.wins(1, 4) + matrix.wins(4, 1)).max(1) as f64;
    (ranking, wins / total)
}

fn main() {
    println!("Testing font size through videos (Eyeorg-style) vs in-browser pages\n");
    let workers = 150;
    for (label, video) in
        [("Kaleidoscope (true-size pages)", false), ("video platform (scaled players)", true)]
    {
        let (ranking, stability) = run_arm(video, workers, 7);
        println!(
            "{label:<34} ranking: {:?}   12pt-beats-22pt consistency: {:.0}%",
            ranking.iter().map(|&v| format!("{:.0}pt", SIZES[v])).collect::<Vec<_>>(),
            stability * 100.0
        );
    }
    println!(
        "\nnote what survives and what breaks: extreme contrasts (12 vs 22 pt) \
         survive scaling, but the *absolute* judgment the CHI question needs \
         is gone — a 14pt page in a shrunken player looks like 9pt. This is \
         the paper's argument for replaying page loads inside a real page \
         rather than inside a video."
    );
}
