//! The §IV-C future-work experiment, realized: "Kaleidoscope can do more
//! with replaying page loading, e.g., comparing http/1.1 and http/2.0."
//!
//! We build two versions of the same object-heavy page whose reveal
//! schedules replay an HTTP/1.1 waterfall and an HTTP/2 multiplexed
//! download over the same 3G link, then ask a simulated crowd which one
//! "seems ready to use first".

use kscope_core::corpus;
use kscope_core::{Aggregator, Campaign, QuestionKind, TestParams, WebpageSpec};
use kscope_crowd::platform::{Channel, JobSpec, Platform};
use kscope_pageload::network::{NetworkProfile, Waterfall, WaterfallResource};
use kscope_singlefile::ResourceStore;
use kscope_store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // An object-heavy page: the article plus many small images — the
    // workload where HTTP/2's multiplexing pays.
    let mut store = ResourceStore::new();
    corpus::write_wikipedia_article(&mut store, "pages/h1", 12.0);
    corpus::write_wikipedia_article(&mut store, "pages/h2", 12.0);

    let mut resources = vec![
        WaterfallResource { selector: "body".into(), bytes: 45_000, render_blocking: true },
        WaterfallResource { selector: "#content".into(), bytes: 9_000, render_blocking: true },
    ];
    for i in 0..14 {
        resources.push(WaterfallResource {
            selector: if i % 2 == 0 { "#infobox img".into() } else { "#infobox table".into() },
            bytes: 12_000 + i * 900,
            render_blocking: false,
        });
    }
    let link = NetworkProfile::three_g();
    let h1 = Waterfall::simulate(&link, &resources);
    let h2 = Waterfall::simulate_h2(&link, &resources);
    println!("simulated 3G waterfalls over the same page:");
    println!(
        "  http/1.1: blocking done {} ms, all objects {} ms",
        h1.blocking_done_ms,
        h1.total_ms()
    );
    println!(
        "  http/2:   blocking done {} ms, all objects {} ms",
        h2.blocking_done_ms,
        h2.total_ms()
    );

    let params = TestParams::new(
        "h1-vs-h2",
        80,
        vec!["Which version of the webpage seems ready to use first?"],
        vec![
            WebpageSpec::new("pages/h1", "index.html", 0)
                .with_page_load(&h1.to_load_spec())
                .with_description("http/1.1 replay"),
            WebpageSpec::new("pages/h2", "index.html", 0)
                .with_page_load(&h2.to_load_spec())
                .with_description("http/2 replay"),
        ],
    );
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(17);
    let prepared = Aggregator::new(db.clone(), grid.clone())
        .prepare(&params, &store, &mut rng)
        .expect("prepare");
    let recruitment = Platform.post_job(
        &JobSpec::new(&params.test_id, 0.11, 80, Channel::HistoricallyTrustworthy),
        &mut rng,
    );
    let outcome = Campaign::new(db, grid)
        .with_question(params.question[0].text(), QuestionKind::ReadyToUse)
        .run(&params, &prepared, &recruitment, &mut rng)
        .expect("campaign");

    let votes = outcome
        .question_analysis(params.question[0].text(), true)
        .two_version_votes()
        .expect("two versions");
    let (h1_pref, same, h2_pref) = votes.percentages();
    println!(
        "\ntesters say ready first: http/1.1 {h1_pref:.0}%   same {same:.0}%   http/2 {h2_pref:.0}%"
    );
    println!("one-tailed p (http/2 wins): {:.2e}", votes.significance().p_value);
    println!(
        "\nthe protocol difference — invisible to a lab with fast WiFi — becomes a \
         measurable QoE verdict once Kaleidoscope replays the slow-link waterfalls \
         for every tester."
    );
}
