//! Figure 8 — responses to all three §IV-B questions via Kaleidoscope.
//!
//! Paper shape: question A ("graphically more appealing?") — 50% Same, the
//! tiny redesign doesn't change the page's look; question B ("looks
//! better?") — Same (45%) narrowly edges the variant (42%); question C
//! ("more visible?") — the variant wins decisively (46 vs 14).

use kscope_bench::{run_expand_study, Cohort, EXPAND_QUESTIONS};

fn main() {
    println!("Figure 8: responses of all questions in Kaleidoscope (100 participants)");
    let study = run_expand_study(100, Cohort::paper_crowd(), 42);

    println!(
        "\n{:<12} {:>14} {:>10} {:>14} {:>12}",
        "question", "original (A)", "Same", "variant (B)", "p-value"
    );
    let paper = [(19.0, 50.0, 31.0), (13.0, 45.0, 42.0), (14.0, 40.0, 46.0)];
    for (i, q) in EXPAND_QUESTIONS.iter().enumerate() {
        let votes = study
            .outcome
            .question_analysis(q, false)
            .two_version_votes()
            .expect("two-version study");
        let (a, same, b) = votes.percentages();
        let sig = votes.significance();
        println!(
            "{:<12} {a:>13.0}% {same:>9.0}% {b:>13.0}% {:>12.2e}",
            ["A", "B", "C"][i],
            sig.p_value
        );
        println!(
            "{:<12} {:>13.0}% {:>9.0}% {:>13.0}%   (paper)",
            "", paper[i].0, paper[i].1, paper[i].2
        );
    }

    println!("\nshape checks:");
    let get = |i: usize| {
        study
            .outcome
            .question_analysis(EXPAND_QUESTIONS[i], false)
            .two_version_votes()
            .expect("two-version study")
    };
    let (qa, qb, qc) = (get(0), get(1), get(2));
    println!(
        "  A: 'Same' is the modal answer ........ {}",
        qa.same >= qa.left && qa.same >= qa.right
    );
    println!(
        "  B: variant gains ground vs A ......... {}",
        (qb.right as f64 / qb.total() as f64) > (qa.right as f64 / qa.total() as f64)
    );
    println!("  C: variant wins outright .............. {}", qc.right > qc.left * 2);
    println!(
        "  C is significant, A is not ............ {}",
        qc.significance().significant_at(0.01) && !qa.significance().significant_at(0.01)
    );
}
