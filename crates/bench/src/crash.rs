//! Kill −9 process-chaos harness (DESIGN.md §16).
//!
//! Runs a crash-only supervised campaign (`kscope demo --supervised
//! --data … --json`) in a child process, SIGKILLs it at seeded
//! instants — the `KSCOPE-BEACON phase=… n=…` lines the CLI emits at
//! every supervisor step — restarts it with `--resume`, and proves the
//! final report, the stored response set, and the spend are exactly what
//! an undisturbed run of the same seed produces. The kill is a real
//! `SIGKILL` delivered mid-write to a separate process: no destructor,
//! no flush, no atexit handler softens it.

use kscope_store::Database;
use serde_json::{json, Value};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

/// A beacon at which the child process is SIGKILLed: the incarnation
/// dies the moment it prints `KSCOPE-BEACON phase={phase} n={n}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillPoint {
    /// Beacon phase: `refill`, `session`, `sweep`, `checkpoint`,
    /// `resume`, or `concluded`.
    pub phase: String,
    /// The beacon's `n` value (session count, round number, …).
    pub n: u64,
}

impl KillPoint {
    /// A kill point at `phase`/`n`.
    pub fn at(phase: &str, n: u64) -> Self {
        Self { phase: phase.to_string(), n }
    }

    fn beacon_line(&self) -> String {
        format!("KSCOPE-BEACON phase={} n={}", self.phase, self.n)
    }
}

/// What to run and where to kill it.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Path to the `kscope` binary under test.
    pub kscope_bin: PathBuf,
    /// Scratch directory; the harness creates `undisturbed/` and
    /// `disturbed/` durable databases underneath and wipes both first.
    pub scratch: PathBuf,
    /// Demo corpus (`font`, `expand`, `uplt`, `ads`).
    pub demo: String,
    /// Recruited participants per refill round.
    pub participants: usize,
    /// Campaign seed — the whole point: one seed, one outcome, crashes
    /// or not.
    pub seed: u64,
    /// Kill points, applied one per incarnation in order.
    pub kills: Vec<KillPoint>,
}

impl CrashConfig {
    /// The default kill matrix: early in recruitment, mid-session, at
    /// the round boundary, and during the post-sweep checkpoint.
    pub fn matrix(kscope_bin: PathBuf, scratch: PathBuf, seed: u64) -> Self {
        Self {
            kscope_bin,
            scratch,
            demo: "font".to_string(),
            participants: 24,
            seed,
            kills: vec![
                KillPoint::at("refill", 0),
                KillPoint::at("session", 3),
                KillPoint::at("session", 11),
                KillPoint::at("sweep", 0),
                KillPoint::at("checkpoint", 0),
            ],
        }
    }

    /// A two-kill matrix for CI smoke runs.
    pub fn quick(kscope_bin: PathBuf, scratch: PathBuf, seed: u64) -> Self {
        let mut config = Self::matrix(kscope_bin, scratch, seed);
        config.participants = 16;
        config.kills = vec![KillPoint::at("session", 2), KillPoint::at("sweep", 0)];
        config
    }
}

/// One child-process run: its stdout, whether the harness killed it,
/// and its recovery timings.
#[derive(Debug)]
struct Incarnation {
    lines: Vec<String>,
    killed: bool,
    success: bool,
    /// Spawn → first beacon: process start plus recovery replay.
    first_beacon_ms: Option<u64>,
    /// WAL records replayed at open, from the `KSCOPE-RECOVERY` line.
    replayed_records: Option<u64>,
}

/// The matrix verdict: every comparison between the disturbed and the
/// undisturbed campaign, plus the recovery-cost observations.
#[derive(Debug)]
pub struct CrashReport {
    /// Kill points that actually fired (a campaign can conclude before
    /// a late kill point is reached).
    pub kills_fired: usize,
    /// Child processes spawned for the disturbed campaign.
    pub incarnations: usize,
    /// `resumed_count` recorded in the disturbed ledger.
    pub resumed_count: u64,
    /// Final report JSON identical to the undisturbed run's.
    pub report_match: bool,
    /// Stored `contributor|submission` response key sets identical.
    pub keys_match: bool,
    /// Ledger `budget_spent_cents`, disturbed run.
    pub budget_cents_disturbed: i64,
    /// Ledger `budget_spent_cents`, undisturbed run.
    pub budget_cents_undisturbed: i64,
    /// Spawn → first beacon per resumed incarnation, milliseconds.
    pub recovery_ms: Vec<u64>,
    /// WAL records replayed per resumed incarnation.
    pub replayed_records: Vec<u64>,
    /// The undisturbed run's final report JSON.
    pub undisturbed: Value,
    /// The disturbed run's final report JSON.
    pub disturbed: Value,
}

impl CrashReport {
    /// The tentpole invariant: crashes changed nothing — same report,
    /// same stored responses, and not a cent more spent.
    pub fn zero_loss(&self) -> bool {
        self.report_match
            && self.keys_match
            && self.budget_cents_disturbed <= self.budget_cents_undisturbed
    }

    /// Machine-readable form for `BENCH_crash.json`.
    pub fn to_json(&self) -> Value {
        json!({
            "kills_fired": self.kills_fired,
            "incarnations": self.incarnations,
            "resumed_count": self.resumed_count,
            "report_match": self.report_match,
            "keys_match": self.keys_match,
            "budget_cents": {
                "disturbed": self.budget_cents_disturbed,
                "undisturbed": self.budget_cents_undisturbed,
            },
            "recovery_ms": self.recovery_ms,
            "replayed_records": self.replayed_records,
            "zero_loss": self.zero_loss(),
        })
    }
}

fn io_err(msg: String) -> std::io::Error {
    std::io::Error::other(msg)
}

/// Spawns one `kscope demo` incarnation against `data`, optionally
/// SIGKILLing it the instant `kill`'s beacon line appears on stdout.
fn run_incarnation(
    config: &CrashConfig,
    data: &Path,
    resume: bool,
    kill: Option<&KillPoint>,
) -> std::io::Result<Incarnation> {
    let mut cmd = Command::new(&config.kscope_bin);
    cmd.arg("demo")
        .arg(&config.demo)
        .arg("--supervised")
        .arg("--participants")
        .arg(config.participants.to_string())
        .arg("--seed")
        .arg(config.seed.to_string())
        .arg("--data")
        .arg(data)
        .arg("--json")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if resume {
        cmd.arg("--resume");
    }
    let start = Instant::now();
    let mut child = cmd.spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let kill_line = kill.map(KillPoint::beacon_line);
    let mut lines = Vec::new();
    let mut killed = false;
    let mut first_beacon_ms = None;
    let mut replayed_records = None;
    for line in BufReader::new(stdout).lines() {
        let line = line?;
        if line.starts_with("KSCOPE-BEACON ") && first_beacon_ms.is_none() {
            first_beacon_ms = Some(u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX));
        }
        if let Some(rest) = line.split("replayed_records=").nth(1) {
            replayed_records = rest.split_whitespace().next().and_then(|v| v.parse::<u64>().ok());
        }
        let is_kill = kill_line.as_deref() == Some(line.as_str());
        lines.push(line);
        if is_kill && !killed {
            killed = true;
            // SIGKILL — the child gets no chance to flush or unwind.
            child.kill()?;
        }
    }
    let status = child.wait()?;
    Ok(Incarnation { lines, killed, success: status.success(), first_beacon_ms, replayed_records })
}

/// Extracts the pretty-printed report JSON a completed incarnation
/// prints after its banner and beacon lines.
fn parse_report(lines: &[String]) -> std::io::Result<Value> {
    let body: String = lines
        .iter()
        .skip_while(|l| !l.starts_with('{'))
        .map(String::as_str)
        .collect::<Vec<_>>()
        .join("\n");
    serde_json::from_str(&body)
        .map_err(|e| io_err(format!("child printed no parseable report: {e}")))
}

/// Stored response identities, the exactly-once unit of the campaign.
fn response_keys(data: &Path) -> std::io::Result<BTreeSet<String>> {
    let (db, _) = Database::open_durable(data).map_err(|e| io_err(e.to_string()))?;
    Ok(db
        .collection("responses")
        .all()
        .iter()
        .map(|d| {
            format!(
                "{}|{}",
                d["contributor_id"].as_str().unwrap_or("?"),
                d["submission_id"].as_str().unwrap_or("?")
            )
        })
        .collect())
}

/// The campaign-ledger document left in a durable database.
fn ledger_doc(data: &Path) -> std::io::Result<Value> {
    let (db, _) = Database::open_durable(data).map_err(|e| io_err(e.to_string()))?;
    db.collection("campaign_ledger")
        .all()
        .into_iter()
        .next()
        .ok_or_else(|| io_err("no campaign ledger in the durable database".to_string()))
}

/// Runs the full matrix: one undisturbed campaign, then the same seed
/// under the configured kill schedule, then every comparison.
///
/// # Errors
///
/// I/O errors spawning or reading the child, a child failing for any
/// reason other than the harness's own SIGKILL, or an unparseable
/// report.
pub fn run_crash_matrix(config: &CrashConfig) -> std::io::Result<CrashReport> {
    let undisturbed_dir = config.scratch.join("undisturbed");
    let disturbed_dir = config.scratch.join("disturbed");
    for dir in [&undisturbed_dir, &disturbed_dir] {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir)?;
    }

    let clean = run_incarnation(config, &undisturbed_dir, false, None)?;
    if !clean.success {
        return Err(io_err("undisturbed campaign failed".to_string()));
    }
    let undisturbed = parse_report(&clean.lines)?;

    let mut kills_fired = 0;
    let mut incarnations = 0;
    let mut recovery_ms = Vec::new();
    let mut replayed_records = Vec::new();
    let mut resume = false;
    let mut concluded: Option<Incarnation> = None;
    for kill in &config.kills {
        let inc = run_incarnation(config, &disturbed_dir, resume, Some(kill))?;
        incarnations += 1;
        if resume {
            recovery_ms.extend(inc.first_beacon_ms);
            replayed_records.extend(inc.replayed_records);
        }
        if inc.killed {
            kills_fired += 1;
            resume = true;
        } else if inc.success {
            // The campaign concluded before this kill point was reached.
            concluded = Some(inc);
            break;
        } else {
            return Err(io_err(format!(
                "disturbed incarnation died without being killed (kill point {kill:?})"
            )));
        }
    }
    let finale = match concluded {
        Some(inc) => inc,
        None => {
            let inc = run_incarnation(config, &disturbed_dir, true, None)?;
            incarnations += 1;
            if !inc.success {
                return Err(io_err("final resume incarnation failed".to_string()));
            }
            recovery_ms.extend(inc.first_beacon_ms);
            replayed_records.extend(inc.replayed_records);
            inc
        }
    };
    let disturbed = parse_report(&finale.lines)?;

    let keys_match = response_keys(&undisturbed_dir)? == response_keys(&disturbed_dir)?;
    let ledger_disturbed = ledger_doc(&disturbed_dir)?;
    let ledger_undisturbed = ledger_doc(&undisturbed_dir)?;
    let cents = |doc: &Value| doc.get("budget_spent_cents").and_then(Value::as_i64).unwrap_or(-1);
    Ok(CrashReport {
        kills_fired,
        incarnations,
        resumed_count: ledger_disturbed.get("resumed_count").and_then(Value::as_u64).unwrap_or(0),
        report_match: undisturbed == disturbed,
        keys_match,
        budget_cents_disturbed: cents(&ledger_disturbed),
        budget_cents_undisturbed: cents(&ledger_undisturbed),
        recovery_ms,
        replayed_records,
        undisturbed,
        disturbed,
    })
}
