//! Statistics kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use kscope_stats::rank::{bradley_terry, PairwiseMatrix, Preference};
use kscope_stats::tests::{two_proportion_z_test, Tail};
use kscope_stats::{Ecdf, Normal};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::hint::black_box;

fn bench_stats(c: &mut Criterion) {
    c.bench_function("stats/normal_cdf", |b| {
        let n = Normal::standard();
        b.iter(|| black_box(n.cdf(1.2345)))
    });
    c.bench_function("stats/z_test", |b| {
        b.iter(|| black_box(two_proportion_z_test(14, 100, 46, 100, Tail::OneSidedGreater)))
    });
    c.bench_function("stats/quantile", |b| {
        let n = Normal::standard();
        b.iter(|| black_box(n.quantile(0.975)))
    });

    let mut rng = StdRng::seed_from_u64(1);
    let mut m = PairwiseMatrix::new(8);
    for _ in 0..2000 {
        let a = rng.random_range(0..8);
        let b2 = (a + 1 + rng.random_range(0..7)) % 8;
        let p = match rng.random_range(0..3) {
            0 => Preference::Left,
            1 => Preference::Right,
            _ => Preference::Same,
        };
        m.record(a, b2, p);
    }
    c.bench_function("stats/bradley_terry_8x2000", |b| {
        b.iter(|| black_box(bradley_terry(&m, 100, 1e-9)[0]))
    });

    let sample: Vec<f64> = (0..5000).map(|_| rng.random::<f64>() * 10.0).collect();
    c.bench_function("stats/ecdf_build_5k", |b| {
        b.iter(|| black_box(Ecdf::new(sample.clone()).len()))
    });
    let e = Ecdf::new(sample);
    c.bench_function("stats/ecdf_eval", |b| b.iter(|| black_box(e.eval(5.0))));
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
