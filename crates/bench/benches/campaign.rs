//! End-to-end campaign throughput: how many simulated participant sessions
//! per second the whole pipeline sustains.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kscope_bench::{run_font_study, run_uplt_study, Cohort};
use std::hint::black_box;

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("font_study_20_workers", |b| {
        b.iter_batched(
            || (),
            |()| black_box(run_font_study(20, Cohort::paper_crowd(), 1).outcome.sessions.len()),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("uplt_study_20_workers", |b| {
        b.iter_batched(
            || (),
            |()| black_box(run_uplt_study(20, Cohort::paper_crowd(), 1).outcome.sessions.len()),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
