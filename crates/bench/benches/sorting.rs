//! The §III-D comparison reduction: time per strategy (the *comparison
//! counts* — the quantity that costs money — are printed by the
//! `sorting_ablation` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use kscope_core::sorting::{sort_versions, SortAlgo};
use kscope_stats::rank::Preference;
use std::hint::black_box;

fn bench_sorting(c: &mut Criterion) {
    let n = 24;
    let values: Vec<f64> = (0..n).map(|i| ((i * 13) % n) as f64).collect();
    for algo in [SortAlgo::FullPairwise, SortAlgo::Bubble, SortAlgo::Insertion, SortAlgo::Merge] {
        c.bench_function(&format!("sorting/{algo:?}_n24"), |b| {
            b.iter(|| {
                let out = sort_versions(n, algo, |a, b2| {
                    if values[a] > values[b2] {
                        Preference::Left
                    } else if values[a] < values[b2] {
                        Preference::Right
                    } else {
                        Preference::Same
                    }
                });
                black_box(out.comparisons)
            })
        });
    }
}

criterion_group!(benches, bench_sorting);
criterion_main!(benches);
