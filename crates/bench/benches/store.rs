//! Document-store operations (the MongoDB substitute).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kscope_store::{Collection, Database};
use serde_json::json;
use std::hint::black_box;

fn filled(n: usize) -> Collection {
    let c = Collection::new();
    for i in 0..n {
        c.insert_one(json!({
            "test_id": format!("t{}", i % 10),
            "contributor_id": format!("w{i}"),
            "answers": {"q": if i % 3 == 0 { "Left" } else { "Right" }},
            "duration_ms": i * 31,
        }));
    }
    c
}

fn bench_store(c: &mut Criterion) {
    let coll = filled(10_000);
    c.bench_function("store/insert_1k", |b| {
        b.iter_batched(
            Collection::new,
            |c| {
                for i in 0..1000 {
                    c.insert_one(json!({"i": i}));
                }
                c.len()
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("store/find_eq_10k", |b| {
        b.iter(|| black_box(coll.find(&json!({"test_id": "t3"})).len()))
    });
    c.bench_function("store/find_range_10k", |b| {
        b.iter(|| black_box(coll.count(&json!({"duration_ms": {"$gt": 100_000}}))))
    });
    c.bench_function("store/find_nested_10k", |b| {
        b.iter(|| black_box(coll.count(&json!({"answers.q": "Left"}))))
    });
    c.bench_function("store/database_collection_lookup", |b| {
        let db = Database::new();
        db.collection("responses");
        b.iter(|| black_box(db.collection("responses").len()))
    });
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
