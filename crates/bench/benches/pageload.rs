//! Page-load machinery: layout, reveal-plan construction, timeline
//! execution, and metric computation.

use criterion::{criterion_group, criterion_main, Criterion};
use kscope_html::parse_document;
use kscope_pageload::metrics::{speed_index, UpltWeights};
use kscope_pageload::{Layout, LoadSpec, PaintTimeline, RevealPlan, Viewport};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn bench_pageload(c: &mut Criterion) {
    let mut store = kscope_singlefile::ResourceStore::new();
    kscope_core::corpus::write_wikipedia_article(&mut store, "w", 12.0);
    let html = store.get_text("w/index.html").unwrap();
    let doc = parse_document(&html);
    let viewport = Viewport::desktop();
    let layout = Layout::compute(&doc, viewport);
    let spec = LoadSpec::Uniform(3000);
    let mut rng = StdRng::seed_from_u64(1);
    let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
    let tl = PaintTimeline::from_plan(&doc, &layout, &plan);

    c.bench_function("pageload/layout", |b| {
        b.iter(|| black_box(Layout::compute(&doc, viewport).total_area()))
    });
    c.bench_function("pageload/plan_uniform", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(RevealPlan::build(&doc, &layout, &spec, &mut rng).len()))
    });
    c.bench_function("pageload/timeline", |b| {
        b.iter(|| black_box(PaintTimeline::from_plan(&doc, &layout, &plan).last_paint_ms()))
    });
    c.bench_function("pageload/speed_index", |b| b.iter(|| black_box(speed_index(&tl))));
    c.bench_function("pageload/uplt", |b| {
        let w = UpltWeights::reader_defaults();
        b.iter(|| black_box(w.uplt_ms(&tl, &layout)))
    });
}

criterion_group!(benches, bench_pageload);
criterion_main!(benches);
