//! HTML substrate benchmarks: tokenize/parse, selector matching, and
//! serialization on the corpus article.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kscope_html::{parse_document, Selector};
use kscope_singlefile::ResourceStore;
use std::hint::black_box;

fn article_html() -> String {
    let mut store = ResourceStore::new();
    kscope_core::corpus::write_wikipedia_article(&mut store, "w", 12.0);
    store.get_text("w/index.html").expect("corpus page")
}

fn bench_html(c: &mut Criterion) {
    let html = article_html();
    let doc = parse_document(&html);
    let selector: Selector = "#mw-content-text > p".parse().unwrap();
    let deep: Selector = "div .infobox table td".parse().unwrap();

    c.bench_function("html/parse_article", |b| b.iter(|| parse_document(black_box(&html))));
    c.bench_function("html/select_child", |b| b.iter(|| black_box(doc.select(&selector).len())));
    c.bench_function("html/select_descendant", |b| b.iter(|| black_box(doc.select(&deep).len())));
    c.bench_function("html/serialize", |b| b.iter(|| black_box(doc.to_html().len())));
    c.bench_function("html/roundtrip", |b| {
        b.iter_batched(
            || html.clone(),
            |h| parse_document(&parse_document(&h).to_html()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_html);
criterion_main!(benches);
