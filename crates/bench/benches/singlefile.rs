//! SingleFile-compression throughput on the corpus pages.

use criterion::{criterion_group, criterion_main, Criterion};
use kscope_singlefile::{Inliner, ResourceStore};
use std::hint::black_box;

fn bench_singlefile(c: &mut Criterion) {
    let mut store = ResourceStore::new();
    kscope_core::corpus::write_wikipedia_article(&mut store, "w", 12.0);
    kscope_core::corpus::write_group_page(
        &mut store,
        "g",
        kscope_core::corpus::GroupPageVersion::Variant,
    );
    // A page with a larger binary payload, close to a real saved page.
    store.insert("w/img/big.jpg", "image/jpeg", vec![0xab; 64 * 1024]);

    c.bench_function("singlefile/inline_article", |b| {
        let inliner = Inliner::new(&store);
        b.iter(|| black_box(inliner.inline("w/index.html").unwrap().html.len()))
    });
    c.bench_function("singlefile/inline_group_page", |b| {
        let inliner = Inliner::new(&store);
        b.iter(|| black_box(inliner.inline("g/index.html").unwrap().html.len()))
    });
    c.bench_function("singlefile/base64_64k", |b| {
        let payload = vec![0x5a_u8; 64 * 1024];
        b.iter(|| black_box(kscope_singlefile::base64::encode(&payload).len()))
    });
}

criterion_group!(benches, bench_singlefile);
criterion_main!(benches);
