//! Aggregator throughput: preparing a whole test (compress + inject +
//! integrate + store) as N versions grow — the paper's C(N,2) blow-up.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kscope_core::{Aggregator, TestParams, WebpageSpec};
use kscope_singlefile::{AssetCache, ResourceStore};
use kscope_store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

fn setup(n: usize) -> (ResourceStore, TestParams) {
    let mut store = ResourceStore::new();
    let mut pages = Vec::new();
    for i in 0..n {
        let folder = format!("pages/v{i}");
        kscope_core::corpus::write_wikipedia_article(&mut store, &folder, 10.0 + i as f64);
        pages.push(WebpageSpec::new(&folder, "index.html", 3000));
    }
    let params = TestParams::new("bench", 10, vec!["q"], pages);
    (store, params)
}

fn bench_aggregator(c: &mut Criterion) {
    for n in [2usize, 5, 8] {
        let (store, params) = setup(n);
        c.bench_function(&format!("aggregator/prepare_n{n}"), |b| {
            b.iter_batched(
                || (Database::new(), GridStore::new(), StdRng::seed_from_u64(1)),
                |(db, grid, mut rng)| {
                    let prepared =
                        Aggregator::new(db, grid).prepare(&params, &store, &mut rng).unwrap();
                    black_box(prepared.pages.len())
                },
                BatchSize::SmallInput,
            )
        });
    }
}

/// The parallel fan-out against the same corpus: one thread versus four,
/// and four threads re-preparing over a pre-warmed shared asset cache.
fn bench_aggregator_parallel(c: &mut Criterion) {
    let n = 8usize;
    let (store, params) = setup(n);
    for threads in [1usize, 4] {
        c.bench_function(&format!("aggregator/prepare_n{n}_t{threads}"), |b| {
            b.iter_batched(
                || (Database::new(), GridStore::new(), StdRng::seed_from_u64(1)),
                |(db, grid, mut rng)| {
                    let prepared = Aggregator::new(db, grid)
                        .with_threads(threads)
                        .prepare(&params, &store, &mut rng)
                        .unwrap();
                    black_box(prepared.pages.len())
                },
                BatchSize::SmallInput,
            )
        });
    }
    let warm = Arc::new(AssetCache::new());
    Aggregator::new(Database::new(), GridStore::new())
        .with_threads(4)
        .with_shared_cache(Arc::clone(&warm))
        .prepare(&params, &store, &mut StdRng::seed_from_u64(1))
        .unwrap();
    c.bench_function(&format!("aggregator/prepare_n{n}_t4_warm"), |b| {
        b.iter_batched(
            || (Database::new(), GridStore::new(), StdRng::seed_from_u64(1)),
            |(db, grid, mut rng)| {
                let prepared = Aggregator::new(db, grid)
                    .with_threads(4)
                    .with_shared_cache(Arc::clone(&warm))
                    .prepare(&params, &store, &mut rng)
                    .unwrap();
                black_box(prepared.pages.len())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_aggregator, bench_aggregator_parallel);
criterion_main!(benches);
