//! Aggregator throughput: preparing a whole test (compress + inject +
//! integrate + store) as N versions grow — the paper's C(N,2) blow-up.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kscope_core::{Aggregator, TestParams, WebpageSpec};
use kscope_singlefile::ResourceStore;
use kscope_store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn setup(n: usize) -> (ResourceStore, TestParams) {
    let mut store = ResourceStore::new();
    let mut pages = Vec::new();
    for i in 0..n {
        let folder = format!("pages/v{i}");
        kscope_core::corpus::write_wikipedia_article(&mut store, &folder, 10.0 + i as f64);
        pages.push(WebpageSpec::new(&folder, "index.html", 3000));
    }
    let params = TestParams::new("bench", 10, vec!["q"], pages);
    (store, params)
}

fn bench_aggregator(c: &mut Criterion) {
    for n in [2usize, 5, 8] {
        let (store, params) = setup(n);
        c.bench_function(&format!("aggregator/prepare_n{n}"), |b| {
            b.iter_batched(
                || (Database::new(), GridStore::new(), StdRng::seed_from_u64(1)),
                |(db, grid, mut rng)| {
                    let prepared =
                        Aggregator::new(db, grid).prepare(&params, &store, &mut rng).unwrap();
                    black_box(prepared.pages.len())
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(benches, bench_aggregator);
criterion_main!(benches);
