//! Core-server wire performance: request round-trips over loopback TCP.

use criterion::{criterion_group, criterion_main, Criterion};
use kscope_server::api::CoreServerApi;
use kscope_server::{client, HttpServer};
use kscope_store::{Database, GridStore};
use serde_json::json;
use std::hint::black_box;

fn bench_server(c: &mut Criterion) {
    let db = Database::new();
    let grid = GridStore::new();
    grid.put("t", "page.html", vec![b'x'; 16 * 1024]);
    db.collection("tests").insert_one(json!({"test_id": "t"}));
    let api = CoreServerApi::new(db, grid);
    let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 4).unwrap();
    let addr = server.local_addr();

    // Connection-per-request vs keep-alive: the same round-trip with and
    // without the TCP handshake in the measured path.
    c.bench_function("server/healthz_roundtrip_close", |b| {
        b.iter(|| black_box(client::get(addr, "/healthz").unwrap().status))
    });
    c.bench_function("server/healthz_roundtrip_keepalive", |b| {
        let mut session = client::Session::new(addr);
        b.iter(|| black_box(session.get("/healthz").unwrap().status))
    });
    c.bench_function("server/serve_16k_page", |b| {
        b.iter(|| black_box(client::get(addr, "/api/tests/t/pages/page.html").unwrap().body.len()))
    });
    c.bench_function("server/post_response", |b| {
        let body = json!({"contributor_id": "w", "answers": {"q": "Left"}});
        b.iter(|| {
            black_box(client::post_json(addr, "/api/tests/t/responses", &body).unwrap().status)
        })
    });
    server.shutdown();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
