//! Chaos soak: a full supervised campaign replayed through a seeded
//! fault-injecting transport must converge to the same ranking with
//! every acknowledged response stored exactly once, and a total outage
//! must be contained by the client's retry budget and circuit breaker.
//!
//! The network disturbance is an environment matrix so CI can sweep it:
//!
//! * `KSCOPE_NET_SEED` — fault transport seed (default 1)
//! * `KSCOPE_NET_FAULT_RATE` — fraction of exchanges disturbed (default 0.25)

use kscope_bench::chaos::{run_chaos_campaign, run_outage_probe, ChaosConfig};

fn knob(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn net_seed() -> u64 {
    knob("KSCOPE_NET_SEED", 1.0) as u64
}

fn fault_rate() -> f64 {
    knob("KSCOPE_NET_FAULT_RATE", 0.25)
}

#[test]
fn chaos_campaign_converges_with_exactly_once_delivery() {
    let config = ChaosConfig::soak(42, net_seed(), fault_rate().max(0.20));
    let report = run_chaos_campaign(&config);

    // The supervised campaign itself stays healthy.
    assert!(report.accounted, "accounting must balance: {report:?}");

    // The network really was hostile…
    assert!(report.faults.total() > 0, "faults must actually be injected: {report:?}");

    // …yet every acknowledged response landed exactly once.
    assert_eq!(report.acked, report.rows_source, "every row must eventually be acked");
    assert_eq!(report.rows_server, report.rows_source, "no lost or duplicated rows");
    assert!(report.keys_match, "(contributor, submission) sets must match: {report:?}");
    assert!(report.summaries_match, "server aggregation must equal in-process: {report:?}");

    // The ranking still converges to the readable middle of the font
    // range, with the oversized 22pt page last.
    assert!(
        report.ranking[0] == 1 || report.ranking[0] == 2,
        "winner must be 12 or 14pt despite chaos: {:?}",
        report.ranking
    );
    assert_eq!(*report.ranking.last().unwrap(), 4, "22pt must lose: {:?}", report.ranking);

    // Deadline propagation is live end to end: the expired probe was
    // refused at admission with a 504 carrying Retry-After.
    assert_eq!(report.expired_probe_status, 504, "expired deadline must be refused");
    assert!(report.expired_probe_retry_after_secs.is_some(), "504 must carry Retry-After");
    assert!(report.server_expired_admission >= 1, "admission counter must record it");
}

#[test]
fn outage_is_contained_by_retry_budget_and_breaker() {
    let report = run_outage_probe(20, net_seed());
    assert!(
        report.within_budget,
        "attempts {} must stay within {} (requests + banked budget)",
        report.attempts, report.bound
    );
    assert!(report.breaker_opens >= 1, "the breaker must open under a full outage: {report:?}");
    assert_eq!(report.breaker_state, 1, "the breaker must still be open at the end: {report:?}");
    assert!(report.budget_denied > 0, "an outage must exhaust the retry budget: {report:?}");
}

#[test]
fn chaos_schedule_is_deterministic_per_seed_pair() {
    let run = |seed: u64, net: u64| {
        let report = run_chaos_campaign(&ChaosConfig::quick(seed, net, 0.25));
        (report.faults, report.rows_server, report.ranking.clone())
    };
    let a = run(7, 3);
    let b = run(7, 3);
    assert_eq!(a, b, "same (campaign, net) seeds must replay identically");
}
