//! Property tests: worker generation and judgment invariants.

use kscope_crowd::perception::{judge_pair, FontSizeModel};
use kscope_crowd::platform::{Channel, JobSpec, Platform};
use kscope_crowd::{PopulationMix, Worker, WorkerProfile};
use kscope_stats::rank::Preference;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Worker traits always fall inside their documented domains.
    #[test]
    fn worker_traits_in_domain(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Worker::generate(0, &PopulationMix::open_channel(), &mut rng);
        prop_assert!((0.0..=1.0).contains(&w.trust_score));
        prop_assert!((9.0..=20.0).contains(&w.ideal_font_pt));
        prop_assert!((0.0..=1.0).contains(&w.text_focus));
        prop_assert!((0.0..=1.0).contains(&w.readiness_threshold));
    }

    /// Judgments of identical utilities are "Same" for every genuine
    /// worker regardless of noise draw.
    #[test]
    fn identical_stimuli_always_same(seed in 0u64..5000, u in -10.0f64..10.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Worker::generate(0, &PopulationMix::in_lab(), &mut rng);
        if let WorkerProfile::Casual { lapse_rate, .. } = w.profile {
            // Lapses may randomize; skip lapse-heavy draws for this check.
            prop_assume!(lapse_rate == 0.0);
        }
        if matches!(w.profile, WorkerProfile::Diligent { .. }) {
            let j = judge_pair(&w, u, u, 0.5, &mut rng);
            prop_assert_eq!(j.preference, Preference::Same);
        }
    }

    /// The font model is symmetric: swapping panes flips the verdict
    /// distributionally — here checked pointwise via a fixed RNG stream on
    /// the utility level.
    #[test]
    fn font_utilities_symmetric(seed in 0u64..2000, a in 9.0f64..22.0, b in 9.0f64..22.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Worker::generate(0, &PopulationMix::in_lab(), &mut rng);
        let m = FontSizeModel::default();
        // Utilities themselves are pane-independent.
        prop_assert_eq!(m.utility(&w, a), m.utility(&w, a));
        prop_assert!(m.utility(&w, a).is_finite());
        prop_assert!(m.utility(&w, b) <= 0.0);
    }

    /// Recruitment produces sorted arrivals, exact quota, and linear cost.
    #[test]
    fn recruitment_invariants(quota in 1usize..60, reward in 0.01f64..1.0, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = JobSpec::new("t", reward, quota, Channel::Open);
        let r = Platform.post_job(&spec, &mut rng);
        prop_assert_eq!(r.assignments.len(), quota);
        prop_assert!(r.assignments.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        prop_assert!((r.cost.worker_payments_usd - reward * quota as f64).abs() < 1e-9);
        prop_assert!(r.cost.platform_fee_usd >= 0.0);
    }
}
