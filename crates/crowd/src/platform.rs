//! Job posting, recruitment processes, and cost accounting.
//!
//! Calibration targets from the paper:
//!
//! * FigureEight, "historically trustworthy" channel, $0.11/participant:
//!   100 responses in ~12 hours (Fig. 7(a) shows all 100 within about a
//!   day).
//! * In-lab: 50 trusted participants recruited over one week.
//! * Higher rewards and parallel campaigns speed Kaleidoscope up (§IV-B
//!   explicitly lists this as untapped speedup).

use crate::targeting::DemographicTarget;
use crate::worker::{PopulationMix, Worker};
use kscope_stats::dist::exponential_sample;
use rand::Rng;

/// Milliseconds per hour.
pub const MS_PER_HOUR: u64 = 3_600_000;
/// Milliseconds per day.
pub const MS_PER_DAY: u64 = 24 * MS_PER_HOUR;

/// Which worker population a job recruits from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// FigureEight's vetted pool: slower arrivals, much better quality.
    HistoricallyTrustworthy,
    /// The open pool: faster arrivals, heavy spam.
    Open,
}

impl Channel {
    /// The population mix this channel draws from.
    pub fn mix(&self) -> PopulationMix {
        match self {
            Channel::HistoricallyTrustworthy => PopulationMix::historically_trustworthy(),
            Channel::Open => PopulationMix::open_channel(),
        }
    }

    /// Baseline arrival rate (workers per hour) at the reference reward of
    /// $0.10.
    fn base_rate_per_hour(&self) -> f64 {
        match self {
            Channel::HistoricallyTrustworthy => 8.3,
            Channel::Open => 20.0,
        }
    }
}

/// A crowdsourcing job posting — what the core server sends to the
/// platform.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The Kaleidoscope test this job recruits for.
    pub test_id: String,
    /// Payment per participant in USD.
    pub reward_usd: f64,
    /// Number of participants to recruit.
    pub quota: usize,
    /// Recruitment channel.
    pub channel: Channel,
    /// Demographic targeting (the "target demographics" input of §I).
    pub target: DemographicTarget,
}

impl JobSpec {
    /// Creates an untargeted job spec.
    ///
    /// # Panics
    ///
    /// Panics if the reward is negative or the quota is zero.
    pub fn new(test_id: &str, reward_usd: f64, quota: usize, channel: Channel) -> Self {
        assert!(reward_usd >= 0.0, "reward cannot be negative");
        assert!(quota > 0, "quota must be positive");
        Self {
            test_id: test_id.to_string(),
            reward_usd,
            quota,
            channel,
            target: DemographicTarget::any(),
        }
    }

    /// Restricts recruitment to a demographic target (builder style).
    /// Targeted jobs recruit proportionally slower: only the qualifying
    /// share of the pool can accept them.
    pub fn with_target(mut self, target: DemographicTarget) -> Self {
        self.target = target;
        self
    }
}

/// One recruited participant with their arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The recruited worker.
    pub worker: Worker,
    /// Arrival time in milliseconds after the job was posted.
    pub arrival_ms: u64,
}

/// Money spent on a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Total paid to workers, USD.
    pub worker_payments_usd: f64,
    /// Platform fee (FigureEight charges a markup), USD.
    pub platform_fee_usd: f64,
}

impl CostReport {
    /// Total campaign cost.
    pub fn total_usd(&self) -> f64 {
        self.worker_payments_usd + self.platform_fee_usd
    }

    /// Cost per participant.
    pub fn per_participant_usd(&self, participants: usize) -> f64 {
        if participants == 0 {
            0.0
        } else {
            self.total_usd() / participants as f64
        }
    }
}

/// The result of posting a job: who arrives when, and at what cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Recruitment {
    /// Participants in arrival order.
    pub assignments: Vec<Assignment>,
    /// Campaign cost.
    pub cost: CostReport,
}

impl Recruitment {
    /// Time until the last participant arrived (ms); 0 if empty.
    pub fn completion_ms(&self) -> u64 {
        self.assignments.last().map(|a| a.arrival_ms).unwrap_or(0)
    }

    /// The cumulative-recruitment curve: `(t_ms, participants so far)` —
    /// Fig. 7(a)'s series.
    pub fn cumulative_curve(&self) -> Vec<(u64, usize)> {
        self.assignments.iter().enumerate().map(|(i, a)| (a.arrival_ms, i + 1)).collect()
    }

    /// Participants recruited within the first `t_ms`.
    pub fn recruited_by(&self, t_ms: u64) -> usize {
        self.assignments.iter().filter(|a| a.arrival_ms <= t_ms).count()
    }
}

/// Anything that can recruit participants for a posted job — "it is easy
/// to extend Kaleidoscope to other crowdsourcing platforms since the
/// development processes are similar for different platforms" (§III-C).
/// The campaign code only needs a [`Recruitment`] back.
pub trait CrowdsourcingPlatform {
    /// Human-readable platform name.
    fn name(&self) -> &str;
    /// Posts a job and returns the recruited participants.
    fn recruit(&self, spec: &JobSpec, rng: &mut dyn rand::Rng) -> Recruitment;
}

/// The crowdsourcing platform simulator (FigureEight substitute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Platform;

impl CrowdsourcingPlatform for Platform {
    fn name(&self) -> &str {
        "figure-eight"
    }

    fn recruit(&self, spec: &JobSpec, rng: &mut dyn rand::Rng) -> Recruitment {
        self.post_job(spec, rng)
    }
}

/// A second platform with Mechanical-Turk-like economics: a bigger pool
/// (faster arrivals) but a steeper fee, demonstrating the multi-platform
/// extension point (and feeding `post_job_parallel`-style campaigns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MturkLike;

impl MturkLike {
    /// MTurk's classic fee on top of worker payments.
    pub const FEE_RATE: f64 = 0.40;
    /// Pool-size advantage over the reference platform.
    pub const RATE_MULTIPLIER: f64 = 1.8;
}

impl CrowdsourcingPlatform for MturkLike {
    fn name(&self) -> &str {
        "mturk-like"
    }

    fn recruit(&self, spec: &JobSpec, rng: &mut dyn rand::Rng) -> Recruitment {
        let mut r = Platform.post_job(spec, rng);
        for a in &mut r.assignments {
            a.arrival_ms = (a.arrival_ms as f64 / Self::RATE_MULTIPLIER) as u64;
        }
        r.cost.platform_fee_usd = r.cost.worker_payments_usd * Self::FEE_RATE;
        r
    }
}

impl Platform {
    /// FigureEight's fee multiplier on worker payments.
    pub const FEE_RATE: f64 = 0.20;

    /// Posts a job: draws Poisson arrivals whose rate scales with the
    /// reward (diminishing returns above the reference $0.10) and shrinks
    /// with the demographic target's selectivity, and samples one
    /// qualifying worker per arrival from the channel's population mix.
    pub fn post_job<R: Rng + ?Sized>(&self, spec: &JobSpec, rng: &mut R) -> Recruitment {
        let selectivity =
            if spec.target.is_any() { 1.0 } else { spec.target.selectivity(4000, rng) };
        let rate_per_hour =
            spec.channel.base_rate_per_hour() * reward_multiplier(spec.reward_usd) * selectivity;
        let rate_per_ms = rate_per_hour / MS_PER_HOUR as f64;
        let mut t = 0.0f64;
        let mix = spec.channel.mix();
        let assignments: Vec<Assignment> = (0..spec.quota)
            .map(|i| {
                t += exponential_sample(rng, rate_per_ms);
                Assignment {
                    worker: spec.target.sample_worker(i as u64, &mix, rng),
                    arrival_ms: t.round() as u64,
                }
            })
            .collect();
        let worker_payments = spec.reward_usd * spec.quota as f64;
        Recruitment {
            assignments,
            cost: CostReport {
                worker_payments_usd: worker_payments,
                platform_fee_usd: worker_payments * Self::FEE_RATE,
            },
        }
    }

    /// Runs the same job on `campaigns` platforms in parallel and merges
    /// the arrivals — the §IV-B note that Kaleidoscope speeds up "via
    /// additional crowdsourcing websites and parallel campaigns". The quota
    /// fills from whichever platform delivers first; cost covers exactly
    /// the recruited quota.
    ///
    /// # Panics
    ///
    /// Panics if `campaigns == 0`.
    pub fn post_job_parallel<R: Rng + ?Sized>(
        &self,
        spec: &JobSpec,
        campaigns: usize,
        rng: &mut R,
    ) -> Recruitment {
        assert!(campaigns > 0, "need at least one campaign");
        let mut merged: Vec<Assignment> = Vec::with_capacity(spec.quota * campaigns);
        for c in 0..campaigns {
            let mut r = self.post_job(spec, rng);
            for (k, a) in r.assignments.iter_mut().enumerate() {
                // Re-tag ids so parallel platforms do not collide.
                a.worker.id = crate::worker::WorkerId(format!("w-{c}-{k:05}"));
            }
            merged.extend(r.assignments);
        }
        merged.sort_by_key(|a| a.arrival_ms);
        merged.truncate(spec.quota);
        let worker_payments = spec.reward_usd * merged.len() as f64;
        Recruitment {
            assignments: merged,
            cost: CostReport {
                worker_payments_usd: worker_payments,
                platform_fee_usd: worker_payments * Self::FEE_RATE,
            },
        }
    }
}

/// How much a reward above/below the $0.10 reference scales arrival rates:
/// square-root growth (doubling pay does not double throughput).
fn reward_multiplier(reward_usd: f64) -> f64 {
    const REFERENCE: f64 = 0.10;
    (reward_usd.max(0.01) / REFERENCE).sqrt()
}

/// Recruits trusted in-lab participants: `n` friends/colleagues spread
/// uniformly over `days` (the paper took one week for 50).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InLabRecruiter {
    /// Number of participants.
    pub n: usize,
    /// Recruitment window in days.
    pub days: f64,
}

impl InLabRecruiter {
    /// Creates a recruiter.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `days <= 0`.
    pub fn new(n: usize, days: f64) -> Self {
        assert!(n > 0 && days > 0.0, "need participants and a positive window");
        Self { n, days }
    }

    /// Runs recruitment: arrival times uniform over the window, all workers
    /// from the in-lab mix. In-lab tests cost no per-judgment reward but
    /// the experimenter's time is the (unaccounted) price.
    pub fn recruit<R: Rng + ?Sized>(&self, rng: &mut R) -> Recruitment {
        use rand::RngExt;
        let window_ms = (self.days * MS_PER_DAY as f64) as u64;
        let mut arrivals: Vec<u64> = (0..self.n).map(|_| rng.random_range(0..=window_ms)).collect();
        arrivals.sort_unstable();
        let mix = PopulationMix::in_lab();
        let assignments = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival_ms)| Assignment {
                worker: Worker::generate(i as u64, &mix, rng),
                arrival_ms,
            })
            .collect();
        Recruitment {
            assignments,
            cost: CostReport { worker_payments_usd: 0.0, platform_fee_usd: 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn paper_calibration_hundred_workers_in_half_day() {
        // $0.11, trustworthy channel, quota 100 -> ~12h (the paper's run).
        let spec = JobSpec::new("t", 0.11, 100, Channel::HistoricallyTrustworthy);
        let mut total = 0.0;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Platform.post_job(&spec, &mut rng);
            total += r.completion_ms() as f64;
        }
        let mean_hours = total / 10.0 / MS_PER_HOUR as f64;
        assert!(
            (8.0..20.0).contains(&mean_hours),
            "expected ~12h to recruit 100, got {mean_hours:.1}h"
        );
    }

    #[test]
    fn cost_accounting_matches_paper() {
        let spec = JobSpec::new("t", 0.11, 100, Channel::HistoricallyTrustworthy);
        let mut rng = StdRng::seed_from_u64(1);
        let r = Platform.post_job(&spec, &mut rng);
        assert!((r.cost.worker_payments_usd - 11.0).abs() < 1e-9);
        assert!((r.cost.per_participant_usd(100) - 0.132).abs() < 1e-9);
        assert!(r.cost.total_usd() > 11.0);
    }

    #[test]
    fn higher_reward_recruits_faster() {
        let mut quick_total = 0u64;
        let mut slow_total = 0u64;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let slow = Platform
                .post_job(&JobSpec::new("t", 0.05, 50, Channel::HistoricallyTrustworthy), &mut rng);
            let quick = Platform
                .post_job(&JobSpec::new("t", 0.50, 50, Channel::HistoricallyTrustworthy), &mut rng);
            slow_total += slow.completion_ms();
            quick_total += quick.completion_ms();
        }
        assert!(quick_total < slow_total, "higher reward must be faster");
    }

    #[test]
    fn open_channel_faster_but_dirtier() {
        let mut rng = StdRng::seed_from_u64(3);
        let trusted = Platform
            .post_job(&JobSpec::new("t", 0.10, 200, Channel::HistoricallyTrustworthy), &mut rng);
        let open = Platform.post_job(&JobSpec::new("t", 0.10, 200, Channel::Open), &mut rng);
        assert!(open.completion_ms() < trusted.completion_ms());
        let genuine = |r: &Recruitment| {
            r.assignments.iter().filter(|a| a.worker.profile.is_genuine()).count()
        };
        assert!(genuine(&open) < genuine(&trusted));
    }

    #[test]
    fn cumulative_curve_monotone() {
        let mut rng = StdRng::seed_from_u64(4);
        let r = Platform
            .post_job(&JobSpec::new("t", 0.11, 30, Channel::HistoricallyTrustworthy), &mut rng);
        let curve = r.cumulative_curve();
        assert_eq!(curve.len(), 30);
        assert!(curve.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(r.recruited_by(r.completion_ms()), 30);
        assert_eq!(r.recruited_by(0), 0);
    }

    #[test]
    fn in_lab_takes_days_not_hours() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = InLabRecruiter::new(50, 7.0).recruit(&mut rng);
        assert_eq!(r.assignments.len(), 50);
        assert!(r.completion_ms() > 3 * MS_PER_DAY, "in-lab should span days");
        assert_eq!(r.cost.total_usd(), 0.0);
        // Sorted arrivals.
        assert!(r.assignments.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
    }

    #[test]
    fn kaleidoscope_vs_in_lab_speed_gap() {
        // The headline comparison: Kaleidoscope gets 100 paid testers faster
        // than the lab gets 50 friends.
        let mut rng = StdRng::seed_from_u64(6);
        let crowd = Platform
            .post_job(&JobSpec::new("t", 0.11, 100, Channel::HistoricallyTrustworthy), &mut rng);
        let lab = InLabRecruiter::new(50, 7.0).recruit(&mut rng);
        assert!(crowd.completion_ms() * 4 < lab.completion_ms());
    }

    #[test]
    fn reward_multiplier_shape() {
        assert!((reward_multiplier(0.10) - 1.0).abs() < 1e-12);
        assert!(reward_multiplier(0.40) < 4.0 * reward_multiplier(0.10));
        assert!(reward_multiplier(0.40) > reward_multiplier(0.10));
    }

    #[test]
    fn platform_trait_objects_are_interchangeable() {
        let platforms: Vec<Box<dyn CrowdsourcingPlatform>> =
            vec![Box::new(Platform), Box::new(MturkLike)];
        let spec = JobSpec::new("t", 0.11, 30, Channel::HistoricallyTrustworthy);
        let mut rng = StdRng::seed_from_u64(8);
        let recruitments: Vec<Recruitment> =
            platforms.iter().map(|p| p.recruit(&spec, &mut rng)).collect();
        assert!(recruitments.iter().all(|r| r.assignments.len() == 30));
        // The MTurk-like pool recruits faster but charges more.
        let mut rng = StdRng::seed_from_u64(9);
        let fe = Platform.recruit(&spec, &mut rng);
        let mut rng = StdRng::seed_from_u64(9);
        let mt = MturkLike.recruit(&spec, &mut rng);
        assert!(mt.completion_ms() < fe.completion_ms());
        assert!(mt.cost.total_usd() > fe.cost.total_usd());
        assert_eq!(Platform.name(), "figure-eight");
        assert_eq!(MturkLike.name(), "mturk-like");
    }

    #[test]
    #[should_panic(expected = "quota must be positive")]
    fn job_spec_rejects_zero_quota() {
        let _ = JobSpec::new("t", 0.1, 0, Channel::Open);
    }

    #[test]
    fn targeted_jobs_recruit_matching_workers_slower() {
        use crate::targeting::DemographicTarget;
        use crate::worker::AgeRange;
        let mut rng = StdRng::seed_from_u64(11);
        let open = JobSpec::new("t", 0.11, 50, Channel::HistoricallyTrustworthy);
        let targeted = open
            .clone()
            .with_target(DemographicTarget { ages: vec![AgeRange::Under25], ..Default::default() });
        let r_open = Platform.post_job(&open, &mut rng);
        let r_tgt = Platform.post_job(&targeted, &mut rng);
        // Everyone recruited satisfies the target.
        assert!(r_tgt.assignments.iter().all(|a| a.worker.demographics.age == AgeRange::Under25));
        // And it takes meaningfully longer (~2.5x at 40% selectivity).
        assert!(
            r_tgt.completion_ms() > r_open.completion_ms() * 3 / 2,
            "targeted {} vs open {}",
            r_tgt.completion_ms(),
            r_open.completion_ms()
        );
    }

    #[test]
    fn parallel_campaigns_speed_up_recruitment() {
        let spec = JobSpec::new("t", 0.11, 100, Channel::HistoricallyTrustworthy);
        let mut one_total = 0u64;
        let mut four_total = 0u64;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            one_total += Platform.post_job_parallel(&spec, 1, &mut rng).completion_ms();
            four_total += Platform.post_job_parallel(&spec, 4, &mut rng).completion_ms();
        }
        assert!(
            four_total * 3 < one_total,
            "4 platforms should be ~4x faster: {four_total} vs {one_total}"
        );
        // Cost covers exactly the quota regardless of parallelism.
        let mut rng = StdRng::seed_from_u64(9);
        let r = Platform.post_job_parallel(&spec, 4, &mut rng);
        assert_eq!(r.assignments.len(), 100);
        assert!((r.cost.worker_payments_usd - 11.0).abs() < 1e-9);
        // Worker ids are unique across platforms.
        let mut ids: Vec<&str> = r.assignments.iter().map(|a| a.worker.id.0.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }
}
