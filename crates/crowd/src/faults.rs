//! Session fault model: how real crowd testers fail.
//!
//! The paper's hard rules (§III-D) exist because crowd sessions are
//! fallible: participants abandon a test mid-comparison, close the tab
//! halfway through the questionnaire, disconnect and re-upload the same
//! answers, or accept the job and never return. The EYEORG/VidPlat line of
//! QoE crowdsourcing treats those incomplete and duplicate contributions
//! as the dominant operational failure mode. This module samples one
//! [`SessionFault`] per simulated session so the campaign supervisor can
//! be exercised against every recovery path.

use crate::worker::{Worker, WorkerProfile};
use rand::{Rng, RngExt};

/// What went wrong (if anything) in one tester session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFault {
    /// The session ran to completion with a single clean upload.
    None,
    /// The tester closed the browser while looking at page `page`
    /// (0-based), before answering anything on it.
    AbandonMidPage {
        /// Index of the page being viewed when the tester left.
        page: usize,
    },
    /// The tester left partway through a page's questionnaire: `answered`
    /// of the page's questions were answered before the tab closed.
    AbandonMidQuestionnaire {
        /// Index of the page whose questionnaire was abandoned.
        page: usize,
        /// How many questions were answered before abandoning.
        answered: usize,
    },
    /// A buggy or rushed client dropped one answer on `page` and then
    /// tried to advance — the hard rules must reject the session instead
    /// of panicking the orchestrator.
    SkipQuestion {
        /// Index of the page with the dropped answer.
        page: usize,
    },
    /// The worker accepted the assignment and was never heard from again;
    /// only a lease expiry can reclaim the slot.
    NeverReturns,
    /// The tester finished but the upload acknowledgment was lost, so the
    /// client retried. With `duplicate_upload` the retry reaches intake as
    /// a second copy of the same submission and must be deduplicated.
    DisconnectRetry {
        /// Whether the retry produced a duplicate row at intake.
        duplicate_upload: bool,
    },
}

impl SessionFault {
    /// Whether the session still produces a stored, payable response.
    pub fn completes(&self) -> bool {
        matches!(self, SessionFault::None | SessionFault::DisconnectRetry { .. })
    }
}

/// Per-session fault probabilities. All default to zero (a perfectly
/// reliable population — the pre-supervisor behaviour).
///
/// Abandonment and straggling scale with the worker profile: casual
/// workers and spammers walk away from a $0.11 task far more readily than
/// diligent ones. Client-side faults (skip / disconnect) are
/// profile-independent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultModel {
    /// Probability of abandoning while viewing a page.
    pub abandon_mid_page: f64,
    /// Probability of abandoning partway through a questionnaire.
    pub abandon_mid_questionnaire: f64,
    /// Probability the worker never returns after accepting.
    pub straggler: f64,
    /// Probability the client drops one answer and violates a hard rule.
    pub skip_question: f64,
    /// Probability the upload acknowledgment is lost and retried.
    pub disconnect_retry: f64,
    /// Probability (given a retry) that the retry reaches intake as a
    /// duplicate row.
    pub duplicate_upload: f64,
}

impl FaultModel {
    /// A perfectly reliable population.
    pub fn none() -> Self {
        Self::default()
    }

    /// A realistically flaky open-channel population: ≥20% of sessions
    /// abandon one way or another and ≥10% of completions retry their
    /// upload with a duplicate.
    pub fn flaky() -> Self {
        Self {
            abandon_mid_page: 0.10,
            abandon_mid_questionnaire: 0.08,
            straggler: 0.06,
            skip_question: 0.02,
            disconnect_retry: 0.18,
            duplicate_upload: 0.75,
        }
    }

    /// Fraction of sessions expected to abandon (before profile scaling).
    pub fn abandonment_rate(&self) -> f64 {
        self.abandon_mid_page + self.abandon_mid_questionnaire + self.straggler
    }

    /// Samples the fault (if any) for one worker's session over a test
    /// with `pages` integrated pages and `questions` questions per page.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        worker: &Worker,
        pages: usize,
        questions: usize,
        rng: &mut R,
    ) -> SessionFault {
        if pages == 0 {
            return SessionFault::None;
        }
        let scale = match worker.profile {
            WorkerProfile::Diligent { .. } => 0.6,
            WorkerProfile::Casual { .. } => 1.3,
            WorkerProfile::Spammer(_) => 1.6,
        };
        // One roll against the cumulative abandonment ladder so at most
        // one terminal fault fires per session.
        let p_straggle = (self.straggler * scale).min(0.95);
        let p_mid_page = (self.abandon_mid_page * scale).min(0.95);
        let p_mid_q = (self.abandon_mid_questionnaire * scale).min(0.95);
        let roll: f64 = rng.random();
        let mut cum = p_straggle;
        if roll < cum {
            return SessionFault::NeverReturns;
        }
        cum += p_mid_page;
        if roll < cum {
            return SessionFault::AbandonMidPage { page: rng.random_range(0..pages) };
        }
        cum += p_mid_q;
        if roll < cum {
            return SessionFault::AbandonMidQuestionnaire {
                page: rng.random_range(0..pages),
                answered: if questions == 0 { 0 } else { rng.random_range(0..questions) },
            };
        }
        cum += self.skip_question;
        if roll < cum {
            return SessionFault::SkipQuestion { page: rng.random_range(0..pages) };
        }
        if rng.random::<f64>() < self.disconnect_retry {
            return SessionFault::DisconnectRetry {
                duplicate_upload: rng.random::<f64>() < self.duplicate_upload,
            };
        }
        SessionFault::None
    }
}

/// One network-level fault applied to a single HTTP exchange.
///
/// Where [`SessionFault`] models the *tester* failing (abandoning,
/// skipping questions), `NetFault` models the *network* failing under the
/// tester: packets delayed, writes torn mid-frame, connections reset
/// while the response is in flight, and acknowledgments delivered twice.
/// The chaos transport samples one per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The exchange goes through untouched.
    None,
    /// The request is delivered after an extra `ms` milliseconds.
    Delay {
        /// Added latency, milliseconds.
        ms: u64,
    },
    /// Only the first `keep` bytes of the request reach the server
    /// before the connection dies — the server sees a truncated frame.
    TornWrite {
        /// Bytes of the request actually delivered.
        keep: usize,
    },
    /// The request is delivered, but the connection is reset after the
    /// client has read `after` bytes of the response — the
    /// acknowledgment is lost in flight.
    MidBodyReset {
        /// Response bytes the client sees before the reset.
        after: usize,
    },
    /// The request is delivered twice back-to-back on the same socket —
    /// a retransmit-style duplicate the server's idempotent intake must
    /// collapse to one stored row.
    DuplicateDelivery,
}

/// Per-request network fault probabilities for the deterministic chaos
/// transport. All default to zero (a perfect network).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetFaultModel {
    /// Probability a connection attempt is refused outright.
    pub refuse: f64,
    /// Probability a request is delayed.
    pub delay: f64,
    /// Upper bound on the sampled delay, milliseconds.
    pub delay_ms_max: u64,
    /// Probability a request write is torn partway through.
    pub torn_write: f64,
    /// Probability the connection resets mid-response.
    pub reset_mid_body: f64,
    /// Probability a request is delivered twice.
    pub duplicate: f64,
}

impl NetFaultModel {
    /// A perfect network.
    pub fn none() -> Self {
        Self::default()
    }

    /// A lossy network where a total fraction `rate` of exchanges are
    /// disturbed, split across every fault kind (10% refused connects,
    /// 30% delays, 20% each torn writes / mid-body resets / duplicate
    /// deliveries).
    pub fn lossy(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        Self {
            refuse: rate * 0.10,
            delay: rate * 0.30,
            delay_ms_max: 20,
            torn_write: rate * 0.20,
            reset_mid_body: rate * 0.20,
            duplicate: rate * 0.20,
        }
    }

    /// A full outage: every connection attempt is refused. Used to
    /// verify the client's retry budget and circuit breaker.
    pub fn outage() -> Self {
        Self { refuse: 1.0, ..Self::default() }
    }

    /// Total fraction of exchanges disturbed by some fault.
    pub fn fault_rate(&self) -> f64 {
        self.refuse + self.delay + self.torn_write + self.reset_mid_body + self.duplicate
    }

    /// Whether a connection attempt is refused.
    pub fn sample_connect<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.refuse > 0.0 && rng.random::<f64>() < self.refuse
    }

    /// Samples the fault (if any) for one request of `request_len` bytes.
    /// One roll against a cumulative ladder, so at most one fault fires
    /// per exchange.
    pub fn sample_request<R: Rng + ?Sized>(&self, rng: &mut R, request_len: usize) -> NetFault {
        let roll: f64 = rng.random();
        let mut cum = self.delay;
        if roll < cum {
            let ms =
                if self.delay_ms_max == 0 { 0 } else { rng.random_range(0..self.delay_ms_max) };
            return NetFault::Delay { ms };
        }
        cum += self.torn_write;
        if roll < cum {
            // Always tear strictly inside the frame so the server sees a
            // truncated request, never an accidentally complete one.
            let keep = if request_len <= 1 { 0 } else { rng.random_range(0..request_len) };
            return NetFault::TornWrite { keep };
        }
        cum += self.reset_mid_body;
        if roll < cum {
            return NetFault::MidBodyReset { after: rng.random_range(0..64) };
        }
        cum += self.duplicate;
        if roll < cum {
            return NetFault::DuplicateDelivery;
        }
        NetFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::PopulationMix;
    use rand::{rngs::StdRng, SeedableRng};

    fn population(n: usize, seed: u64) -> Vec<Worker> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Worker::generate(i as u64, &PopulationMix::open_channel(), &mut rng))
            .collect()
    }

    #[test]
    fn zero_model_never_faults() {
        let model = FaultModel::none();
        let mut rng = StdRng::seed_from_u64(1);
        for w in population(200, 2) {
            assert_eq!(model.sample(&w, 12, 1, &mut rng), SessionFault::None);
        }
    }

    #[test]
    fn flaky_model_hits_every_fault_kind() {
        let model = FaultModel::flaky();
        assert!(model.abandonment_rate() >= 0.20);
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw = [false; 5];
        for w in population(600, 4) {
            match model.sample(&w, 12, 2, &mut rng) {
                SessionFault::None => {}
                SessionFault::NeverReturns => saw[0] = true,
                SessionFault::AbandonMidPage { page } => {
                    assert!(page < 12);
                    saw[1] = true;
                }
                SessionFault::AbandonMidQuestionnaire { page, answered } => {
                    assert!(page < 12 && answered < 2);
                    saw[2] = true;
                }
                SessionFault::SkipQuestion { page } => {
                    assert!(page < 12);
                    saw[3] = true;
                }
                SessionFault::DisconnectRetry { .. } => saw[4] = true,
            }
        }
        assert!(saw.iter().all(|&s| s), "all fault kinds exercised: {saw:?}");
    }

    #[test]
    fn spammers_abandon_more_than_diligent() {
        let model = FaultModel { abandon_mid_page: 0.2, ..FaultModel::default() };
        let mut rng = StdRng::seed_from_u64(5);
        let abandon_share = |pred: fn(&WorkerProfile) -> bool, rng: &mut StdRng| {
            let ws: Vec<Worker> =
                population(2000, 6).into_iter().filter(|w| pred(&w.profile)).collect();
            let n = ws.len();
            let abandoned = ws
                .iter()
                .filter(|w| !matches!(model.sample(w, 5, 1, rng), SessionFault::None))
                .count();
            abandoned as f64 / n as f64
        };
        let diligent = abandon_share(|p| matches!(p, WorkerProfile::Diligent { .. }), &mut rng);
        let spam = abandon_share(|p| matches!(p, WorkerProfile::Spammer(_)), &mut rng);
        assert!(spam > diligent, "spammer rate {spam} vs diligent {diligent}");
    }

    #[test]
    fn completes_classifies_terminal_faults() {
        assert!(SessionFault::None.completes());
        assert!(SessionFault::DisconnectRetry { duplicate_upload: true }.completes());
        assert!(!SessionFault::NeverReturns.completes());
        assert!(!SessionFault::AbandonMidPage { page: 0 }.completes());
        assert!(!SessionFault::AbandonMidQuestionnaire { page: 0, answered: 0 }.completes());
        assert!(!SessionFault::SkipQuestion { page: 0 }.completes());
    }

    #[test]
    fn empty_test_cannot_fault() {
        let model = FaultModel::flaky();
        let mut rng = StdRng::seed_from_u64(9);
        let w = &population(1, 1)[0];
        assert_eq!(model.sample(w, 0, 1, &mut rng), SessionFault::None);
    }

    #[test]
    fn net_model_none_is_silent() {
        let model = NetFaultModel::none();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            assert!(!model.sample_connect(&mut rng));
            assert_eq!(model.sample_request(&mut rng, 512), NetFault::None);
        }
    }

    #[test]
    fn net_lossy_distributes_rate_and_hits_every_kind() {
        let model = NetFaultModel::lossy(0.5);
        assert!((model.fault_rate() - 0.5).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(13);
        let mut saw = [false; 4];
        let mut refused = 0usize;
        for _ in 0..2000 {
            if model.sample_connect(&mut rng) {
                refused += 1;
            }
            match model.sample_request(&mut rng, 300) {
                NetFault::None => {}
                NetFault::Delay { ms } => {
                    assert!(ms < 20);
                    saw[0] = true;
                }
                NetFault::TornWrite { keep } => {
                    assert!(keep < 300);
                    saw[1] = true;
                }
                NetFault::MidBodyReset { after } => {
                    assert!(after < 64);
                    saw[2] = true;
                }
                NetFault::DuplicateDelivery => saw[3] = true,
            }
        }
        assert!(saw.iter().all(|&s| s), "all net fault kinds exercised: {saw:?}");
        assert!(refused > 0, "refused connects exercised");
    }

    #[test]
    fn net_outage_refuses_everything() {
        let model = NetFaultModel::outage();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert!(model.sample_connect(&mut rng));
        }
    }

    #[test]
    fn net_sampling_is_deterministic_per_seed() {
        let model = NetFaultModel::lossy(0.35);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..500).map(|_| model.sample_request(&mut rng, 256)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
