//! Crowdsourcing platform simulator — the FigureEight substitute.
//!
//! The paper recruits paid testers from FigureEight ("historically
//! trustworthy" channel, $0.11 per participant, ~12 hours to collect 100
//! responses) and trusted in-lab participants (50 friends and colleagues
//! over one week). Every quantitative claim in the evaluation is a property
//! of those populations: the rank distributions of Fig. 4, the behaviour
//! CDFs of Fig. 5, the recruitment curves of Fig. 7(a), and the vote splits
//! of Fig. 7(c)/8/9.
//!
//! This crate models that world:
//!
//! * [`worker`] — demographics, quality profiles (diligent / casual /
//!   spammer), and population mixes per recruitment channel.
//! * [`perception`] — psychometric answer models: noisy utility comparison
//!   for style questions (font size peaked near 12 pt, per the CHI studies
//!   the paper cites) and a weighted-readiness model for the uPLT question.
//! * [`behavior`] — time-on-task and tab-activity models (log-normal
//!   durations; spammers too fast or distracted).
//! * [`platform`] — job posting, Poisson recruitment, the in-lab recruiter,
//!   and cost accounting.
//!
//! Everything is driven by caller-supplied `rand` RNGs so campaigns are
//! reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod faults;
pub mod perception;
pub mod platform;
pub mod targeting;
pub mod worker;

pub use behavior::SessionBehavior;
pub use faults::{FaultModel, SessionFault};
pub use perception::{FontSizeModel, JudgedPair, ReadinessModel};
pub use platform::{
    Assignment, Channel, CostReport, CrowdsourcingPlatform, InLabRecruiter, JobSpec, MturkLike,
    Platform, Recruitment,
};
pub use targeting::DemographicTarget;
pub use worker::{Demographics, PopulationMix, SpammerKind, Worker, WorkerId, WorkerProfile};
