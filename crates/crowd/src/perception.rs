//! Psychometric answer models.
//!
//! Every side-by-side comparison in Kaleidoscope ends with a forced choice
//! among "Left" / "Right" / "Same". We model a genuine worker's choice with
//! a Thurstonian comparison: each version has a latent utility for this
//! worker; the worker perceives each utility plus Gaussian noise and
//! answers "Same" when the perceived difference falls under an
//! indifference threshold. Spammers bypass perception entirely.

use crate::worker::{gaussian, SpammerKind, Worker, WorkerProfile};
use kscope_stats::rank::Preference;
use rand::{Rng, RngExt};

/// The outcome of one judged pair along with the latent utilities —
/// exposed for calibration tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JudgedPair {
    /// The answer given.
    pub preference: Preference,
    /// The worker's true (noise-free) utility for the left version.
    pub utility_left: f64,
    /// The worker's true utility for the right version.
    pub utility_right: f64,
}

/// Core Thurstonian choice: compares two utilities under a worker profile.
///
/// `indifference` is the threshold on the perceived difference below which
/// the worker answers "Same".
pub fn judge_pair<R: Rng + ?Sized>(
    worker: &Worker,
    utility_left: f64,
    utility_right: f64,
    indifference: f64,
    rng: &mut R,
) -> JudgedPair {
    let preference = match worker.profile {
        WorkerProfile::Spammer(kind) => spam_answer(kind, rng),
        WorkerProfile::Diligent { noise } => {
            perceive(utility_left, utility_right, noise, indifference, rng)
        }
        WorkerProfile::Casual { noise, lapse_rate, left_bias } => {
            if rng.random::<f64>() < lapse_rate {
                random_answer(rng)
            } else if utility_left == utility_right {
                // Identical stimuli are visibly identical; anchoring bias
                // only distorts judgments between *different* stimuli.
                Preference::Same
            } else {
                perceive(utility_left + left_bias, utility_right, noise, indifference, rng)
            }
        }
    };
    JudgedPair { preference, utility_left, utility_right }
}

fn perceive<R: Rng + ?Sized>(
    left: f64,
    right: f64,
    noise: f64,
    indifference: f64,
    rng: &mut R,
) -> Preference {
    // Literally identical stimuli produce identical percepts: a genuine
    // worker looking at two copies of the same page sees no difference at
    // all. (Thurstonian noise models *evaluation* of differing stimuli.)
    // This is what makes the paper's identical-pair control question fair.
    if left == right {
        return Preference::Same;
    }
    let perceived_left = left + gaussian(rng) * noise;
    let perceived_right = right + gaussian(rng) * noise;
    let diff = perceived_left - perceived_right;
    if diff.abs() < indifference {
        Preference::Same
    } else if diff > 0.0 {
        Preference::Left
    } else {
        Preference::Right
    }
}

fn spam_answer<R: Rng + ?Sized>(kind: SpammerKind, rng: &mut R) -> Preference {
    match kind {
        SpammerKind::Random => random_answer(rng),
        SpammerKind::AlwaysLeft => Preference::Left,
        SpammerKind::AlwaysSame => Preference::Same,
    }
}

fn random_answer<R: Rng + ?Sized>(rng: &mut R) -> Preference {
    match rng.random_range(0..3) {
        0 => Preference::Left,
        1 => Preference::Right,
        _ => Preference::Same,
    }
}

/// Font-size readability model — the latent trait behind the paper's CHI
/// question "What is the best font size for online reading?".
///
/// A worker's utility for a font of `pt` points is a quadratic loss around
/// their personal ideal (population mean 12.8 pt, per the CHI studies
/// \[16, 19, 36, 41\] the paper cites).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FontSizeModel {
    /// Width (in points) over which readability degrades; larger = flatter
    /// preferences.
    pub tolerance_pt: f64,
    /// Indifference threshold for "Same" answers.
    pub indifference: f64,
}

impl Default for FontSizeModel {
    fn default() -> Self {
        Self { tolerance_pt: 3.0, indifference: 0.5 }
    }
}

impl FontSizeModel {
    /// The worker's utility for a given font size.
    pub fn utility(&self, worker: &Worker, pt: f64) -> f64 {
        let d = (pt - worker.ideal_font_pt) / self.tolerance_pt;
        -d * d
    }

    /// Judges a side-by-side pair of font sizes.
    pub fn judge<R: Rng + ?Sized>(
        &self,
        worker: &Worker,
        left_pt: f64,
        right_pt: f64,
        rng: &mut R,
    ) -> JudgedPair {
        judge_pair(
            worker,
            self.utility(worker, left_pt),
            self.utility(worker, right_pt),
            self.indifference,
            rng,
        )
    }
}

/// Readiness perception for the page-load question "Which version of the
/// webpage seems ready to use first?" (paper §IV-C).
///
/// The worker tracks weighted readiness over time — weight `text_focus` on
/// the main text content, the remainder on everything else — and perceives
/// the instant each version crosses a readiness threshold. Utilities are
/// negative perceived-ready times, so an earlier-ready page wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadinessModel {
    /// Population floor on the readiness threshold; each worker's own
    /// [`Worker::readiness_threshold`] applies above this floor.
    pub threshold: f64,
    /// Indifference window in milliseconds: versions whose perceived ready
    /// times fall within it are judged "Same".
    pub indifference_ms: f64,
    /// Perceptual noise on ready times, in milliseconds.
    pub noise_ms: f64,
}

impl Default for ReadinessModel {
    fn default() -> Self {
        Self { threshold: 0.8, indifference_ms: 500.0, noise_ms: 350.0 }
    }
}

/// The readiness trajectory of one page version, as `(t_ms, text_fraction,
/// other_fraction)` step samples. Produced by the virtual browser from a
/// paint timeline.
pub type ReadinessCurve = Vec<(u64, f64, f64)>;

impl ReadinessModel {
    /// When this worker perceives the page as "ready to use", given its
    /// readiness curve.
    pub fn perceived_ready_ms(&self, worker: &Worker, curve: &ReadinessCurve) -> f64 {
        let w = worker.text_focus;
        let threshold = worker.readiness_threshold.max(self.threshold);
        for &(t, text, other) in curve {
            let readiness = w * text + (1.0 - w) * other;
            if readiness >= threshold {
                return t as f64;
            }
        }
        curve.last().map(|&(t, _, _)| t as f64).unwrap_or(0.0)
    }

    /// Judges which of two versions seems ready first.
    pub fn judge<R: Rng + ?Sized>(
        &self,
        worker: &Worker,
        left: &ReadinessCurve,
        right: &ReadinessCurve,
        rng: &mut R,
    ) -> JudgedPair {
        let ready_left = self.perceived_ready_ms(worker, left);
        let ready_right = self.perceived_ready_ms(worker, right);
        // Utilities in "indifference units": dividing by the indifference
        // window lets the Same-threshold below be the constant 1.0.
        let scale = self.indifference_ms.max(1.0);
        let u_left = -(ready_left + gaussian(rng) * self.noise_ms) / scale;
        let u_right = -(ready_right + gaussian(rng) * self.noise_ms) / scale;
        let pref = match worker.profile {
            WorkerProfile::Spammer(kind) => spam_answer(kind, rng),
            WorkerProfile::Casual { lapse_rate, .. } if rng.random::<f64>() < lapse_rate => {
                random_answer(rng)
            }
            // Identical reveal schedules look identical — see `perceive`.
            _ if ready_left == ready_right => Preference::Same,
            profile => {
                let bias = match profile {
                    WorkerProfile::Casual { left_bias, .. } => left_bias,
                    _ => 0.0,
                };
                let diff = u_left + bias - u_right;
                if diff.abs() < 1.0 {
                    Preference::Same
                } else if diff > 0.0 {
                    Preference::Left
                } else {
                    Preference::Right
                }
            }
        };
        JudgedPair { preference: pref, utility_left: -ready_left, utility_right: -ready_right }
    }
}

/// A generic scalar-appeal model for style questions such as "which webpage
/// is graphically more appealing?" — each version gets an experimenter-
/// assigned appeal score and workers compare them with noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppealModel {
    /// Indifference threshold.
    pub indifference: f64,
}

impl Default for AppealModel {
    fn default() -> Self {
        Self { indifference: 0.5 }
    }
}

impl AppealModel {
    /// Judges a pair of appeal scores.
    pub fn judge<R: Rng + ?Sized>(
        &self,
        worker: &Worker,
        left_appeal: f64,
        right_appeal: f64,
        rng: &mut R,
    ) -> JudgedPair {
        judge_pair(worker, left_appeal, right_appeal, self.indifference, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::PopulationMix;
    use rand::{rngs::StdRng, SeedableRng};

    fn diligent_worker(rng: &mut StdRng) -> Worker {
        loop {
            let w = Worker::generate(0, &PopulationMix::in_lab(), rng);
            if matches!(w.profile, WorkerProfile::Diligent { .. }) {
                return w;
            }
        }
    }

    #[test]
    fn strong_preference_wins_consistently() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = diligent_worker(&mut rng);
        let mut left_wins = 0;
        for _ in 0..200 {
            let j = judge_pair(&w, 5.0, -5.0, 0.3, &mut rng);
            if j.preference == Preference::Left {
                left_wins += 1;
            }
        }
        assert!(left_wins > 190, "left won {left_wins}/200");
    }

    #[test]
    fn equal_utilities_mostly_same() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = diligent_worker(&mut rng);
        let mut same = 0;
        for _ in 0..300 {
            // Indifference window wide relative to noise.
            if judge_pair(&w, 1.0, 1.0, 2.0, &mut rng).preference == Preference::Same {
                same += 1;
            }
        }
        assert!(same > 250, "same {same}/300");
    }

    #[test]
    fn spammer_kinds_behave() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = diligent_worker(&mut rng);
        w.profile = WorkerProfile::Spammer(SpammerKind::AlwaysLeft);
        for _ in 0..10 {
            assert_eq!(judge_pair(&w, -9.0, 9.0, 0.1, &mut rng).preference, Preference::Left);
        }
        w.profile = WorkerProfile::Spammer(SpammerKind::AlwaysSame);
        for _ in 0..10 {
            assert_eq!(judge_pair(&w, -9.0, 9.0, 0.1, &mut rng).preference, Preference::Same);
        }
    }

    #[test]
    fn font_model_prefers_population_consensus() {
        // Across many workers, 12pt must beat 22pt decisively.
        let mut rng = StdRng::seed_from_u64(4);
        let model = FontSizeModel::default();
        let mut twelve_wins = 0;
        let mut n = 0;
        for i in 0..400 {
            let w = Worker::generate(i, &PopulationMix::in_lab(), &mut rng);
            let j = model.judge(&w, 12.0, 22.0, &mut rng);
            match j.preference {
                Preference::Left => twelve_wins += 1,
                Preference::Right => {}
                Preference::Same => continue,
            }
            n += 1;
        }
        assert!(twelve_wins as f64 > 0.85 * n as f64, "12pt won {twelve_wins}/{n}");
    }

    #[test]
    fn font_model_close_sizes_often_tie() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = FontSizeModel::default();
        let mut same = 0;
        for i in 0..400 {
            let w = Worker::generate(i, &PopulationMix::in_lab(), &mut rng);
            if model.judge(&w, 12.0, 12.0, &mut rng).preference == Preference::Same {
                same += 1;
            }
        }
        // Identical stimuli: "Same" must be the typical answer for genuine
        // workers (this is exactly the paper's identical-pair control).
        assert!(same > 300, "same = {same}/400");
    }

    #[test]
    fn readiness_text_first_preferred() {
        // Version L: text ready at 4000, nav at 2000. Version R: reversed.
        let left: ReadinessCurve = vec![(0, 0.0, 0.0), (2000, 0.0, 1.0), (4000, 1.0, 1.0)];
        let right: ReadinessCurve = vec![(0, 0.0, 0.0), (2000, 1.0, 0.0), (4000, 1.0, 1.0)];
        let model = ReadinessModel::default();
        let mut rng = StdRng::seed_from_u64(6);
        let mut right_wins = 0;
        let mut left_wins = 0;
        for i in 0..300 {
            let w = Worker::generate(i, &PopulationMix::in_lab(), &mut rng);
            match model.judge(&w, &left, &right, &mut rng).preference {
                Preference::Right => right_wins += 1,
                Preference::Left => left_wins += 1,
                Preference::Same => {}
            }
        }
        assert!(
            right_wins > left_wins * 2,
            "text-first version should dominate: {right_wins} vs {left_wins}"
        );
    }

    #[test]
    fn readiness_identical_curves_tie() {
        let curve: ReadinessCurve = vec![(0, 0.0, 0.0), (1000, 1.0, 1.0)];
        let model = ReadinessModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut same = 0;
        for i in 0..200 {
            let w = Worker::generate(i, &PopulationMix::in_lab(), &mut rng);
            if model.judge(&w, &curve, &curve, &mut rng).preference == Preference::Same {
                same += 1;
            }
        }
        assert!(same > 120, "same = {same}/200");
    }

    #[test]
    fn perceived_ready_uses_text_focus() {
        let model = ReadinessModel::default();
        let mut rng = StdRng::seed_from_u64(8);
        let mut w = diligent_worker(&mut rng);
        // Text ready late; nav early.
        let curve: ReadinessCurve = vec![(0, 0.0, 0.0), (1000, 0.0, 1.0), (5000, 1.0, 1.0)];
        w.text_focus = 0.95;
        let focused = model.perceived_ready_ms(&w, &curve);
        w.text_focus = 0.05;
        let unfocused = model.perceived_ready_ms(&w, &curve);
        assert!(focused > unfocused, "{focused} vs {unfocused}");
    }

    #[test]
    fn appeal_model_orders() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = AppealModel::default();
        let mut b_wins = 0;
        for i in 0..300 {
            let w = Worker::generate(i, &PopulationMix::in_lab(), &mut rng);
            if model.judge(&w, 0.0, 2.0, &mut rng).preference == Preference::Right {
                b_wins += 1;
            }
        }
        assert!(b_wins > 180, "b wins = {b_wins}");
    }
}
