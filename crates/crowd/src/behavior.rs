//! Tester behaviour models: time on task and tab activity.
//!
//! §III-D: "the engagement time a worker spends on a test is a rough
//! indication of the quality of their work … a short time indicates an
//! unengaged worker; a long time might indicate that the worker is
//! distracted. We record how long participants spend on each test, how many
//! times they open the test tabs and the active tabs." Figure 5 plots the
//! resulting CDFs. This module generates those observables per worker.

use crate::worker::{Worker, WorkerProfile};
use kscope_stats::dist::LogNormal;
use rand::{Rng, RngExt};

/// The behaviour telemetry of one tester session, matching Fig. 5's axes.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionBehavior {
    /// Duration of each side-by-side comparison, minutes.
    pub comparison_minutes: Vec<f64>,
    /// Number of tabs the tester created during the session.
    pub created_tabs: u32,
    /// Number of active-tab switches observed.
    pub active_tabs: u32,
    /// Pages (by index) where the client dropped one answer before trying
    /// to advance — a hard-rule violation the orchestrator must survive.
    pub dropped_answer_pages: Vec<usize>,
}

impl SessionBehavior {
    /// Total time on task in minutes.
    pub fn total_minutes(&self) -> f64 {
        self.comparison_minutes.iter().sum()
    }

    /// Longest single comparison, minutes (0 for an empty session).
    pub fn max_comparison_minutes(&self) -> f64 {
        self.comparison_minutes.iter().copied().fold(0.0, f64::max)
    }
}

/// Parameters of the behaviour model (medians in minutes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorModel {
    /// Median per-comparison time of a diligent remote worker.
    pub diligent_median_min: f64,
    /// Log-scale sigma for diligent workers.
    pub diligent_sigma: f64,
    /// Median per-comparison time of in-lab participants (they are guided
    /// and focused, so slightly faster with less spread).
    pub in_lab_median_min: f64,
    /// Log-scale sigma for in-lab participants.
    pub in_lab_sigma: f64,
    /// Probability (per page) that a remote client drops one answer and
    /// tries to advance anyway — zero by default.
    pub question_skip_rate: f64,
}

impl Default for BehaviorModel {
    fn default() -> Self {
        Self {
            diligent_median_min: 0.55,
            diligent_sigma: 0.45,
            in_lab_median_min: 0.50,
            in_lab_sigma: 0.35,
            question_skip_rate: 0.0,
        }
    }
}

impl BehaviorModel {
    /// Generates the behaviour of one remote (crowdsourced) session with
    /// `comparisons` side-by-side pages.
    pub fn remote_session<R: Rng + ?Sized>(
        &self,
        worker: &Worker,
        comparisons: usize,
        rng: &mut R,
    ) -> SessionBehavior {
        let (dist, lapse_extra): (LogNormal, f64) = match worker.profile {
            WorkerProfile::Diligent { .. } => {
                (LogNormal::from_median(self.diligent_median_min, self.diligent_sigma), 0.02)
            }
            WorkerProfile::Casual { .. } => {
                // Casual workers are slower on average and heavier-tailed
                // (they get distracted mid-comparison).
                (LogNormal::from_median(self.diligent_median_min * 1.25, 0.65), 0.10)
            }
            WorkerProfile::Spammer(_) => {
                // Spammers race through; a distracted few leave a long tail.
                (LogNormal::from_median(self.diligent_median_min * 0.25, 0.55), 0.15)
            }
        };
        let comparison_minutes = (0..comparisons)
            .map(|_| {
                let mut t = dist.sample(rng);
                if rng.random::<f64>() < lapse_extra {
                    // A distraction pause.
                    t += rng.random::<f64>() * 2.5;
                }
                t.clamp(0.02, 6.0)
            })
            .collect();
        let (created_tabs, active_tabs) = self.tab_activity(worker, comparisons, rng);
        let dropped_answer_pages =
            (0..comparisons).filter(|_| rng.random::<f64>() < self.question_skip_rate).collect();
        SessionBehavior { comparison_minutes, created_tabs, active_tabs, dropped_answer_pages }
    }

    /// Generates the behaviour of one in-lab session (trusted participants,
    /// experimenter present).
    pub fn in_lab_session<R: Rng + ?Sized>(
        &self,
        _worker: &Worker,
        comparisons: usize,
        rng: &mut R,
    ) -> SessionBehavior {
        let dist = LogNormal::from_median(self.in_lab_median_min, self.in_lab_sigma);
        let comparison_minutes =
            (0..comparisons).map(|_| dist.sample(rng).clamp(0.05, 2.2)).collect();
        // In-lab participants stay on the test tab.
        let created_tabs = 1 + u32::from(rng.random::<f64>() < 0.2);
        let active_tabs = created_tabs + rng.random_range(0..2);
        // Guided in-lab participants never skip a questionnaire entry.
        SessionBehavior {
            comparison_minutes,
            created_tabs,
            active_tabs,
            dropped_answer_pages: Vec::new(),
        }
    }

    fn tab_activity<R: Rng + ?Sized>(
        &self,
        worker: &Worker,
        _comparisons: usize,
        rng: &mut R,
    ) -> (u32, u32) {
        // These are *extra* tabs beyond the test pages the extension opens
        // itself: side browsing and back-and-forth switching, both heavier
        // for less engaged workers (the Fig. 5 telemetry).
        let (extra_rate, switch_rate) = match worker.profile {
            WorkerProfile::Diligent { .. } => (0.5, 1.5),
            WorkerProfile::Casual { .. } => (2.5, 5.0),
            WorkerProfile::Spammer(_) => (5.0, 9.0),
        };
        let created = 1 + poisson_like(extra_rate, rng);
        let active = created + poisson_like(switch_rate, rng);
        (created, active)
    }
}

fn poisson_like<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u32 {
    kscope_stats::dist::poisson_sample(rng, mean.max(0.0)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{PopulationMix, SpammerKind};
    use kscope_stats::Ecdf;
    use rand::{rngs::StdRng, SeedableRng};

    fn workers_of(profile_pred: fn(&WorkerProfile) -> bool, n: usize, seed: u64) -> Vec<Worker> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut i = 0u64;
        while out.len() < n {
            let w = Worker::generate(i, &PopulationMix::open_channel(), &mut rng);
            i += 1;
            if profile_pred(&w.profile) {
                out.push(w);
            }
        }
        out
    }

    #[test]
    fn session_has_requested_comparisons() {
        let model = BehaviorModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let w = &workers_of(|p| p.is_genuine(), 1, 1)[0];
        let s = model.remote_session(w, 11, &mut rng);
        assert_eq!(s.comparison_minutes.len(), 11);
        assert!(s.total_minutes() > 0.0);
        assert!(s.max_comparison_minutes() <= 6.0);
        assert!(s.created_tabs >= 1);
        assert!(s.active_tabs >= s.created_tabs);
    }

    #[test]
    fn spammers_faster_than_diligent() {
        let model = BehaviorModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let diligent = workers_of(|p| matches!(p, WorkerProfile::Diligent { .. }), 60, 3);
        let spammers = workers_of(
            |p| {
                matches!(
                    p,
                    WorkerProfile::Spammer(SpammerKind::Random)
                        | WorkerProfile::Spammer(SpammerKind::AlwaysLeft)
                        | WorkerProfile::Spammer(SpammerKind::AlwaysSame)
                )
            },
            60,
            4,
        );
        let med = |ws: &[Worker], rng: &mut StdRng| {
            let mut xs: Vec<f64> = ws
                .iter()
                .flat_map(|w| model.remote_session(w, 5, rng).comparison_minutes)
                .collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        let dm = med(&diligent, &mut rng);
        let sm = med(&spammers, &mut rng);
        assert!(sm < dm / 1.5, "spammer median {sm} vs diligent {dm}");
    }

    #[test]
    fn in_lab_tail_shorter_than_remote() {
        // The paper: max comparison 3.3 min raw vs 1.9 min in-lab.
        let model = BehaviorModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        let ws = workers_of(|p| p.is_genuine(), 80, 6);
        let remote: Vec<f64> = ws
            .iter()
            .flat_map(|w| model.remote_session(w, 10, &mut rng).comparison_minutes)
            .collect();
        let lab: Vec<f64> = ws
            .iter()
            .flat_map(|w| model.in_lab_session(w, 10, &mut rng).comparison_minutes)
            .collect();
        let remote_max = remote.iter().copied().fold(0.0, f64::max);
        let lab_max = lab.iter().copied().fold(0.0, f64::max);
        assert!(lab_max < remote_max, "lab max {lab_max} vs remote {remote_max}");
        assert!(lab_max <= 2.2);
    }

    #[test]
    fn spammer_tab_activity_heavier() {
        let model = BehaviorModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        let diligent = workers_of(|p| matches!(p, WorkerProfile::Diligent { .. }), 100, 8);
        let spam = workers_of(|p| !p.is_genuine(), 100, 9);
        let mean_tabs = |ws: &[Worker], rng: &mut StdRng| {
            ws.iter().map(|w| model.remote_session(w, 10, rng).active_tabs as f64).sum::<f64>()
                / ws.len() as f64
        };
        let d = mean_tabs(&diligent, &mut rng);
        let s = mean_tabs(&spam, &mut rng);
        assert!(s > d, "spam tabs {s} vs diligent {d}");
    }

    #[test]
    fn question_skip_rate_marks_pages() {
        let mut rng = StdRng::seed_from_u64(13);
        let w = &workers_of(|p| p.is_genuine(), 1, 14)[0];
        let clean = BehaviorModel::default().remote_session(w, 10, &mut rng);
        assert!(clean.dropped_answer_pages.is_empty());
        let flaky = BehaviorModel { question_skip_rate: 0.5, ..BehaviorModel::default() };
        let mut any = false;
        for _ in 0..20 {
            let s = flaky.remote_session(w, 10, &mut rng);
            assert!(s.dropped_answer_pages.iter().all(|&p| p < 10));
            any |= !s.dropped_answer_pages.is_empty();
        }
        assert!(any, "a 50% skip rate must mark some pages");
        // In-lab sessions never skip.
        assert!(flaky.in_lab_session(w, 10, &mut rng).dropped_answer_pages.is_empty());
    }

    #[test]
    fn behaviour_cdfs_are_plottable() {
        let model = BehaviorModel::default();
        let mut rng = StdRng::seed_from_u64(10);
        let ws = workers_of(|_| true, 50, 11);
        let times: Vec<f64> =
            ws.iter().map(|w| model.remote_session(w, 10, &mut rng).total_minutes()).collect();
        let ecdf = Ecdf::new(times);
        assert!(ecdf.quantile(0.5) > 0.0);
        assert!(ecdf.max() > ecdf.min());
    }
}
