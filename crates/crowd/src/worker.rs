//! Workers: identity, demographics, and quality profiles.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A worker (participant) identifier — the "contributor id" the browser
/// extension collects.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub String);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Coarse demographics, "collected at a coarse enough granularity so there
/// is no danger of identifying individual people" (§III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Demographics {
    /// Self-reported gender.
    pub gender: Gender,
    /// Age bracket.
    pub age: AgeRange,
    /// Country group.
    pub country: Region,
    /// Self-assessed technical ability, 1 (novice) to 5 (expert).
    pub tech_ability: u8,
}

/// Self-reported gender categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Gender {
    Female,
    Male,
    Other,
}

/// Age brackets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AgeRange {
    Under25,
    Age25To34,
    Age35To49,
    Age50Plus,
}

/// Coarse regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Region {
    NorthAmerica,
    Europe,
    Asia,
    SouthAmerica,
    Africa,
    Oceania,
}

impl Demographics {
    /// Samples demographics with a crowd-platform-like skew (younger,
    /// global-south-heavy).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let gender = match rng.random_range(0..10) {
            0..=4 => Gender::Male,
            5..=8 => Gender::Female,
            _ => Gender::Other,
        };
        let age = match rng.random_range(0..10) {
            0..=3 => AgeRange::Under25,
            4..=6 => AgeRange::Age25To34,
            7..=8 => AgeRange::Age35To49,
            _ => AgeRange::Age50Plus,
        };
        let country = match rng.random_range(0..12) {
            0..=2 => Region::NorthAmerica,
            3..=5 => Region::Europe,
            6..=9 => Region::Asia,
            10 => Region::SouthAmerica,
            _ => Region::Africa,
        };
        let tech_ability = rng.random_range(1..=5);
        Self { gender, age, country, tech_ability }
    }
}

/// How a spammer answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpammerKind {
    /// Uniformly random answers.
    Random,
    /// Always picks "Left" (position bias — the classic crowd artifact).
    AlwaysLeft,
    /// Always answers "Same" (minimal-effort satisficing).
    AlwaysSame,
}

/// A worker's quality profile: how faithfully their answers track their
/// true perception, and how they spend time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkerProfile {
    /// Engaged tester; small judgment noise.
    Diligent {
        /// Standard deviation of utility noise (Thurstonian).
        noise: f64,
    },
    /// Less careful: more noise, occasional lapses where the answer is
    /// random regardless of the stimulus, and a left-anchoring position
    /// bias (skimming testers favour the pane they read first).
    Casual {
        /// Standard deviation of utility noise.
        noise: f64,
        /// Probability of an attention lapse per judgment.
        lapse_rate: f64,
        /// Additive utility bonus for the left pane.
        left_bias: f64,
    },
    /// Not actually doing the task.
    Spammer(SpammerKind),
}

impl WorkerProfile {
    /// Whether this profile represents a genuine attempt at the task.
    pub fn is_genuine(&self) -> bool {
        !matches!(self, WorkerProfile::Spammer(_))
    }
}

/// A participant: identity + demographics + profile + platform trust.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Contributor id.
    pub id: WorkerId,
    /// Coarse demographics.
    pub demographics: Demographics,
    /// Quality profile (latent — the experimenter never sees this).
    pub profile: WorkerProfile,
    /// The platform's historical trust score in `[0, 1]` ("historically
    /// trustworthy" channels filter on this).
    pub trust_score: f64,
    /// The worker's ideal font size in points (drawn from the CHI-study
    /// population distribution) — the latent trait behind Fig. 4.
    pub ideal_font_pt: f64,
    /// The worker's attention weight on main-text content in `[0, 1]` — the
    /// latent trait behind the Fig. 9 uPLT split.
    pub text_focus: f64,
    /// When a page "seems ready to use" for this worker: the weighted
    /// painted fraction that must be reached. Workers near 1.0 only call a
    /// page ready once nothing changes anymore ("browsing and moving are
    /// done with the same degree", as one of the paper's commenters put
    /// it), which turns the Fig. 9 comparison into a tie for them.
    pub readiness_threshold: f64,
}

/// Fractions of each profile in a recruited population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationMix {
    /// Fraction of diligent workers.
    pub diligent: f64,
    /// Fraction of casual workers.
    pub casual: f64,
    /// Fraction of spammers.
    pub spammer: f64,
}

impl PopulationMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics unless the fractions are non-negative and sum to 1 (±1e-9).
    pub fn new(diligent: f64, casual: f64, spammer: f64) -> Self {
        assert!(
            diligent >= 0.0 && casual >= 0.0 && spammer >= 0.0,
            "fractions must be non-negative"
        );
        assert!(((diligent + casual + spammer) - 1.0).abs() < 1e-9, "fractions must sum to 1");
        Self { diligent, casual, spammer }
    }

    /// FigureEight's "historically trustworthy" channel: mostly engaged
    /// workers, a residue of spam the quality-control pipeline must catch.
    pub fn historically_trustworthy() -> Self {
        Self::new(0.70, 0.22, 0.08)
    }

    /// An unfiltered open channel.
    pub fn open_channel() -> Self {
        Self::new(0.45, 0.30, 0.25)
    }

    /// Trusted in-lab participants: committed friends and colleagues.
    pub fn in_lab() -> Self {
        Self::new(0.95, 0.05, 0.0)
    }

    /// Samples one profile from the mix.
    pub fn sample_profile<R: Rng + ?Sized>(&self, rng: &mut R) -> WorkerProfile {
        let x: f64 = rng.random();
        if x < self.diligent {
            WorkerProfile::Diligent { noise: 0.35 + rng.random::<f64>() * 0.25 }
        } else if x < self.diligent + self.casual {
            WorkerProfile::Casual {
                noise: 0.8 + rng.random::<f64>() * 0.6,
                lapse_rate: 0.08 + rng.random::<f64>() * 0.12,
                left_bias: 0.35 + rng.random::<f64>() * 0.35,
            }
        } else {
            // Position bias is by far the most common spam pattern.
            let kind = match rng.random_range(0..10) {
                0..=4 => SpammerKind::AlwaysLeft,
                5..=7 => SpammerKind::Random,
                _ => SpammerKind::AlwaysSame,
            };
            WorkerProfile::Spammer(kind)
        }
    }
}

impl Worker {
    /// Generates one worker from a population mix.
    ///
    /// The ideal font size is drawn `N(12.75, 1.0)` clamped to `[9, 20]`,
    /// matching the CHI consensus that 12–14 pt reads best online with a
    /// minority (e.g. dyslexic readers) preferring larger sizes. The
    /// text-focus trait is `0.75 ± 0.12` for most workers — "people usually
    /// look for related articles … so they focus on the main text content
    /// more" — with a minority near 0.5 who "only care about the visual
    /// changes of the webpage".
    pub fn generate<R: Rng + ?Sized>(seq: u64, mix: &PopulationMix, rng: &mut R) -> Self {
        let profile = mix.sample_profile(rng);
        let trust_score = match profile {
            WorkerProfile::Diligent { .. } => 0.80 + rng.random::<f64>() * 0.20,
            WorkerProfile::Casual { .. } => 0.55 + rng.random::<f64>() * 0.35,
            WorkerProfile::Spammer(_) => 0.30 + rng.random::<f64>() * 0.50,
        };
        let ideal_font_pt = (12.75 + gaussian(rng) * 1.0).clamp(9.0, 20.0);
        let text_focus = if rng.random::<f64>() < 0.85 {
            (0.78 + gaussian(rng) * 0.10).clamp(0.5, 0.98)
        } else {
            // The "I only care about visual changes" minority.
            (0.50 + gaussian(rng) * 0.05).clamp(0.35, 0.6)
        };
        let readiness_threshold = (0.80 + rng.random::<f64>() * 0.26).min(1.0);
        Self {
            id: WorkerId(format!("w-{seq:05}")),
            demographics: Demographics::sample(rng),
            profile,
            trust_score,
            ideal_font_pt,
            text_focus,
            readiness_threshold,
        }
    }

    /// Generates a pool of `n` workers.
    pub fn generate_pool<R: Rng + ?Sized>(
        n: usize,
        mix: &PopulationMix,
        rng: &mut R,
    ) -> Vec<Worker> {
        (0..n).map(|i| Worker::generate(i as u64, mix, rng)).collect()
    }
}

/// One standard-normal draw (Box–Muller, cosine branch).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn mix_fractions_validated() {
        let m = PopulationMix::new(0.5, 0.3, 0.2);
        assert_eq!(m.diligent, 0.5);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn mix_rejects_bad_sum() {
        let _ = PopulationMix::new(0.5, 0.3, 0.3);
    }

    #[test]
    fn trustworthy_channel_mostly_genuine() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool =
            Worker::generate_pool(2000, &PopulationMix::historically_trustworthy(), &mut rng);
        let genuine =
            pool.iter().filter(|w| w.profile.is_genuine()).count() as f64 / pool.len() as f64;
        assert!(genuine > 0.85 && genuine < 0.97, "genuine = {genuine}");
    }

    #[test]
    fn in_lab_has_no_spammers() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = Worker::generate_pool(500, &PopulationMix::in_lab(), &mut rng);
        assert!(pool.iter().all(|w| w.profile.is_genuine()));
    }

    #[test]
    fn ids_unique_and_sequential() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = Worker::generate_pool(10, &PopulationMix::in_lab(), &mut rng);
        assert_eq!(pool[0].id.0, "w-00000");
        assert_eq!(pool[9].id.0, "w-00009");
    }

    #[test]
    fn ideal_font_centered_on_chi_consensus() {
        let mut rng = StdRng::seed_from_u64(4);
        let pool = Worker::generate_pool(5000, &PopulationMix::in_lab(), &mut rng);
        let mean: f64 = pool.iter().map(|w| w.ideal_font_pt).sum::<f64>() / pool.len() as f64;
        assert!((mean - 12.75).abs() < 0.2, "mean ideal font = {mean}");
        assert!(pool.iter().all(|w| (9.0..=20.0).contains(&w.ideal_font_pt)));
    }

    #[test]
    fn text_focus_bimodal_majority_high() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool = Worker::generate_pool(5000, &PopulationMix::in_lab(), &mut rng);
        let high = pool.iter().filter(|w| w.text_focus > 0.65).count() as f64 / pool.len() as f64;
        assert!(high > 0.7, "high-focus fraction = {high}");
        assert!(pool.iter().all(|w| (0.0..=1.0).contains(&w.text_focus)));
    }

    #[test]
    fn trust_scores_ordered_by_profile() {
        let mut rng = StdRng::seed_from_u64(6);
        let pool = Worker::generate_pool(3000, &PopulationMix::open_channel(), &mut rng);
        let avg = |pred: fn(&WorkerProfile) -> bool| {
            let xs: Vec<f64> =
                pool.iter().filter(|w| pred(&w.profile)).map(|w| w.trust_score).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let diligent = avg(|p| matches!(p, WorkerProfile::Diligent { .. }));
        let spam = avg(|p| matches!(p, WorkerProfile::Spammer(_)));
        assert!(diligent > spam, "diligent {diligent} vs spam {spam}");
    }

    #[test]
    fn demographics_sampled_within_domains() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let d = Demographics::sample(&mut rng);
            assert!((1..=5).contains(&d.tech_ability));
        }
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        let w = Worker::generate(0, &PopulationMix::open_channel(), &mut rng);
        let json = serde_json::to_string(&w).unwrap();
        let back: Worker = serde_json::from_str(&json).unwrap();
        // f64 JSON round-trips can differ in the last ulp; compare fields.
        assert_eq!(back.id, w.id);
        assert_eq!(back.demographics, w.demographics);
        assert!((back.trust_score - w.trust_score).abs() < 1e-9);
        assert!((back.ideal_font_pt - w.ideal_font_pt).abs() < 1e-9);
        assert!((back.text_focus - w.text_focus).abs() < 1e-9);
    }
}
