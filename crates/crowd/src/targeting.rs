//! Demographic targeting.
//!
//! The paper's tool "should take as input N versions of a website, *target
//! demographics*, target Web page load, and a questionnaire" (§I). This
//! module lets a job restrict who is recruited — crowdsourcing platforms
//! expose exactly these coarse filters — at the price of a slower arrival
//! rate proportional to how selective the target is.

use crate::worker::{AgeRange, Demographics, Gender, Region, Worker};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A demographic filter; `None` fields match everyone.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DemographicTarget {
    /// Restrict to these age brackets (empty = any).
    #[serde(default)]
    pub ages: Vec<AgeRange>,
    /// Restrict to these regions (empty = any).
    #[serde(default)]
    pub regions: Vec<Region>,
    /// Restrict to these genders (empty = any).
    #[serde(default)]
    pub genders: Vec<Gender>,
    /// Minimum self-assessed technical ability (1–5).
    #[serde(default)]
    pub min_tech_ability: u8,
}

impl DemographicTarget {
    /// A target matching everyone.
    pub fn any() -> Self {
        Self::default()
    }

    /// Whether a worker's demographics satisfy the target.
    pub fn matches(&self, d: &Demographics) -> bool {
        (self.ages.is_empty() || self.ages.contains(&d.age))
            && (self.regions.is_empty() || self.regions.contains(&d.country))
            && (self.genders.is_empty() || self.genders.contains(&d.gender))
            && d.tech_ability >= self.min_tech_ability
    }

    /// Whether the target is unrestricted.
    pub fn is_any(&self) -> bool {
        self.ages.is_empty()
            && self.regions.is_empty()
            && self.genders.is_empty()
            && self.min_tech_ability <= 1
    }

    /// Estimates the fraction of the platform population that qualifies by
    /// Monte-Carlo over the demographics sampler. Used to slow down the
    /// arrival rate of targeted jobs.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn selectivity<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> f64 {
        assert!(samples > 0, "need at least one sample");
        if self.is_any() {
            return 1.0;
        }
        let hits = (0..samples).filter(|_| self.matches(&Demographics::sample(rng))).count();
        (hits as f64 / samples as f64).max(1e-3)
    }

    /// Rejection-samples a worker that satisfies the target.
    pub fn sample_worker<R: Rng + ?Sized>(
        &self,
        seq: u64,
        mix: &crate::worker::PopulationMix,
        rng: &mut R,
    ) -> Worker {
        loop {
            let w = Worker::generate(seq, mix, rng);
            if self.matches(&w.demographics) {
                return w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::PopulationMix;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn any_matches_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = DemographicTarget::any();
        assert!(t.is_any());
        for _ in 0..50 {
            assert!(t.matches(&Demographics::sample(&mut rng)));
        }
        assert_eq!(t.selectivity(100, &mut rng), 1.0);
    }

    #[test]
    fn age_filter() {
        let t = DemographicTarget { ages: vec![AgeRange::Under25], ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let w = t.sample_worker(0, &PopulationMix::open_channel(), &mut rng);
            assert_eq!(w.demographics.age, AgeRange::Under25);
        }
        assert!(!t.is_any());
    }

    #[test]
    fn tech_floor() {
        let t = DemographicTarget { min_tech_ability: 4, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let w = t.sample_worker(0, &PopulationMix::in_lab(), &mut rng);
            assert!(w.demographics.tech_ability >= 4);
        }
    }

    #[test]
    fn selectivity_tracks_population_share() {
        // Under25 is 40% of the sampler's population.
        let t = DemographicTarget { ages: vec![AgeRange::Under25], ..Default::default() };
        let mut rng = StdRng::seed_from_u64(4);
        let s = t.selectivity(20_000, &mut rng);
        assert!((s - 0.4).abs() < 0.03, "selectivity = {s}");
    }

    #[test]
    fn compound_filters_multiply_down() {
        let narrow = DemographicTarget {
            ages: vec![AgeRange::Age50Plus],
            regions: vec![Region::Oceania],
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        // Oceania never appears in the sampler: selectivity floors at 1e-3.
        assert_eq!(narrow.selectivity(5000, &mut rng), 1e-3);
    }

    #[test]
    fn serde_roundtrip() {
        let t = DemographicTarget {
            ages: vec![AgeRange::Age25To34],
            regions: vec![Region::Europe],
            genders: vec![Gender::Female],
            min_tech_ability: 3,
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: DemographicTarget = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
