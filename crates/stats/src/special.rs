//! Special functions: error function, log-gamma, and the regularized
//! incomplete gamma function.
//!
//! These are the numeric kernels behind the normal and chi-square
//! distributions in [`crate::dist`]. The implementations follow standard
//! references (Numerical Recipes; Abramowitz & Stegun) and are accurate to
//! roughly `1e-12` across the ranges the rest of the crate exercises, far
//! beyond what any of the paper's significance tests need.

/// The error function `erf(x) = 2/sqrt(pi) * ∫_0^x e^(-t^2) dt`.
///
/// Uses the complementary-error-function rational approximation from
/// Numerical Recipes (`erfc` with a Chebyshev fit), giving ~1e-12 relative
/// accuracy everywhere.
///
/// ```
/// let e = kscope_stats::special::erf(1.0);
/// assert!((e - 0.8427007929497149).abs() < 1e-10);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Keeps full relative precision for large positive `x` where `erf(x)` would
/// round to `1.0` — important for the tiny p-values the paper reports
/// (e.g. `6.8e-8` for question C).
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        erfc_positive(x)
    } else {
        2.0 - erfc_positive(-x)
    }
}

/// Chebyshev-fit `erfc` for non-negative arguments (Numerical Recipes 6.2.2).
fn erfc_positive(x: f64) -> f64 {
    debug_assert!(x >= 0.0);
    let z = x;
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Coefficients for the Chebyshev expansion of erfc, NR 3rd edition.
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }

    t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp()
}

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation (g = 7, n = 9), accurate to ~1e-13.
///
/// # Panics
///
/// Panics in debug builds if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`; this is the CDF of a Gamma(a, 1) variate and
/// therefore the kernel of the chi-square CDF. Series expansion for
/// `x < a + 1`, continued fraction otherwise (Numerical Recipes `gammp`).
///
/// # Panics
///
/// Panics in debug builds if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Natural logarithm of `n!`, via [`ln_gamma`]. Used by the exact binomial
/// test.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        0.0
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Binomial coefficient `C(n, k)` as an `f64` (exact for results below 2^53).
pub fn choose(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    (ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(0.5), 0.5204998778130465, 1e-10);
        close(erf(1.0), 0.8427007929497149, 1e-10);
        close(erf(2.0), 0.9953222650189527, 1e-10);
        close(erf(-1.0), -0.8427007929497149, 1e-10);
    }

    #[test]
    fn erfc_preserves_precision_in_tail() {
        // erfc(4) ~ 1.5417e-8; a naive 1-erf(4) would lose most digits.
        close(erfc(4.0), 1.541725790028002e-8, 1e-16);
        close(erfc(5.0), 1.5374597944280351e-12, 1e-20);
    }

    #[test]
    fn erf_is_odd_function() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            close(erf(-x), -erf(x), 1e-14);
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0f64.ln(), 1e-10);
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Γ(10) = 9! = 362880
        close(ln_gamma(10.0), 362880.0f64.ln(), 1e-9);
    }

    #[test]
    fn gamma_p_matches_chi_square_table() {
        // Chi-square CDF with k dof = P(k/2, x/2).
        // chi2 cdf at x=3.841, k=1 is 0.95 (the classic 5% critical value).
        close(gamma_p(0.5, 3.841458820694124 / 2.0), 0.95, 1e-6);
        // k=2: cdf(x) = 1 - exp(-x/2); at x=2 -> 1-e^-1.
        close(gamma_p(1.0, 1.0), 1.0 - (-1.0f64).exp(), 1e-12);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 5.0), (7.5, 3.2), (10.0, 20.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..100 {
            let x = i as f64 * 0.2;
            let p = gamma_p(3.0, x);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn ln_factorial_small_values() {
        close(ln_factorial(0), 0.0, 1e-15);
        close(ln_factorial(1), 0.0, 1e-15);
        close(ln_factorial(5), 120.0f64.ln(), 1e-10);
        close(ln_factorial(20), 2.43290200817664e18f64.ln(), 1e-8);
    }

    #[test]
    fn choose_exact_small() {
        close(choose(5, 2), 10.0, 1e-9);
        close(choose(10, 5), 252.0, 1e-7);
        close(choose(52, 5), 2598960.0, 1e-3);
        close(choose(3, 7), 0.0, 0.0);
    }
}
