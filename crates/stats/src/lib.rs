//! Statistics substrate for the Kaleidoscope reproduction.
//!
//! The paper's evaluation rests on a small set of statistical machinery:
//! two-proportion significance tests (the VWO-style calculator used for the
//! A/B "Expand button" experiment), empirical CDFs (tester-behaviour figures),
//! majority-vote aggregation ("crowd wisdom" quality control), and ranking
//! aggregation from pairwise comparisons (the font-size study). This crate
//! implements all of it from scratch on top of `std` plus `rand`.
//!
//! # Example
//!
//! ```
//! use kscope_stats::tests::{two_proportion_z_test, Tail};
//!
//! // Paper §IV-B: A/B test, 3/51 vs 6/49 clicks -> not significant.
//! let r = two_proportion_z_test(3, 51, 6, 49, Tail::OneSidedGreater);
//! assert!(r.p_value > 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod describe;
pub mod dist;
pub mod ecdf;
pub mod rank;
pub mod special;
pub mod tests;

pub use describe::Summary;
pub use dist::{Binomial, ChiSquared, Normal};
pub use ecdf::Ecdf;
pub use rank::{
    borda_ranking, bradley_terry, fleiss_kappa, kendall_tau, majority_vote, PairwiseMatrix,
};
pub use tests::{two_proportion_z_test, Tail, TestResult};
