//! Descriptive statistics for result reporting.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for singleton samples).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (average of the middle pair for even n).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values.
    ///
    /// ```
    /// let s = kscope_stats::Summary::of(&[1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!(s.mean, 2.5);
    /// assert_eq!(s.median, 2.5);
    /// ```
    pub fn of(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "summary of empty sample");
        assert!(sample.iter().all(|x| x.is_finite()), "sample must be finite");
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
        Self { n, mean, std_dev: var.sqrt(), min: sorted[0], median, max: sorted[n - 1] }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} med={:.3} max={:.3}",
            self.n, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

/// Converts a slice of counts into percentages that sum to 100 (up to
/// floating-point error). Used for the stacked-bar figures.
///
/// # Panics
///
/// Panics if the counts sum to zero.
pub fn percentages(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "cannot take percentages of all-zero counts");
    counts.iter().map(|&c| 100.0 * c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_odd_sample() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_even_sample_median() {
        let s = Summary::of(&[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn summary_singleton() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::of(&[1.0, 2.0]);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let p = percentages(&[1, 1, 2]);
        assert_eq!(p, vec![25.0, 25.0, 50.0]);
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn percentages_reject_zero_total() {
        let _ = percentages(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }
}
