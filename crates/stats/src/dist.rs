//! Probability distributions: normal, chi-square, binomial, log-normal.
//!
//! Only the pieces the Kaleidoscope pipeline needs: CDFs for p-values,
//! quantiles for confidence intervals, and sampling for the simulators.

use crate::special::{erfc, gamma_p, ln_factorial};
use rand::{Rng, RngExt};

/// A normal (Gaussian) distribution with mean `mu` and standard deviation
/// `sigma`.
///
/// ```
/// use kscope_stats::Normal;
/// let n = Normal::standard();
/// assert!((n.cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite(), "parameters must be finite");
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        Self { mu, sigma }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mu: 0.0, sigma: 1.0 }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.sigma
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    /// Upper-tail probability `P(X > x)`, precise deep into the tail.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        0.5 * erfc(z / std::f64::consts::SQRT_2)
    }

    /// Inverse CDF (quantile function) via Acklam's rational approximation
    /// refined with one Halley step; absolute error below 1e-9.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly inside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        self.mu + self.sigma * standard_quantile(p)
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mu + self.sigma * z
    }
}

/// Standard-normal quantile (Acklam 2003 + one Halley refinement).
fn standard_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One step of Halley's method against the true CDF.
    let std = Normal::standard();
    let e = std.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// A chi-square distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChiSquared {
    k: u32,
}

impl ChiSquared {
    /// Creates a chi-square distribution with `k > 0` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u32) -> Self {
        assert!(k > 0, "degrees of freedom must be positive");
        Self { k }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> u32 {
        self.k
    }

    /// CDF at `x >= 0` (zero for negative `x`).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.k as f64 / 2.0, x / 2.0)
        }
    }

    /// Upper-tail probability `P(X > x)`.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            crate::special::gamma_q(self.k as f64 / 2.0, x / 2.0)
        }
    }
}

/// A binomial distribution with `n` trials and success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must lie in [0,1], got {p}");
        Self { n, p }
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability mass function `P(X = k)` computed in log space.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let ln = ln_factorial(self.n) - ln_factorial(k) - ln_factorial(self.n - k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln();
        ln.exp()
    }

    /// Cumulative probability `P(X <= k)` by direct summation.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    /// Upper tail `P(X >= k)`.
    pub fn sf_inclusive(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        (k..=self.n).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    /// Draws a sample by `n` Bernoulli trials (fine for the sizes we use).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        (0..self.n).filter(|_| rng.random_bool(self.p)).count() as u64
    }
}

/// A log-normal distribution parameterised by the mean/σ of the underlying
/// normal. Used for tester time-on-task models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal whose logarithm is `N(mu, sigma)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self { norm: Normal::new(mu, sigma) }
    }

    /// Creates a log-normal from the desired *median* and a shape factor
    /// (sigma of the log). `median > 0` required.
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0` or `sigma <= 0`.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        Self::new(median.ln(), sigma)
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.norm.cdf(x.ln())
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Samples from a Poisson distribution with rate `lambda` (Knuth's method
/// for small rates, normal approximation above 500). Used by visitor-arrival
/// simulators.
pub fn poisson_sample<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 500.0 {
        let n = Normal::new(lambda, lambda.sqrt());
        return n.sample(rng).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples an exponential inter-arrival time with rate `lambda` (per unit
/// time). Returns the waiting time until the next event.
pub fn exponential_sample<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "lambda must be positive");
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn normal_cdf_known_values() {
        let n = Normal::standard();
        close(n.cdf(0.0), 0.5, 1e-12);
        close(n.cdf(1.0), 0.8413447460685429, 1e-10);
        close(n.cdf(-1.0), 0.15865525393145705, 1e-10);
        close(n.cdf(1.959963984540054), 0.975, 1e-10);
    }

    #[test]
    fn normal_sf_tail_precision() {
        let n = Normal::standard();
        // P(Z > 5.27) ~ 6.8e-8 — the paper's question-C significance level.
        let p = n.sf(5.27);
        assert!(p > 5e-8 && p < 9e-8, "sf(5.27) = {p}");
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::new(3.0, 2.5);
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            close(n.cdf(n.quantile(p)), p, 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn normal_rejects_zero_sigma() {
        let _ = Normal::new(0.0, 0.0);
    }

    #[test]
    fn normal_sampling_matches_moments() {
        let n = Normal::new(10.0, 3.0);
        let mut rng = StdRng::seed_from_u64(42);
        let m = 20_000;
        let xs: Vec<f64> = (0..m).map(|_| n.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / m as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / m as f64;
        close(mean, 10.0, 0.1);
        close(var.sqrt(), 3.0, 0.1);
    }

    #[test]
    fn chi_square_critical_values() {
        // Classic critical values at alpha = 0.05.
        close(ChiSquared::new(1).cdf(3.841), 0.95, 1e-3);
        close(ChiSquared::new(2).cdf(5.991), 0.95, 1e-3);
        close(ChiSquared::new(10).cdf(18.307), 0.95, 1e-3);
    }

    #[test]
    fn chi_square_cdf_sf_complement() {
        let c = ChiSquared::new(4);
        for &x in &[0.5, 2.0, 7.78, 20.0] {
            close(c.cdf(x) + c.sf(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let b = Binomial::new(30, 0.37);
        let total: f64 = (0..=30).map(|k| b.pmf(k)).sum();
        close(total, 1.0, 1e-10);
    }

    #[test]
    fn binomial_known_pmf() {
        let b = Binomial::new(10, 0.5);
        close(b.pmf(5), 252.0 / 1024.0, 1e-12);
        close(b.cdf(10), 1.0, 0.0);
    }

    #[test]
    fn binomial_degenerate_probabilities() {
        let b0 = Binomial::new(5, 0.0);
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.pmf(1), 0.0);
        let b1 = Binomial::new(5, 1.0);
        assert_eq!(b1.pmf(5), 1.0);
        assert_eq!(b1.pmf(4), 0.0);
    }

    #[test]
    fn binomial_sf_of_paper_sign_test() {
        // 46 of 60 non-tied votes prefer B: P(X >= 46 | n=60, p=0.5).
        let b = Binomial::new(60, 0.5);
        let p = b.sf_inclusive(46);
        assert!(p < 1e-4, "sign-test tail should be tiny, got {p}");
    }

    #[test]
    fn lognormal_median() {
        let ln = LogNormal::from_median(60.0, 0.5);
        close(ln.cdf(60.0), 0.5, 1e-12);
        let mut rng = StdRng::seed_from_u64(7);
        let mut xs: Vec<f64> = (0..10_001).map(|_| ln.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[5000];
        assert!((med - 60.0).abs() < 3.0, "sample median {med}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(99);
        let lambda = 8.3;
        let n = 5000;
        let total: u64 = (0..n).map(|_| poisson_sample(&mut rng, lambda)).sum();
        let mean = total as f64 / n as f64;
        close(mean, lambda, 0.15);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let lambda = 2.0;
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exponential_sample(&mut rng, lambda)).sum();
        close(total / n as f64, 0.5, 0.02);
    }
}
