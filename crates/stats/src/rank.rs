//! Ranking aggregation from pairwise comparisons.
//!
//! The font-size study (paper Fig. 4) shows each tester `C(5,2)` side-by-side
//! pairs and asks which is easier to read. Per-tester rankings ("A" best …
//! "E" worst) are derived from the pairwise wins, and the figure reports the
//! distribution of ranks per version. This module provides the pairwise win
//! matrix, Borda ranking, majority vote, Bradley–Terry strength estimation,
//! and Kendall-tau ranking comparison.

use std::collections::HashMap;

/// Outcome of a single side-by-side comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preference {
    /// The left (first) item won.
    Left,
    /// The right (second) item won.
    Right,
    /// The tester judged them the same.
    Same,
}

impl Preference {
    /// Mirrors the preference, as if left/right had been swapped.
    pub fn flipped(self) -> Self {
        match self {
            Preference::Left => Preference::Right,
            Preference::Right => Preference::Left,
            Preference::Same => Preference::Same,
        }
    }
}

/// Accumulated pairwise results among `n` items.
///
/// `wins[i][j]` counts comparisons where item `i` beat item `j`; ties are
/// tracked separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseMatrix {
    n: usize,
    wins: Vec<Vec<u64>>,
    ties: Vec<Vec<u64>>,
}

impl PairwiseMatrix {
    /// Creates an empty matrix over `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "pairwise comparison needs at least two items");
        Self { n, wins: vec![vec![0; n]; n], ties: vec![vec![0; n]; n] }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: the matrix covers at least two items.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Records one comparison between items `left` and `right`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `left == right`.
    pub fn record(&mut self, left: usize, right: usize, pref: Preference) {
        assert!(left < self.n && right < self.n, "item index out of range");
        assert_ne!(left, right, "cannot compare an item against itself");
        match pref {
            Preference::Left => self.wins[left][right] += 1,
            Preference::Right => self.wins[right][left] += 1,
            Preference::Same => {
                self.ties[left][right] += 1;
                self.ties[right][left] += 1;
            }
        }
    }

    /// Wins of `i` over `j`.
    pub fn wins(&self, i: usize, j: usize) -> u64 {
        self.wins[i][j]
    }

    /// Ties recorded between `i` and `j`.
    pub fn ties(&self, i: usize, j: usize) -> u64 {
        self.ties[i][j]
    }

    /// Total comparisons involving the pair `(i, j)`.
    pub fn total(&self, i: usize, j: usize) -> u64 {
        self.wins[i][j] + self.wins[j][i] + self.ties[i][j]
    }

    /// Borda score of each item: total wins plus half of ties.
    pub fn borda_scores(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| {
                let w: u64 = self.wins[i].iter().sum();
                let t: u64 = self.ties[i].iter().sum();
                w as f64 + t as f64 / 2.0
            })
            .collect()
    }

    /// Merges another matrix of the same size into this one.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn merge(&mut self, other: &PairwiseMatrix) {
        assert_eq!(self.n, other.n, "matrix sizes differ");
        for i in 0..self.n {
            for j in 0..self.n {
                self.wins[i][j] += other.wins[i][j];
                self.ties[i][j] += other.ties[i][j];
            }
        }
    }
}

/// Ranks items best-first by Borda score (wins + ties/2), breaking score
/// ties by lower index for determinism. Returns item indices.
///
/// ```
/// use kscope_stats::rank::{PairwiseMatrix, Preference, borda_ranking};
/// let mut m = PairwiseMatrix::new(3);
/// m.record(0, 1, Preference::Left);   // 0 beats 1
/// m.record(0, 2, Preference::Left);   // 0 beats 2
/// m.record(1, 2, Preference::Left);   // 1 beats 2
/// assert_eq!(borda_ranking(&m), vec![0, 1, 2]);
/// ```
pub fn borda_ranking(m: &PairwiseMatrix) -> Vec<usize> {
    let scores = m.borda_scores();
    let mut order: Vec<usize> = (0..m.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).expect("finite scores").then(a.cmp(&b))
    });
    order
}

/// Like [`borda_ranking`], but Borda-score ties are resolved by the
/// head-to-head record between the tied items before falling back to the
/// index. This matters for per-participant rankings built from a single
/// pass over the pairs, where ties in score are common: a participant who
/// answered "Right" on the pair `(a, b)` should rank `b` above `a` even if
/// their Borda scores ended up equal.
pub fn borda_ranking_resolved(m: &PairwiseMatrix) -> Vec<usize> {
    let scores = m.borda_scores();
    let mut order: Vec<usize> = (0..m.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("finite scores")
            .then_with(|| m.wins(b, a).cmp(&m.wins(a, b)))
            .then(a.cmp(&b))
    });
    order
}

/// Converts a best-first ranking (e.g. `[2, 0, 1]` = item 2 best) into
/// per-item rank positions (`result[item] = rank`, 0 = best).
pub fn ranking_to_positions(ranking: &[usize]) -> Vec<usize> {
    let mut pos = vec![0usize; ranking.len()];
    for (rank, &item) in ranking.iter().enumerate() {
        pos[item] = rank;
    }
    pos
}

/// Majority vote over hashable labels. Returns the winning label and its
/// count; score ties are broken towards the label that first reached the
/// winning count (deterministic for a fixed input order).
///
/// Returns `None` on empty input.
pub fn majority_vote<T: Eq + std::hash::Hash + Clone>(votes: &[T]) -> Option<(T, usize)> {
    let mut counts: HashMap<&T, usize> = HashMap::new();
    let mut best: Option<(&T, usize)> = None;
    for v in votes {
        let c = counts.entry(v).or_insert(0);
        *c += 1;
        match best {
            Some((_, bc)) if *c <= bc => {}
            _ => best = Some((v, *c)),
        }
    }
    best.map(|(v, c)| (v.clone(), c))
}

/// Fits a Bradley–Terry model to a pairwise win matrix using the standard
/// minorization–maximization iteration. Returns per-item strengths
/// normalized to sum to 1. Ties contribute half a win to each side.
///
/// Items with no comparisons keep a uniform strength. The iteration is run
/// for at most `max_iter` rounds or until the largest relative change drops
/// below `tol`.
///
/// # Panics
///
/// Panics if `max_iter == 0`.
pub fn bradley_terry(m: &PairwiseMatrix, max_iter: usize, tol: f64) -> Vec<f64> {
    assert!(max_iter > 0, "need at least one iteration");
    let n = m.len();
    // Effective win counts with ties split evenly.
    let w = |i: usize, j: usize| m.wins(i, j) as f64 + m.ties(i, j) as f64 / 2.0;
    let mut p = vec![1.0 / n as f64; n];
    for _ in 0..max_iter {
        let mut next = vec![0.0; n];
        let mut max_rel = 0.0f64;
        for i in 0..n {
            let total_wins: f64 = (0..n).filter(|&j| j != i).map(|j| w(i, j)).sum();
            if total_wins == 0.0 {
                next[i] = p[i];
                continue;
            }
            let denom: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    let nij = w(i, j) + w(j, i);
                    if nij == 0.0 {
                        0.0
                    } else {
                        nij / (p[i] + p[j])
                    }
                })
                .sum();
            next[i] = if denom > 0.0 { total_wins / denom } else { p[i] };
        }
        let sum: f64 = next.iter().sum();
        for v in next.iter_mut() {
            *v /= sum;
        }
        for i in 0..n {
            if p[i] > 0.0 {
                max_rel = max_rel.max((next[i] - p[i]).abs() / p[i]);
            }
        }
        p = next;
        if max_rel < tol {
            break;
        }
    }
    p
}

/// Kendall tau-a rank correlation between two best-first rankings of the
/// same items: `+1` for identical order, `-1` for reversed.
///
/// # Panics
///
/// Panics if the rankings have different lengths, are shorter than 2, or are
/// not permutations of the same items.
pub fn kendall_tau(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "rankings must have equal length");
    let n = a.len();
    assert!(n >= 2, "need at least two items");
    let pos_a = positions_checked(a);
    let pos_b = positions_checked(b);
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = pos_a[i] as i64 - pos_a[j] as i64;
            let db = pos_b[i] as i64 - pos_b[j] as i64;
            if da * db > 0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64
}

/// Fleiss' kappa: chance-corrected agreement among raters assigning
/// categorical labels to subjects. `counts[subject][category]` holds how
/// many raters chose that category; every subject must have the same
/// number of raters (`n >= 2`).
///
/// Returns a value in `[-1, 1]`: 1 = perfect agreement, 0 = chance-level.
/// The crowdsourcing-QoE literature the paper builds on (Hossfeld et al.)
/// reports this statistic for exactly our kind of Left/Right/Same votes.
///
/// # Panics
///
/// Panics if subjects are empty, rater counts differ across subjects, or
/// fewer than two raters rated each subject.
pub fn fleiss_kappa(counts: &[Vec<u64>]) -> f64 {
    assert!(!counts.is_empty(), "need at least one subject");
    let n: u64 = counts[0].iter().sum();
    assert!(n >= 2, "need at least two raters per subject");
    assert!(
        counts.iter().all(|row| row.iter().sum::<u64>() == n),
        "every subject needs the same number of raters"
    );
    let subjects = counts.len() as f64;
    let categories = counts[0].len();
    let n_f = n as f64;

    // Per-subject agreement.
    let p_bar: f64 = counts
        .iter()
        .map(|row| {
            let sum_sq: f64 = row.iter().map(|&c| (c * c) as f64).sum();
            (sum_sq - n_f) / (n_f * (n_f - 1.0))
        })
        .sum::<f64>()
        / subjects;

    // Chance agreement from the category marginals.
    let p_e: f64 = (0..categories)
        .map(|j| {
            let share: f64 = counts.iter().map(|row| row[j] as f64).sum::<f64>() / (subjects * n_f);
            share * share
        })
        .sum();

    if (1.0 - p_e).abs() < 1e-12 {
        // Everyone always picks the same category: perfect by definition.
        return 1.0;
    }
    (p_bar - p_e) / (1.0 - p_e)
}

fn positions_checked(ranking: &[usize]) -> Vec<usize> {
    let n = ranking.len();
    let mut pos = vec![usize::MAX; n];
    for (rank, &item) in ranking.iter().enumerate() {
        assert!(item < n, "ranking contains out-of-range item {item}");
        assert_eq!(pos[item], usize::MAX, "ranking repeats item {item}");
        pos[item] = rank;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut m = PairwiseMatrix::new(3);
        m.record(0, 1, Preference::Left);
        m.record(0, 1, Preference::Right);
        m.record(0, 1, Preference::Same);
        assert_eq!(m.wins(0, 1), 1);
        assert_eq!(m.wins(1, 0), 1);
        assert_eq!(m.ties(0, 1), 1);
        assert_eq!(m.total(0, 1), 3);
        assert_eq!(m.total(1, 0), 3);
    }

    #[test]
    fn flipped_preferences() {
        assert_eq!(Preference::Left.flipped(), Preference::Right);
        assert_eq!(Preference::Right.flipped(), Preference::Left);
        assert_eq!(Preference::Same.flipped(), Preference::Same);
    }

    #[test]
    fn borda_total_order() {
        // 2 > 0 > 1 by direct wins.
        let mut m = PairwiseMatrix::new(3);
        m.record(2, 0, Preference::Left);
        m.record(2, 1, Preference::Left);
        m.record(0, 1, Preference::Left);
        assert_eq!(borda_ranking(&m), vec![2, 0, 1]);
    }

    #[test]
    fn borda_ties_split_evenly() {
        let mut m = PairwiseMatrix::new(2);
        m.record(0, 1, Preference::Same);
        let s = m.borda_scores();
        assert_eq!(s[0], 0.5);
        assert_eq!(s[1], 0.5);
        // Deterministic tie-break on index.
        assert_eq!(borda_ranking(&m), vec![0, 1]);
    }

    #[test]
    fn resolved_ranking_uses_head_to_head() {
        // One decisive answer, everything else Same: scores tie at the
        // top, but 1 beat 0 directly so 1 must rank first.
        let mut m = PairwiseMatrix::new(3);
        m.record(0, 1, Preference::Right); // 1 beats 0
        m.record(0, 2, Preference::Same);
        m.record(1, 2, Preference::Same);
        let plain = borda_ranking(&m);
        let resolved = borda_ranking_resolved(&m);
        assert_eq!(plain[0], 1); // 1 has the higher score outright here
        assert_eq!(resolved[0], 1);
        // Now force a score tie: 0 beats 2, 1 beats 0, 2 beats 1 is absent;
        // give 0 and 1 equal scores with a direct 1-over-0 result.
        let mut m = PairwiseMatrix::new(2);
        m.record(0, 1, Preference::Right);
        m.record(0, 1, Preference::Left);
        // Scores tied 1-1; head-to-head tied too -> index order.
        assert_eq!(borda_ranking_resolved(&m), vec![0, 1]);
        let mut m = PairwiseMatrix::new(2);
        m.record(0, 1, Preference::Right);
        m.record(0, 1, Preference::Same);
        m.record(0, 1, Preference::Left);
        m.record(0, 1, Preference::Right);
        // Scores: 0 has 1+0.5=1.5+... 0: 1 win + 0.5 = 1.5; 1: 2 wins + 0.5 = 2.5.
        assert_eq!(borda_ranking_resolved(&m)[0], 1);
    }

    #[test]
    fn ranking_positions_roundtrip() {
        let ranking = vec![3, 1, 0, 2];
        let pos = ranking_to_positions(&ranking);
        assert_eq!(pos, vec![2, 1, 3, 0]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PairwiseMatrix::new(2);
        a.record(0, 1, Preference::Left);
        let mut b = PairwiseMatrix::new(2);
        b.record(0, 1, Preference::Left);
        b.record(0, 1, Preference::Same);
        a.merge(&b);
        assert_eq!(a.wins(0, 1), 2);
        assert_eq!(a.ties(0, 1), 1);
    }

    #[test]
    fn majority_vote_basic() {
        let votes = vec!["left", "right", "right", "same", "right"];
        assert_eq!(majority_vote(&votes), Some(("right", 3)));
    }

    #[test]
    fn majority_vote_empty() {
        let votes: Vec<u8> = vec![];
        assert_eq!(majority_vote(&votes), None);
    }

    #[test]
    fn majority_vote_tie_prefers_first_to_reach() {
        // Both labels end on 2 votes, but 2 reached that count first.
        let votes = vec![1, 2, 2, 1];
        assert_eq!(majority_vote(&votes), Some((2, 2)));
    }

    #[test]
    fn bradley_terry_recovers_order() {
        // Item 0 dominates, item 2 weakest.
        let mut m = PairwiseMatrix::new(3);
        for _ in 0..9 {
            m.record(0, 1, Preference::Left);
            m.record(0, 2, Preference::Left);
            m.record(1, 2, Preference::Left);
        }
        m.record(0, 1, Preference::Right);
        m.record(1, 2, Preference::Right);
        let p = bradley_terry(&m, 200, 1e-10);
        assert!(p[0] > p[1] && p[1] > p[2], "{p:?}");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bradley_terry_uniform_for_balanced_data() {
        let mut m = PairwiseMatrix::new(2);
        for _ in 0..5 {
            m.record(0, 1, Preference::Left);
            m.record(0, 1, Preference::Right);
        }
        let p = bradley_terry(&m, 100, 1e-12);
        assert!((p[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn kendall_tau_extremes() {
        assert_eq!(kendall_tau(&[0, 1, 2, 3], &[0, 1, 2, 3]), 1.0);
        assert_eq!(kendall_tau(&[0, 1, 2, 3], &[3, 2, 1, 0]), -1.0);
    }

    #[test]
    fn kendall_tau_partial() {
        // One adjacent swap in a 3-ranking flips 1 of 3 pairs: tau = 1/3.
        let t = kendall_tau(&[0, 1, 2], &[0, 2, 1]);
        assert!((t - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fleiss_kappa_perfect_agreement() {
        // 3 subjects, 5 raters, everyone picks category 0 (or all cat 1).
        let counts = vec![vec![5, 0, 0], vec![5, 0, 0], vec![0, 5, 0]];
        let k = fleiss_kappa(&counts);
        assert!((k - 1.0).abs() < 1e-12, "k = {k}");
    }

    #[test]
    fn fleiss_kappa_chance_agreement_near_zero() {
        // Votes spread uniformly: agreement at chance level.
        let counts = vec![vec![2, 2, 2], vec![2, 2, 2], vec![2, 2, 2], vec![2, 2, 2]];
        let k = fleiss_kappa(&counts);
        assert!(k < 0.0, "uniform spread is below-chance corrected: k = {k}");
    }

    #[test]
    fn fleiss_kappa_textbook_example() {
        // The classic Fleiss (1971) worked example: 10 subjects, 14 raters,
        // 5 categories; kappa = 0.21.
        let counts = vec![
            vec![0, 0, 0, 0, 14],
            vec![0, 2, 6, 4, 2],
            vec![0, 0, 3, 5, 6],
            vec![0, 3, 9, 2, 0],
            vec![2, 2, 8, 1, 1],
            vec![7, 7, 0, 0, 0],
            vec![3, 2, 6, 3, 0],
            vec![2, 5, 3, 2, 2],
            vec![6, 5, 2, 1, 0],
            vec![0, 2, 2, 3, 7],
        ];
        let k = fleiss_kappa(&counts);
        assert!((k - 0.21).abs() < 0.005, "k = {k}");
    }

    #[test]
    #[should_panic(expected = "same number of raters")]
    fn fleiss_kappa_rejects_ragged_counts() {
        let _ = fleiss_kappa(&[vec![3, 2], vec![4, 2]]);
    }

    #[test]
    #[should_panic(expected = "repeats item")]
    fn kendall_tau_rejects_non_permutation() {
        let _ = kendall_tau(&[0, 0, 1], &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot compare an item against itself")]
    fn record_rejects_self_comparison() {
        let mut m = PairwiseMatrix::new(2);
        m.record(1, 1, Preference::Left);
    }
}
