//! Hypothesis tests used by the Kaleidoscope analysis pipeline.
//!
//! The paper reports two significance numbers: the A/B "Expand button"
//! test (p = 0.133 via a VWO-style one-tailed two-proportion z-test) and the
//! Kaleidoscope question-C result (p = 6.8e-8). Both are two-proportion
//! tests; we also provide the exact binomial (sign) test and a 2×2
//! chi-square as cross-checks.

use crate::dist::{Binomial, ChiSquared, Normal};

/// Which tail of the distribution a test considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tail {
    /// `H1: p2 > p1` (the variant beats the control).
    OneSidedGreater,
    /// `H1: p2 < p1`.
    OneSidedLess,
    /// `H1: p2 != p1`.
    TwoSided,
}

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (z or chi-square value).
    pub statistic: f64,
    /// The p-value under the null hypothesis.
    pub p_value: f64,
}

impl TestResult {
    /// Whether the null hypothesis is rejected at significance level `alpha`.
    ///
    /// ```
    /// use kscope_stats::tests::TestResult;
    /// let r = TestResult { statistic: 5.0, p_value: 1e-7 };
    /// assert!(r.significant_at(0.01));
    /// ```
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-proportion z-test: compares success counts `x1/n1` vs `x2/n2` using
/// the pooled-variance z statistic. This mirrors the VWO significance
/// calculator the paper cites for its A/B analysis.
///
/// Returns the z statistic (positive when `p2 > p1`) and the requested tail
/// probability.
///
/// # Panics
///
/// Panics if either sample size is zero or a count exceeds its sample size.
///
/// ```
/// use kscope_stats::tests::{two_proportion_z_test, Tail};
/// // Paper Fig. 7(b): 3/51 control clicks vs 6/49 variant clicks.
/// let r = two_proportion_z_test(3, 51, 6, 49, Tail::OneSidedGreater);
/// assert!((r.p_value - 0.133).abs() < 0.02);
/// ```
pub fn two_proportion_z_test(x1: u64, n1: u64, x2: u64, n2: u64, tail: Tail) -> TestResult {
    assert!(n1 > 0 && n2 > 0, "sample sizes must be positive");
    assert!(x1 <= n1 && x2 <= n2, "counts cannot exceed sample sizes");
    let p1 = x1 as f64 / n1 as f64;
    let p2 = x2 as f64 / n2 as f64;
    let pooled = (x1 + x2) as f64 / (n1 + n2) as f64;
    let se = (pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64)).sqrt();
    if se == 0.0 {
        // All successes or all failures in both groups: no evidence of any
        // difference.
        return TestResult { statistic: 0.0, p_value: 1.0 };
    }
    let z = (p2 - p1) / se;
    let std = Normal::standard();
    let p_value = match tail {
        Tail::OneSidedGreater => std.sf(z),
        Tail::OneSidedLess => std.cdf(z),
        Tail::TwoSided => 2.0 * std.sf(z.abs()),
    }
    .min(1.0);
    TestResult { statistic: z, p_value }
}

/// Exact binomial test: `P(X >= k)` (or the requested tail) for `k` successes
/// in `n` trials under success probability `p0`.
///
/// Used as the sign test on pairwise preference votes, ignoring ties: the
/// paper's question C saw 46 votes for B vs 14 for A.
///
/// # Panics
///
/// Panics if `k > n` or `p0` is outside `[0, 1]`.
pub fn binomial_test(k: u64, n: u64, p0: f64, tail: Tail) -> TestResult {
    assert!(k <= n, "successes cannot exceed trials");
    let b = Binomial::new(n, p0);
    let p_value = match tail {
        Tail::OneSidedGreater => b.sf_inclusive(k),
        Tail::OneSidedLess => b.cdf(k),
        Tail::TwoSided => {
            // Sum all outcomes at most as likely as the observed one.
            let pk = b.pmf(k);
            (0..=n).map(|i| b.pmf(i)).filter(|&p| p <= pk * (1.0 + 1e-12)).sum::<f64>().min(1.0)
        }
    };
    TestResult { statistic: k as f64, p_value }
}

/// Chi-square test of independence on a 2×2 contingency table
/// `[[a, b], [c, d]]` (without Yates correction, matching the common online
/// calculators). One degree of freedom.
///
/// # Panics
///
/// Panics if any marginal total is zero.
pub fn chi_square_2x2(a: u64, b: u64, c: u64, d: u64) -> TestResult {
    let (a, b, c, d) = (a as f64, b as f64, c as f64, d as f64);
    let n = a + b + c + d;
    let r1 = a + b;
    let r2 = c + d;
    let c1 = a + c;
    let c2 = b + d;
    assert!(r1 > 0.0 && r2 > 0.0 && c1 > 0.0 && c2 > 0.0, "degenerate 2x2 table");
    let stat = n * (a * d - b * c).powi(2) / (r1 * r2 * c1 * c2);
    let p_value = ChiSquared::new(1).sf(stat);
    TestResult { statistic: stat, p_value }
}

/// Wilson score interval for a binomial proportion at confidence `1 - alpha`.
///
/// Returns `(low, high)`. Preferred over the normal interval for the small
/// click counts the A/B experiment produces.
///
/// # Panics
///
/// Panics if `n == 0`, `k > n`, or `alpha` is outside `(0, 1)`.
pub fn wilson_interval(k: u64, n: u64, alpha: f64) -> (f64, f64) {
    assert!(n > 0 && k <= n, "invalid counts");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let z = Normal::standard().quantile(1.0 - alpha / 2.0);
    let n_f = n as f64;
    let p = k as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = (p + z2 / (2.0 * n_f)) / denom;
    let half = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Minimum per-arm sample size for a two-proportion test to reach power
/// `1 - beta` at significance `alpha` (one-sided), given baseline `p1` and
/// variant `p2`. This is the standard normal-approximation formula; the
/// paper's motivation ("only 1 of 8 A/B tests is significant") boils down to
/// running tests far below this size.
///
/// # Panics
///
/// Panics if the proportions are equal or any probability argument is
/// outside `(0, 1)`.
pub fn required_sample_size(p1: f64, p2: f64, alpha: f64, beta: f64) -> u64 {
    for &v in &[p1, p2, alpha, beta] {
        assert!(v > 0.0 && v < 1.0, "arguments must be in (0,1)");
    }
    assert!(p1 != p2, "effect size must be non-zero");
    let std = Normal::standard();
    let z_a = std.quantile(1.0 - alpha);
    let z_b = std.quantile(1.0 - beta);
    let p_bar = (p1 + p2) / 2.0;
    let num = z_a * (2.0 * p_bar * (1.0 - p_bar)).sqrt()
        + z_b * (p1 * (1.0 - p1) + p2 * (1.0 - p2)).sqrt();
    let n = (num / (p2 - p1)).powi(2);
    n.ceil() as u64
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn paper_ab_test_is_not_significant() {
        // Fig. 7(b): 51 visitors / 3 clicks (A) vs 49 visitors / 6 clicks (B).
        let r = two_proportion_z_test(3, 51, 6, 49, Tail::OneSidedGreater);
        assert!(r.statistic > 1.0 && r.statistic < 1.3, "z = {}", r.statistic);
        assert!((r.p_value - 0.133).abs() < 0.02, "p = {}", r.p_value);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn paper_question_c_is_significant() {
        // Fig. 8 question C: 14/100 prefer A vs 46/100 prefer B.
        let r = two_proportion_z_test(14, 100, 46, 100, Tail::OneSidedGreater);
        assert!(r.significant_at(0.01), "p = {}", r.p_value);
        assert!(r.p_value < 1e-5, "p = {}", r.p_value);
    }

    #[test]
    fn z_test_symmetry() {
        let a = two_proportion_z_test(10, 100, 20, 100, Tail::TwoSided);
        let b = two_proportion_z_test(20, 100, 10, 100, Tail::TwoSided);
        assert!((a.p_value - b.p_value).abs() < 1e-12);
        assert!((a.statistic + b.statistic).abs() < 1e-12);
    }

    #[test]
    fn z_test_no_difference_gives_p_one_ish() {
        let r = two_proportion_z_test(10, 100, 10, 100, Tail::TwoSided);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        let r = two_proportion_z_test(0, 50, 0, 50, Tail::TwoSided);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn binomial_sign_test_on_question_c() {
        // Ignoring the 40 ties: 46 of 60 votes for B.
        let r = binomial_test(46, 60, 0.5, Tail::OneSidedGreater);
        assert!(r.p_value < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn binomial_two_sided_contains_one_sided() {
        let one = binomial_test(16, 20, 0.5, Tail::OneSidedGreater);
        let two = binomial_test(16, 20, 0.5, Tail::TwoSided);
        assert!(two.p_value >= one.p_value);
        assert!(two.p_value <= 2.0 * one.p_value + 1e-12);
    }

    #[test]
    fn binomial_test_fair_coin_median() {
        let r = binomial_test(10, 20, 0.5, Tail::OneSidedGreater);
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn chi_square_agrees_with_z_squared() {
        // For 2x2 tables, chi2 statistic == z^2 of the two-proportion test.
        let z = two_proportion_z_test(3, 51, 6, 49, Tail::TwoSided);
        let c = chi_square_2x2(3, 48, 6, 43);
        assert!((c.statistic - z.statistic * z.statistic).abs() < 1e-9);
        assert!((c.p_value - z.p_value).abs() < 1e-9);
    }

    #[test]
    fn wilson_interval_brackets_mle() {
        let (lo, hi) = wilson_interval(6, 49, 0.05);
        let p = 6.0 / 49.0;
        assert!(lo < p && p < hi);
        assert!(lo > 0.0 && hi < 1.0);
    }

    #[test]
    fn wilson_interval_extremes() {
        let (lo, _) = wilson_interval(0, 20, 0.05);
        assert!(lo.abs() < 1e-12, "lo = {lo}");
        let (_, hi) = wilson_interval(20, 20, 0.05);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn sample_size_grows_with_smaller_effect() {
        let big = required_sample_size(0.05, 0.15, 0.05, 0.2);
        let small = required_sample_size(0.05, 0.07, 0.05, 0.2);
        assert!(small > big, "{small} should exceed {big}");
        // The paper's effect (5.9% vs 12.2%) needs a few hundred per arm —
        // explaining why 100 total visitors was not enough.
        let needed = required_sample_size(0.059, 0.122, 0.05, 0.2);
        assert!(needed > 150 && needed < 600, "needed = {needed}");
    }

    #[test]
    #[should_panic(expected = "counts cannot exceed sample sizes")]
    fn z_test_rejects_bad_counts() {
        let _ = two_proportion_z_test(10, 5, 1, 10, Tail::TwoSided);
    }
}
