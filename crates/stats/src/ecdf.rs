//! Empirical cumulative distribution functions.
//!
//! Figure 5 of the paper plots CDFs of tester behaviour (active tabs,
//! created tabs, time on task) for raw/quality-controlled/in-lab
//! populations. [`Ecdf`] provides evaluation, quantiles, and a plottable
//! step-point series.

/// An empirical CDF over a sample of `f64` observations.
///
/// ```
/// use kscope_stats::Ecdf;
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.eval(2.5), 0.5);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. Non-finite values are rejected.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN/infinite values.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "ECDF requires at least one observation");
        assert!(sample.iter().all(|x| x.is_finite()), "observations must be finite");
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Self { sorted: sample }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a constructed `Ecdf`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of observations `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 <= q <= 1`) using the inverse-ECDF convention:
    /// the smallest observation `x` with `F(x) >= q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[idx - 1]
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Step points `(x, F(x))` suitable for plotting, one per distinct value.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => out.push((x, y)),
            }
        }
        out
    }

    /// Evaluates the ECDF on a fixed grid of `steps+1` points spanning
    /// `[lo, hi]` — the form the figure binaries print.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `steps == 0`.
    pub fn on_grid(&self, lo: f64, hi: f64, steps: usize) -> Vec<(f64, f64)> {
        assert!(lo < hi && steps > 0, "invalid grid");
        (0..=steps)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / steps as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Two-sample Kolmogorov–Smirnov statistic `D = sup |F1 - F2|`.
    /// Used to quantify how close the quality-controlled behaviour CDF is to
    /// the in-lab one (the paper's Fig. 5 argument).
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn eval_with_ties() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.eval(1.9), 0.0);
        assert_eq!(e.eval(2.0), 0.75);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.2), 1.0);
        assert_eq!(e.quantile(0.5), 3.0);
        assert_eq!(e.quantile(1.0), 5.0);
    }

    #[test]
    fn quantile_is_left_inverse_of_eval() {
        let e = Ecdf::new(vec![0.5, 1.5, 2.5, 9.0, 12.0, 40.0]);
        for i in 1..=e.len() {
            let q = i as f64 / e.len() as f64;
            let x = e.quantile(q);
            assert!(e.eval(x) >= q);
        }
    }

    #[test]
    fn points_are_monotone_and_end_at_one() {
        let e = Ecdf::new(vec![5.0, 1.0, 1.0, 3.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 3); // 1, 3, 5
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn grid_covers_range() {
        let e = Ecdf::new(vec![1.0, 2.0]);
        let g = e.on_grid(0.0, 3.0, 3);
        assert_eq!(g.len(), 4);
        assert_eq!(g[0], (0.0, 0.0));
        assert_eq!(g[3], (3.0, 1.0));
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&a), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
        assert_eq!(b.ks_distance(&a), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn rejects_empty() {
        let _ = Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }
}
