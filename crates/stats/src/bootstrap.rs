//! Bootstrap resampling for confidence intervals on arbitrary statistics.

use rand::{Rng, RngExt};

/// A percentile-bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower confidence bound.
    pub low: f64,
    /// Upper confidence bound.
    pub high: f64,
}

/// Percentile bootstrap: resamples `sample` with replacement `reps` times,
/// applies `stat` to each resample, and returns the `(alpha/2, 1-alpha/2)`
/// percentile interval.
///
/// # Panics
///
/// Panics if the sample is empty, `reps == 0`, or `alpha` not in `(0, 1)`.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let sample = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let mut rng = StdRng::seed_from_u64(1);
/// let ci = kscope_stats::bootstrap::bootstrap_ci(
///     &sample, 500, 0.05, &mut rng,
///     |xs| xs.iter().sum::<f64>() / xs.len() as f64,
/// );
/// assert!(ci.low <= ci.estimate && ci.estimate <= ci.high);
/// ```
pub fn bootstrap_ci<R, F>(
    sample: &[f64],
    reps: usize,
    alpha: f64,
    rng: &mut R,
    stat: F,
) -> BootstrapCi
where
    R: Rng + ?Sized,
    F: Fn(&[f64]) -> f64,
{
    assert!(!sample.is_empty(), "bootstrap of empty sample");
    assert!(reps > 0, "need at least one bootstrap replicate");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let estimate = stat(sample);
    let n = sample.len();
    let mut stats: Vec<f64> = Vec::with_capacity(reps);
    let mut resample = vec![0.0; n];
    for _ in 0..reps {
        for slot in resample.iter_mut() {
            *slot = sample[rng.random_range(0..n)];
        }
        stats.push(stat(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let lo_idx = ((alpha / 2.0) * reps as f64).floor() as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * reps as f64).ceil() as usize).min(reps) - 1;
    BootstrapCi { estimate, low: stats[lo_idx.min(reps - 1)], high: stats[hi_idx] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn ci_brackets_mean_for_symmetric_sample() {
        let sample: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let ci = bootstrap_ci(&sample, 2000, 0.05, &mut rng, mean);
        assert!(ci.low < 25.5 && 25.5 < ci.high);
        assert!(ci.high - ci.low < 12.0, "interval too wide: {ci:?}");
    }

    #[test]
    fn ci_is_degenerate_for_constant_sample() {
        let sample = vec![4.0; 30];
        let mut rng = StdRng::seed_from_u64(9);
        let ci = bootstrap_ci(&sample, 200, 0.05, &mut rng, mean);
        assert_eq!(ci.low, 4.0);
        assert_eq!(ci.high, 4.0);
        assert_eq!(ci.estimate, 4.0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let sample: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        let a = bootstrap_ci(&sample, 300, 0.1, &mut StdRng::seed_from_u64(7), mean);
        let b = bootstrap_ci(&sample, 300, 0.1, &mut StdRng::seed_from_u64(7), mean);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty_sample() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = bootstrap_ci(&[], 10, 0.05, &mut rng, mean);
    }
}
