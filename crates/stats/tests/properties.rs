//! Property tests: distribution laws and ranking invariants.

use kscope_stats::dist::LogNormal;
use kscope_stats::rank::{borda_ranking, bradley_terry, PairwiseMatrix, Preference};
use kscope_stats::tests::{binomial_test, two_proportion_z_test, Tail};
use kscope_stats::{Binomial, ChiSquared, Normal};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normal CDF is monotone and complements its survival function.
    #[test]
    fn normal_cdf_laws(mu in -50.0f64..50.0, sigma in 0.1f64..20.0,
                        a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let n = Normal::new(mu, sigma);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-12);
        prop_assert!((n.cdf(a) + n.sf(a) - 1.0).abs() < 1e-9);
    }

    /// quantile is a right inverse of cdf across the open unit interval.
    #[test]
    fn normal_quantile_inverse(mu in -10.0f64..10.0, sigma in 0.1f64..5.0,
                                p in 0.001f64..0.999) {
        let n = Normal::new(mu, sigma);
        prop_assert!((n.cdf(n.quantile(p)) - p).abs() < 1e-7);
    }

    /// Binomial PMF sums to one and CDF is monotone.
    #[test]
    fn binomial_laws(n in 1u64..80, p in 0.0f64..1.0) {
        let b = Binomial::new(n, p);
        let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        let mut prev = 0.0;
        for k in 0..=n {
            let c = b.cdf(k);
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
    }

    /// Chi-square CDF is monotone in x and decreasing in dof at fixed x.
    #[test]
    fn chi_square_monotone(k in 1u32..30, x in 0.0f64..100.0) {
        let c = ChiSquared::new(k);
        prop_assert!(c.cdf(x) <= c.cdf(x + 1.0) + 1e-12);
        if k > 1 {
            prop_assert!(ChiSquared::new(k - 1).cdf(x) + 1e-9 >= c.cdf(x));
        }
    }

    /// Two-proportion test: p-values live in [0,1] and the two-sided value
    /// dominates each one-sided value.
    #[test]
    fn z_test_p_value_ranges(x1 in 0u64..50, x2 in 0u64..50) {
        let n = 50;
        let two = two_proportion_z_test(x1, n, x2, n, Tail::TwoSided);
        let g = two_proportion_z_test(x1, n, x2, n, Tail::OneSidedGreater);
        let l = two_proportion_z_test(x1, n, x2, n, Tail::OneSidedLess);
        for r in [&two, &g, &l] {
            prop_assert!((0.0..=1.0).contains(&r.p_value));
        }
        prop_assert!(two.p_value + 1e-12 >= g.p_value.min(l.p_value));
        // One-sided tails are exactly complementary — except the degenerate
        // all-equal case, where both report p = 1 (no evidence either way).
        let degenerate = (x1 == x2) && (x1 == 0 || x1 == n);
        if !degenerate {
            prop_assert!((g.p_value + l.p_value - 1.0).abs() < 1e-9);
        }
    }

    /// Binomial test under the null has super-uniform one-sided p-values in
    /// the sense p >= P(X >= k) exactly by construction; sanity: symmetric
    /// cases agree.
    #[test]
    fn binomial_test_symmetry(n in 2u64..60) {
        let k = n / 2;
        let hi = binomial_test(n - k, n, 0.5, Tail::OneSidedGreater);
        let lo = binomial_test(k, n, 0.5, Tail::OneSidedLess);
        prop_assert!((hi.p_value - lo.p_value).abs() < 1e-9);
    }

    /// Log-normal samples are positive and its CDF is monotone.
    #[test]
    fn lognormal_laws(median in 0.1f64..100.0, sigma in 0.05f64..2.0, x in 0.0f64..500.0) {
        let ln = LogNormal::from_median(median, sigma);
        prop_assert!((ln.cdf(median) - 0.5).abs() < 1e-9);
        prop_assert!(ln.cdf(x) <= ln.cdf(x + 1.0) + 1e-12);
    }

    /// Bradley–Terry strengths are a probability vector and respect a
    /// dominant item.
    #[test]
    fn bradley_terry_laws(wins in 1u64..20) {
        let mut m = PairwiseMatrix::new(3);
        for _ in 0..wins {
            m.record(0, 1, Preference::Left);
            m.record(0, 2, Preference::Left);
        }
        m.record(1, 2, Preference::Same);
        let p = bradley_terry(&m, 300, 1e-10);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
        prop_assert!(p[0] > p[1] && p[0] > p[2]);
    }

    /// Borda ranking respects strict dominance: an item that wins every
    /// comparison ranks first.
    #[test]
    fn borda_respects_domination(n in 2usize..8, winner_seed in 0usize..8) {
        let winner = winner_seed % n;
        let mut m = PairwiseMatrix::new(n);
        for other in 0..n {
            if other != winner {
                m.record(winner, other, Preference::Left);
            }
        }
        prop_assert_eq!(borda_ranking(&m)[0], winner);
    }
}
